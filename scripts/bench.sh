#!/usr/bin/env bash
# Run the perf-regression benchmarks and append each measurement to the
# single BENCH.jsonl perf-trajectory file in the repo root, one JSON object
# per line.  Every entry records the machine conditions it was measured
# under — the visible core count ("cores", ROADMAP's 1-core caveat made
# machine-readable), the surface-cache state ("cache": cold/warm), and for
# sweep rows the scenario pack ("scenario") — so trajectory rows are
# comparable without reading prose.  Legacy per-date BENCH_<date>.json
# files (the pre-ISSUE-2 format) are migrated into BENCH.jsonl on sight.
# Extra arguments are passed through to pytest.
#
# Measurements are staged in a temp file and appended to BENCH.jsonl only
# after the whole pytest run succeeds: a failing or crashing benchmark run
# exits non-zero and appends NOTHING, so the trajectory never accumulates
# rows from broken runs.
#
#   scripts/bench.sh            # run all perf benchmarks + append
#   scripts/bench.sh -k wall    # only the tune() wall-time gate
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH.jsonl"

# One-time migration of the fragmented per-date trajectory files.
shopt -s nullglob
for legacy in BENCH_*.json; do
    echo "migrating $legacy into $out"
    cat "$legacy" >> "$out"
    rm "$legacy"
done
shopt -u nullglob

staging="$(mktemp "${TMPDIR:-/tmp}/bench.XXXXXX.jsonl")"
cleanup() {
    status=$?
    rm -f "$staging"
    if [ "$status" -ne 0 ]; then
        echo "bench.sh: FAILED (exit $status) — benchmark run did not" \
             "complete; nothing appended to $out" >&2
    fi
    exit "$status"
}
trap cleanup EXIT

BENCH_JSON="$staging" PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/test_perf_tournament.py \
        benchmarks/test_perf_sweep.py \
        benchmarks/test_perf_store.py -q -s -m benchmark "$@"

cat "$staging" >> "$out"
echo "perf trajectory appended to $out ($(wc -l < "$staging") row(s))"
