#!/usr/bin/env bash
# Run the perf-regression benchmark and append the measurement to a
# BENCH_<date>.json perf-trajectory file in the repo root, one JSON object
# per line.  Extra arguments are passed through to pytest.
#
#   scripts/bench.sh            # run + append to BENCH_YYYY-MM-DD.json
#   scripts/bench.sh -k wall    # only the wall-time gate
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_$(date +%Y-%m-%d).json"
BENCH_JSON="$out" PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/test_perf_tournament.py -q -s -m benchmark "$@"
echo "perf trajectory appended to $out"
