#!/usr/bin/env bash
# Run the perf-regression benchmarks and append each measurement to the
# single BENCH.jsonl perf-trajectory file in the repo root, one JSON object
# per line.  Every entry records the machine conditions it was measured
# under — the visible core count ("cores", ROADMAP's 1-core caveat made
# machine-readable), the surface-cache state ("cache": cold/warm), and for
# sweep rows the scenario pack ("scenario") — so trajectory rows are
# comparable without reading prose.  Legacy per-date BENCH_<date>.json
# files (the pre-ISSUE-2 format) are migrated into BENCH.jsonl on sight.
# Extra arguments are passed through to pytest.
#
# Measurements are staged in a temp file and appended to BENCH.jsonl only
# after the whole pytest run succeeds: a failing or crashing benchmark run
# exits non-zero and appends NOTHING, so the trajectory never accumulates
# rows from broken runs.
#
#   scripts/bench.sh            # run all perf benchmarks + append
#   scripts/bench.sh -k wall    # only the tune() wall-time gate
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH.jsonl"

# One-time migration of the fragmented per-date trajectory files.
shopt -s nullglob
for legacy in BENCH_*.json; do
    echo "migrating $legacy into $out"
    cat "$legacy" >> "$out"
    rm "$legacy"
done
shopt -u nullglob

staging="$(mktemp "${TMPDIR:-/tmp}/bench.XXXXXX.jsonl")"
cleanup() {
    status=$?
    rm -f "$staging"
    if [ "$status" -ne 0 ]; then
        echo "bench.sh: FAILED (exit $status) — benchmark run did not" \
             "complete; nothing appended to $out" >&2
    fi
    exit "$status"
}
trap cleanup EXIT

BENCH_JSON="$staging" PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/test_perf_tournament.py \
        benchmarks/test_perf_sweep.py \
        benchmarks/test_perf_store.py -q -s -m benchmark "$@"

# Before/after report: compare each fresh row against the most recent prior
# row of the same benchmark id (same benchmark + same conditions: cache,
# jobs, scenario, format, exec mode, backend...) so a perf regression or win
# is visible in the run output, not just buried in the trajectory file.
python - "$out" "$staging" <<'PYEOF'
import json, sys

MEASURED = {
    "date", "machine", "python", "wall_seconds", "records_per_second",
    "campaigns_per_minute", "core_hours", "tuning_seconds",
    "speedup_vs_seed_baseline", "retries", "winner_index", "evaluations",
}
RATES = ("campaigns_per_minute", "records_per_second")

def rows(path):
    try:
        with open(path) as fh:
            return [json.loads(line) for line in fh if line.strip()]
    except FileNotFoundError:
        return []

def bench_id(row):
    # Rows written before the exec-mode axis existed ran the process path.
    row = dict(row)
    row.setdefault("exec_mode", "process")
    return tuple(sorted((k, row[k]) for k in row if k not in MEASURED))

history = {}
for row in rows(sys.argv[1]):
    history[bench_id(row)] = row  # last same-id row wins

for row in rows(sys.argv[2]):
    prev = history.get(bench_id(row))
    conds = ", ".join(
        f"{k}={v}" for k, v in sorted(row.items())
        if k not in MEASURED and k != "benchmark"
    )
    label = row.get("benchmark", "?") + (f" [{conds}]" if conds else "")
    rate = next((k for k in RATES if k in row), None)
    if prev is None:
        print(f"  {label}: first measurement "
              f"(wall {row.get('wall_seconds', '?')}s)")
        continue
    if rate and rate in prev:
        new, old = row[rate], prev[rate]
        pct = 100.0 * (new - old) / old if old else 0.0
        print(f"  {label}: {old} -> {new} {rate.replace('_per_', '/')} "
              f"({pct:+.1f}% vs {prev.get('date', '?')})")
    else:
        new, old = row.get("wall_seconds"), prev.get("wall_seconds")
        if new is not None and old is not None:
            pct = 100.0 * (new - old) / old if old else 0.0
            print(f"  {label}: {old}s -> {new}s wall "
                  f"({pct:+.1f}% vs {prev.get('date', '?')})")
PYEOF

cat "$staging" >> "$out"
echo "perf trajectory appended to $out ($(wc -l < "$staging") row(s))"
