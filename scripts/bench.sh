#!/usr/bin/env bash
# Run the perf-regression benchmarks and append each measurement to the
# single BENCH.jsonl perf-trajectory file in the repo root, one JSON object
# per line.  Every entry records the machine conditions it was measured
# under — the visible core count ("cores", ROADMAP's 1-core caveat made
# machine-readable) and the surface-cache state ("cache": cold/warm) — so
# trajectory rows are comparable without reading prose.  Legacy per-date
# BENCH_<date>.json files (the pre-ISSUE-2 format) are migrated into
# BENCH.jsonl on sight, so the trajectory never splinters across files
# again.  Extra arguments are passed through to pytest.
#
#   scripts/bench.sh            # run all perf benchmarks + append
#   scripts/bench.sh -k wall    # only the tune() wall-time gate
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH.jsonl"

# One-time migration of the fragmented per-date trajectory files.
shopt -s nullglob
for legacy in BENCH_*.json; do
    echo "migrating $legacy into $out"
    cat "$legacy" >> "$out"
    rm "$legacy"
done
shopt -u nullglob

BENCH_JSON="$out" PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/test_perf_tournament.py \
        benchmarks/test_perf_sweep.py -q -s -m benchmark "$@"
echo "perf trajectory appended to $out"
