#!/usr/bin/env python
"""Which knobs matter? Main-effect analysis before and after tuning.

Uses :func:`repro.analysis.main_effects` to decompose an application's
performance surface into per-parameter importances — the question every
developer asks before committing to a tuning campaign.  Two responses are
analysed:

* **execution time** — which knobs move the dedicated-environment speed;
* **noise sensitivity** — which knobs decide how fragile a configuration is
  under cloud interference (the axis Takeaway II cares about).

Finally, the analysis is repeated on *noisy cloud observations* to show why
interference-unaware importance estimates mislead: the ranking computed
from solo cloud samples disagrees with the ground truth.

Run with::

    python examples/parameter_importance.py
"""

import numpy as np

from repro import CloudEnvironment, make_application
from repro.analysis import main_effects


def main() -> None:
    app = make_application("redis", scale="bench")
    print(f"{app.name}: {app.space.dimension} parameters, "
          f"{app.space.size:,} configurations\n")

    time_report = main_effects(app, response="time", n=6000, seed=0)
    print(time_report.render(top=8))

    sens_report = main_effects(app, response="sensitivity", n=6000, seed=0)
    print()
    print(sens_report.render(top=8))

    # The same analysis from noisy cloud observations — what a developer
    # could actually measure without dedicated hardware.
    env = CloudEnvironment(seed=5)

    def noisy_observe(indices):
        return env.run_solo_batch(app, np.asarray(indices), label="importance")

    cloud_report = main_effects(
        app, response="custom", n=2000, seed=0, observe=noisy_observe
    )
    truth = [p.name for p in time_report.ranked()[:5]]
    measured = [p.name for p in cloud_report.ranked()[:5]]
    agreement = len(set(truth) & set(measured))
    print("\nTop-5 by ground truth    :", ", ".join(truth))
    print("Top-5 from cloud samples :", ", ".join(measured))
    print(f"Agreement: {agreement}/5 — interference blurs importance "
          "estimates, just as it misleads tuners.")


if __name__ == "__main__":
    main()
