#!/usr/bin/env python
"""Why DarwinGame's phases use the formats they use.

Plays the clean-room tournament formats of :mod:`repro.formats` over a
field of synthetic players whose strengths are observed through noise — the
abstraction of DarwinGame's situation, where a game's execution scores are
the configurations' speeds seen through interference.  Reports each
format's *predictive power* (how often the true strongest player wins) and
cost in games, the trade-off behind the paper's phase design:

* Swiss for the regional phase — near round-robin accuracy at a fraction
  of the games;
* double elimination for the global phase — protects strong players from
  "one bad day";
* cheap knockouts only at the very end, when two finalists remain.

Run with::

    python examples/tournament_formats.py
"""

from repro.analysis.textplots import hbar_chart
from repro.experiments.format_power import FORMAT_NAMES, run_format_power


def main() -> None:
    print("Simulating 16-player tournaments, 300 trials per (format, noise)...")
    result = run_format_power(
        n_players=16,
        noise_levels=(0.0, 0.25, 0.5, 1.0),
        trials=300,
        seed=0,
    )

    for noise in result.noise_levels():
        print(f"\n--- observation noise std = {noise} ---")
        print(hbar_chart(
            list(FORMAT_NAMES),
            [result.row(fmt, noise).predictive_power for fmt in FORMAT_NAMES],
            width=40,
            title="P(true best player wins the tournament)",
        ))

    print("\nCost of one tournament (games):")
    print(hbar_chart(
        list(FORMAT_NAMES),
        [result.row(fmt, 0.5).mean_games for fmt in FORMAT_NAMES],
        width=40,
    ))

    print(
        "\nReading: double elimination buys a consistent accuracy premium over"
        "\nsingle elimination for 2x the games; Swiss approaches round-robin"
        "\naccuracy at ~25% of its cost — which is why DarwinGame screens the"
        "\nhuge regional fields with Swiss play and reserves bracket play for"
        "\nthe small global field."
    )


if __name__ == "__main__":
    main()
