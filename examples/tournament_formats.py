#!/usr/bin/env python
"""Why DarwinGame's phases use the formats they use — and how to swap them.

Part 1 plays the :mod:`repro.formats` schedulers over a field of synthetic
players whose strengths are observed through noise — the abstraction of
DarwinGame's situation, where a game's execution scores are the
configurations' speeds seen through interference.  Reports each format's
*predictive power* (how often the true strongest player wins) and cost in
games, the trade-off behind the paper's phase design.

Part 2 then runs the *real* tuner under alternate tournament shapes: since
the scheduler/executor refactor, the exact state machines measured in
part 1 are what `DarwinGame` plays, and the shape is a config knob
(`tournament_format`) and a sweep axis (`--formats`).

Run with::

    python examples/tournament_formats.py
"""

from repro.analysis.textplots import hbar_chart
from repro.apps import make_application
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.tournament import DarwinGame
from repro.experiments.format_power import FORMAT_NAMES, run_format_power
from repro.formats import tournament_format, tournament_format_names


def format_power_study() -> None:
    print("Simulating 16-player tournaments, 300 trials per (format, noise)...")
    result = run_format_power(
        n_players=16,
        noise_levels=(0.0, 0.25, 0.5, 1.0),
        trials=300,
        seed=0,
    )

    for noise in result.noise_levels():
        print(f"\n--- observation noise std = {noise} ---")
        print(hbar_chart(
            list(FORMAT_NAMES),
            [result.row(fmt, noise).predictive_power for fmt in FORMAT_NAMES],
            width=40,
            title="P(true best player wins the tournament)",
        ))

    print("\nCost of one tournament (games):")
    print(hbar_chart(
        list(FORMAT_NAMES),
        [result.row(fmt, 0.5).mean_games for fmt in FORMAT_NAMES],
        width=40,
    ))


def real_tuner_under_each_shape() -> None:
    print(
        "\nThe same schedulers drive the real tuner; the tournament shape"
        "\nis the `tournament_format` recipe (sweepable via --formats):\n"
    )
    app = make_application("redis", scale="test")
    print(f"{'format':<22} {'picked':>6} {'playoff games':>13} "
          f"{'core-hours':>10}   recipe")
    for name in tournament_format_names():
        env = CloudEnvironment(seed=7)
        cfg = DarwinGameConfig(seed=1, tournament_format=name)
        result = DarwinGame(cfg).tune(app, env)
        games = result.details["playoffs"].get("games", 0)
        print(f"{name:<22} {result.best_index:>6} {games:>13} "
              f"{result.core_hours:>10.1f}   "
              f"{tournament_format(name).description}")


def main() -> None:
    format_power_study()
    real_tuner_under_each_shape()
    print(
        "\nReading: double elimination buys a consistent accuracy premium over"
        "\nsingle elimination for 2x the games; Swiss approaches round-robin"
        "\naccuracy at ~25% of its cost — which is why the default `darwin`"
        "\nrecipe screens the huge regional fields with Swiss play and reserves"
        "\nbracket play for the small global field.  Alternate recipes trade"
        "\nplayoff cost against how carefully the finalists are chosen."
    )


if __name__ == "__main__":
    main()
