#!/usr/bin/env python
"""Cross-campaign mega-batching and the pluggable array backend.

Runs the same campaign grid twice — once on the per-campaign process path,
once through the stacked executor (``--exec-mode stacked``), which fuses
the concurrent tournament rounds of every campaign sharing an
(app, scale, vm, scenario, format) key into single stacked kernel passes —
and proves the two stores carry identical records.  Then demonstrates the
array-backend facade: requesting an accelerator namespace that is not
installed falls back to numpy with a warning, never an exception.

Run with::

    python examples/mega_batching.py [--scale test|bench] [--eval-runs N]
"""

import argparse
import json
import logging
import time

import repro
from repro.campaigns import CampaignGrid, CampaignRunner


def stable(records):
    """Canonical, order-independent form of a sweep's results."""
    return json.dumps(
        [r.stable_payload()
         for r in sorted(records, key=lambda r: r.campaign_id)],
        sort_keys=True,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="test", help="space scale preset")
    parser.add_argument("--eval-runs", type=int, default=20)
    args = parser.parse_args()
    logging.basicConfig(level=logging.WARNING)

    grid = CampaignGrid(
        apps=("redis", "lammps"), seeds=(0, 1),
        scale=args.scale, eval_runs=args.eval_runs,
    )
    specs = list(grid.specs())
    print(f"grid: {len(specs)} campaigns "
          f"({len(set(s.app for s in specs))} apps x "
          f"{len(set(s.seed for s in specs))} seeds, scale={args.scale!r})")

    t0 = time.perf_counter()
    process = CampaignRunner(jobs=1).run(specs)
    t_process = time.perf_counter() - t0

    t0 = time.perf_counter()
    stacked = CampaignRunner(exec_mode="stacked").run(specs)
    t_stacked = time.perf_counter() - t0

    assert stable(stacked.records) == stable(process.records), \
        "stacked results diverged from the per-campaign path"
    print(f"process path: {t_process:.2f}s   "
          f"stacked (fused rounds): {t_stacked:.2f}s   "
          f"records identical: yes")

    # The array backend behind repro.xp.  numpy is the default and the
    # reference; asking for an accelerator that is not installed degrades
    # to numpy with a logged warning — results are backend-independent.
    print(f"active array backend: {repro.active_backend().name}")
    activated = repro.set_array_backend("cupy")
    print(f"requested 'cupy', activated: {activated.name}"
          + (" (clean fallback — cupy not installed)"
             if activated.name == "numpy" else ""))
    repro.set_array_backend("numpy")


if __name__ == "__main__":
    main()
