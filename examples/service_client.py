#!/usr/bin/env python
"""Drive a tuning sweep through the stable facade, both ways.

The same grid is submitted twice — once in-process via
:func:`repro.submit_grid`, once over HTTP against a ``repro serve``
daemon — and the example shows the two stores hold bit-identical
records, because the CLI, the daemon, and library callers all share one
code path through :mod:`repro.api`.

Run with::

    python examples/service_client.py [--url http://host:port] [--scale test]

Without ``--url`` the example starts a private in-process daemon on an
ephemeral port, which makes it self-contained; point it at a long-lived
``repro serve`` to exercise a real deployment instead.
"""

import argparse
import contextlib
import json
import tempfile
import time
import urllib.request
from pathlib import Path

from repro import CampaignGrid, SweepOptions, submit_grid
from repro.campaigns import open_store
from repro.service import ReproService, ServiceConfig, TENANT_HEADER


def run_in_process(grid, store_path):
    """The library path: submit, then read status/results/report back."""
    job = submit_grid(grid, SweepOptions(store=str(store_path)))
    report = job.result()
    print(f"in-process: job {job.job_id} {job.state}, "
          f"executed {report.executed}, skipped {report.skipped}")
    for record in job.results(limit=3):
        print(f"  {record.campaign_id}: ok={record.ok} "
              f"core_hours={record.core_hours:.3f}")
    snap = job.status()
    print(f"  status: {snap.done}/{snap.total} done, {snap.failed} failed")
    print(f"  by-scenario report: {len(job.report(view='by-scenario').rows)} "
          f"row(s)")


def call(base, method, path, body=None, tenant="example"):
    """One JSON round-trip against the daemon."""
    request = urllib.request.Request(base + path, method=method)
    request.add_header(TENANT_HEADER, tenant)
    data = None
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, data=data, timeout=60) as response:
        raw = response.read()
        if "json" in response.headers.get("Content-Type", ""):
            return json.loads(raw)
        return raw.decode("utf-8")


def run_over_http(base, grid):
    """The service path: POST the grid, poll, page results, fetch views."""
    job = call(base, "POST", "/v1/sweeps", {"grid": grid.to_dict()})["job"]
    print(f"http: submitted {job['id']} (state={job['state']})")

    while job["state"] not in ("done", "failed", "cancelled"):
        time.sleep(0.2)
        job = call(base, "GET", f"/v1/sweeps/{job['id']}")["job"]
    print(f"http: job {job['id']} {job['state']}, "
          f"{job['status']['done']}/{job['status']['total']} done")

    page = call(base, "GET", f"/v1/sweeps/{job['id']}/results?limit=3")
    print(f"http: {page['total']} records, first page of {page['count']}:")
    for record in page["records"]:
        print(f"  {record['id']}: status={record['status']} "
              f"core_hours={record['core_hours']:.3f}")

    report = call(base, "GET", f"/v1/sweeps/{job['id']}/report?view=summary")
    print(f"http: summary report with {len(report['report']['rows'])} row(s)")
    metrics = call(base, "GET", "/metrics")
    jobs_lines = [l for l in metrics.splitlines()
                  if l.startswith("service_jobs")]
    print("http: /metrics job gauges:", "; ".join(jobs_lines))
    return job["store"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None,
                        help="base URL of a running `repro serve` daemon; "
                             "default starts a private in-process one")
    parser.add_argument("--scale", default="test", help="space scale preset")
    args = parser.parse_args()

    grid = CampaignGrid(
        apps=("redis",), strategies=("DarwinGame",), seeds=(0, 1),
        scale=args.scale, eval_runs=10,
    )

    with contextlib.ExitStack() as stack:
        workdir = Path(stack.enter_context(tempfile.TemporaryDirectory()))
        if args.url is None:
            service = stack.enter_context(ReproService(ServiceConfig(
                port=0, data_root=workdir / "serve.d",
            )))
            base = service.url
            print(f"started private daemon at {base}")
        else:
            base = args.url.rstrip("/")

        library_store = workdir / "library.jsonl"
        run_in_process(grid, library_store)
        served_store = run_over_http(base, grid)

        def stable(path):
            return sorted(
                json.dumps(r.stable_payload(), sort_keys=True)
                for r in open_store(str(path)).records()
            )

        if stable(library_store) == stable(served_store):
            print("stores are bit-identical: one facade, one code path")
        else:
            raise SystemExit("stores diverge — this is a bug, please report")


if __name__ == "__main__":
    main()
