#!/usr/bin/env python
"""Tuning your own application with DarwinGame.

The library is not limited to the paper's four workloads: any application
can be described as a search space (its tunable knobs) plus a performance
surface.  This example defines a small "image-service" with cache, batching
and compression knobs, then tunes it on a storage-optimised VM.

Run with::

    python examples/custom_application.py
"""

from repro import CloudEnvironment, DarwinGame, DarwinGameConfig, VMSpec
from repro.apps.model import ApplicationModel
from repro.apps.surfaces import PerformanceSurface, SurfaceSpec
from repro.space import SearchSpace, boolean, categorical, integer_range, value_grid


def build_image_service() -> ApplicationModel:
    """An imaginary image-resizing service with 8 tunable knobs."""
    space = SearchSpace(
        [
            # Major knobs: picking the wrong engine or cache policy is ruinous.
            categorical("resize-engine", ("simd", "scalar", "gpu-offload", "hybrid")),
            categorical("cache-policy", ("lru", "lfu", "arc", "none")),
            categorical("io-scheduler", ("none", "mq-deadline", "kyber"), kind="system"),
            # Minor knobs.
            integer_range("batch-size", 1, 64, step=9),
            categorical("compression", ("webp", "jpeg90", "jpeg75", "avif")),
            value_grid("prefetch-window", 0.0, 2.0, 5),
            boolean("zero-copy"),
            categorical("vm.swappiness", (0, 30, 60), kind="system"),
        ]
    )
    spec = SurfaceSpec(t_min=40.0, t_max=160.0, n_major=3)
    surface = PerformanceSurface(space, spec, seed=2024)
    return ApplicationModel(
        "image-service",
        space,
        surface,
        work_metric="percentage of images resized",
    )


def main() -> None:
    app = build_image_service()
    print(f"Custom application: {app.name}, {app.space.size:,} configurations")

    env = CloudEnvironment(VMSpec.preset("i3.8xlarge"), seed=3)
    result = DarwinGame(DarwinGameConfig(seed=3)).tune(app, env)
    evaluation = env.measure_choice(app, result.best_index)

    print("\nDarwinGame's choice:")
    for knob, value in app.space.config_dict(result.best_index).items():
        print(f"  {knob:18s} = {value}")
    print(f"\nmean cloud exec time : {evaluation.mean_time:7.1f} s")
    print(f"run-to-run CoV       : {evaluation.cov_percent:7.2f} %")
    print(f"vs dedicated optimum : +{app.optimality_gap_percent(result.best_index):.1f} %")
    print(f"tuning cost          : {result.core_hours:7.0f} core-hours")


if __name__ == "__main__":
    main()
