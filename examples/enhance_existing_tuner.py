#!/usr/bin/env python
"""Enhancing an existing tuner with DarwinGame (Sec. 3.6 integration).

BLISS navigates the search space with its pool of lightweight Bayesian
models; DarwinGame then plays a full tournament inside each promising
subspace BLISS identifies.  The combination finds faster, more stable
configurations than BLISS alone — at lower tuning cost.

Run with::

    python examples/enhance_existing_tuner.py
"""

from repro import (
    BlissLike,
    CloudEnvironment,
    DarwinGameConfig,
    HybridTuner,
    make_application,
)
from repro.experiments import render_table


def main() -> None:
    app = make_application("lammps", scale="bench")
    rows = []

    env = CloudEnvironment(seed=5)
    alone = BlissLike(seed=5).tune(app, env)
    alone_eval = env.measure_choice(app, alone.best_index)
    rows.append(("BLISS", alone_eval.mean_time, alone_eval.cov_percent,
                 alone.core_hours))

    env = CloudEnvironment(seed=5)
    hybrid = HybridTuner(BlissLike(seed=5), DarwinGameConfig(seed=5), seed=5)
    combined = hybrid.tune(app, env)
    combined_eval = env.measure_choice(app, combined.best_index)
    rows.append((hybrid.name, combined_eval.mean_time, combined_eval.cov_percent,
                 combined.core_hours))

    print(render_table(
        ["tuner", "exec time (s)", "CoV %", "core-hours"],
        rows,
        title=f"Integration on {app.name} ({app.space.size:,} configurations)",
    ))
    improvement = 100.0 * (alone_eval.mean_time - combined_eval.mean_time) / alone_eval.mean_time
    saving = 100.0 * (alone.core_hours - combined.core_hours) / alone.core_hours
    print(f"\nDarwinGame integration: {improvement:.1f}% faster execution, "
          f"{saving:.0f}% fewer tuning core-hours.")
    print(f"Subspaces visited: {combined.details['subspaces_visited']}")


if __name__ == "__main__":
    main()
