#!/usr/bin/env python
"""Quickstart: tune Redis in a noisy cloud with DarwinGame.

Builds the Redis application model (Table 1 parameters), rents a simulated
``m5.8xlarge`` in a shared cloud, plays the four-phase tournament, and
compares the chosen configuration against the infeasible dedicated-hardware
oracle and against BLISS, a state-of-the-art interference-unaware tuner.

Run with::

    python examples/quickstart.py
"""

from repro import (
    BlissLike,
    CloudEnvironment,
    DarwinGame,
    DarwinGameConfig,
    VMSpec,
    make_application,
)


def main() -> None:
    app = make_application("redis", scale="bench")
    print(f"Application: {app.name} — search space of {app.space.size:,} configurations")
    print(f"Work-progress metric: {app.work_metric}")

    # --- DarwinGame -------------------------------------------------------
    env = CloudEnvironment(VMSpec.preset("m5.8xlarge"), seed=7)
    tuner = DarwinGame(DarwinGameConfig(seed=1))
    result = tuner.tune(app, env)
    evaluation = env.measure_choice(app, result.best_index)

    print("\n=== DarwinGame ===")
    print(f"chosen configuration : {app.space.config_dict(result.best_index)}")
    print(f"mean cloud exec time : {evaluation.mean_time:8.1f} s over {evaluation.runs} runs")
    print(f"run-to-run CoV       : {evaluation.cov_percent:8.2f} %")
    print(f"tuning cost          : {result.core_hours:8.0f} core-hours")
    print(f"games played         : {result.details['regional']['games']} regional, "
          f"{result.details['global'].get('games', 0)} global, "
          f"{result.details['playoffs'].get('games', 0)} playoff")

    # --- the infeasible oracle ---------------------------------------------
    oracle = app.optimal
    gap = 100.0 * (evaluation.mean_time - oracle.true_time) / oracle.true_time
    print("\n=== Oracle (dedicated, interference-free hardware) ===")
    print(f"optimal exec time    : {oracle.true_time:8.1f} s")
    print(f"DarwinGame is within : {gap:8.1f} % of the optimum, in a *shared* cloud")

    # --- an interference-unaware baseline -----------------------------------
    env = CloudEnvironment(VMSpec.preset("m5.8xlarge"), seed=7)
    bliss = BlissLike(seed=1).tune(app, env)
    bliss_eval = env.measure_choice(app, bliss.best_index)
    print("\n=== BLISS (interference-unaware baseline) ===")
    print(f"mean cloud exec time : {bliss_eval.mean_time:8.1f} s")
    print(f"run-to-run CoV       : {bliss_eval.cov_percent:8.2f} %")
    speedup = 100.0 * (bliss_eval.mean_time - evaluation.mean_time) / bliss_eval.mean_time
    print(f"\nDarwinGame's pick runs {speedup:.0f}% faster than BLISS's pick, "
          f"with {bliss_eval.cov_percent / max(evaluation.cov_percent, 1e-9):.0f}x "
          "less performance variation.")


if __name__ == "__main__":
    main()
