#!/usr/bin/env python
"""Pick an instance type: tune and deploy on each candidate VM.

The paper's Fig. 15 shows DarwinGame's benefits hold across VM classes and
sizes.  A practical consequence: a team can use the tuner itself to choose
*where* to deploy — tune on each candidate instance type, compare the
resulting (execution time, stability, tuning cost) triples, and weigh them
against instance pricing.

Run with::

    python examples/vm_selection.py
"""

from repro import CloudEnvironment, DarwinGame, DarwinGameConfig, VMSpec, make_application
from repro.analysis.textplots import hbar_chart

#: Candidate types with illustrative on-demand $/hour (us-east-1-flavoured).
CANDIDATES = {
    "m5.2xlarge": 0.384,
    "m5.8xlarge": 1.536,
    "c5.9xlarge": 1.530,
    "r5.8xlarge": 2.016,
}


def main() -> None:
    app = make_application("redis", scale="bench")
    print(f"Choosing a VM for {app.name} (space: {app.space.size:,} configs)\n")

    results = {}
    for vm_name, dollars_per_hour in CANDIDATES.items():
        vm = VMSpec.preset(vm_name)
        env = CloudEnvironment(vm, seed=21)
        outcome = DarwinGame(DarwinGameConfig(seed=4)).tune(app, env)
        evaluation = env.measure_choice(app, outcome.best_index)
        vm_hours = outcome.core_hours / vm.vcpus
        results[vm_name] = {
            "time": evaluation.mean_time,
            "cov": evaluation.cov_percent,
            "tuning_cost": vm_hours * dollars_per_hour,
            "run_cost": evaluation.mean_time / 3600.0 * dollars_per_hour,
        }
        print(
            f"{vm_name:<12} exec {evaluation.mean_time:7.1f}s  "
            f"CoV {evaluation.cov_percent:4.2f}%  "
            f"tuning ${results[vm_name]['tuning_cost']:8.0f}  "
            f"per-run ${results[vm_name]['run_cost']:6.3f}"
        )

    print()
    print(hbar_chart(
        list(results),
        [r["time"] for r in results.values()],
        title="Tuned execution time per instance type (s)",
        width=40,
    ))
    print()
    print(hbar_chart(
        list(results),
        [r["run_cost"] for r in results.values()],
        title="Cost of one tuned production run ($)",
        width=40,
    ))

    cheapest_run = min(results, key=lambda k: results[k]["run_cost"])
    fastest = min(results, key=lambda k: results[k]["time"])
    print(f"\nFastest execution : {fastest}")
    print(f"Cheapest per run  : {cheapest_run}")
    print(
        "\nBecause DarwinGame stays within ~10% of the oracle on every type"
        "\n(Fig. 15), the deployment choice reduces to price-performance —"
        "\nthe tuner does not privilege any instance family."
    )


if __name__ == "__main__":
    main()
