#!/usr/bin/env python
"""A full tuning campaign across the paper's four applications.

For each of Redis, GROMACS, FFmpeg and LAMMPS this example runs DarwinGame
and two baselines in the same simulated cloud, then prints a Fig. 10/11/12
style comparison: execution time of the chosen configuration, its CoV over
100 cloud runs, and the tuning cost in core-hours.

Run with::

    python examples/tuning_campaign.py [--scale test|bench] [--seed N]
"""

import argparse

from repro import (
    ActiveHarmonyLike,
    BlissLike,
    CloudEnvironment,
    DarwinGame,
    DarwinGameConfig,
    make_application,
)
from repro.experiments import render_table


def tune_once(app, strategy_name, seed):
    env = CloudEnvironment(seed=seed)
    if strategy_name == "DarwinGame":
        result = DarwinGame(DarwinGameConfig(seed=seed)).tune(app, env)
    elif strategy_name == "BLISS":
        result = BlissLike(seed=seed).tune(app, env)
    else:
        result = ActiveHarmonyLike(seed=seed).tune(app, env)
    evaluation = env.measure_choice(app, result.best_index)
    return evaluation, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", help="space scale preset")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rows = []
    for name in ("redis", "gromacs", "ffmpeg", "lammps"):
        app = make_application(name, scale=args.scale)
        optimal = app.optimal.true_time
        for strategy in ("DarwinGame", "BLISS", "ActiveHarmony"):
            evaluation, result = tune_once(app, strategy, args.seed)
            rows.append((
                name,
                strategy,
                evaluation.mean_time,
                100.0 * (evaluation.mean_time - optimal) / optimal,
                evaluation.cov_percent,
                result.core_hours,
            ))
        rows.append((name, "(oracle)", optimal, 0.0, 0.0, 0.0))

    print(render_table(
        ["app", "strategy", "exec time (s)", "vs optimal %", "CoV %", "core-hours"],
        rows,
        title=f"Tuning campaign at scale={args.scale!r}, seed={args.seed}",
    ))


if __name__ == "__main__":
    main()
