#!/usr/bin/env python
"""Record/replay interference and study distribution shifts.

Demonstrates the trace tooling of :mod:`repro.cloud.traces`:

1. record a realisation of an ``m5.8xlarge`` host's interference into a
   replayable trace;
2. build synthetic scenarios — a step shift (a heavy tenant arrives halfway
   through) and a periodic spike train (a cron-job neighbour);
3. run the same application under each scenario with both a DarwinGame pick
   and a BLISS pick and compare how the two picks degrade — DarwinGame's
   low-sensitivity choice barely notices the regime changes.

Run with::

    python examples/interference_traces.py
"""

import numpy as np

from repro import CloudEnvironment, DarwinGame, DarwinGameConfig, make_application
from repro.analysis.textplots import series_plot
from repro.cloud.interference import InterferenceProcess
from repro.cloud.traces import (
    ReplayedInterference,
    record_trace,
    spike_trace,
    step_trace,
)
from repro.cloud.vm import DEFAULT_VM
from repro.tuners import BlissLike


def pick_configurations(app):
    """Tune once with each strategy; return their chosen indices."""
    darwin_env = CloudEnvironment(DEFAULT_VM, seed=11)
    darwin = DarwinGame(DarwinGameConfig(seed=3)).tune(app, darwin_env)
    bliss_env = CloudEnvironment(DEFAULT_VM, seed=11)
    bliss = BlissLike(seed=3).tune(app, bliss_env)
    return darwin.best_index, bliss.best_index


def mean_time_under_trace(app, index, trace, runs=60):
    """Average observed time of one configuration replayed on a trace."""
    env = CloudEnvironment(DEFAULT_VM, seed=0)
    env.interference = ReplayedInterference(trace, DEFAULT_VM.interference)
    t_true = float(app.true_time(np.array([index]))[0])
    sens = float(app.sensitivity(np.array([index]))[0])
    starts = np.arange(runs) * 3600.0
    levels = trace.mean_over(starts, np.full(runs, t_true))
    return float(np.mean(t_true * (1.0 + sens * levels)))


def main() -> None:
    app = make_application("redis", scale="bench")
    darwin_pick, bliss_pick = pick_configurations(app)
    print(f"DarwinGame pick: {darwin_pick}  |  BLISS pick: {bliss_pick}")

    # 1. A recorded realisation of the stock m5.8xlarge noise.
    process = InterferenceProcess(DEFAULT_VM.interference, seed=42)
    recorded = record_trace(process, duration=6 * 3600.0, dt=60.0, seed=7)
    print(f"\nRecorded trace: {recorded.levels.size} segments, "
          f"mean level {recorded.levels.mean():.2f}")

    # 2. Synthetic regime changes.
    scenarios = {
        "recorded": recorded,
        "step-shift": step_trace(
            level_before=0.2, level_after=1.0,
            step_at=3 * 3600.0, duration=6 * 3600.0,
        ),
        "spike-train": spike_trace(
            base_level=0.15, spike_level=1.5, period=1800.0,
            spike_duration=300.0, duration=6 * 3600.0,
        ),
    }

    # 3. How each pick fares under each scenario.
    print(f"\n{'scenario':<12} {'DarwinGame (s)':>15} {'BLISS (s)':>12} {'BLISS penalty':>14}")
    darwin_times, bliss_times, labels = [], [], []
    for name, trace in scenarios.items():
        d = mean_time_under_trace(app, darwin_pick, trace)
        b = mean_time_under_trace(app, bliss_pick, trace)
        labels.append(name)
        darwin_times.append(d)
        bliss_times.append(b)
        print(f"{name:<12} {d:>15.1f} {b:>12.1f} {100 * (b / d - 1):>13.1f}%")

    print("\n" + series_plot(
        np.arange(len(labels), dtype=float),
        {"darwin": darwin_times, "bliss": bliss_times},
        title="Pick execution time per scenario (x: scenario index)",
        x_label="scenario: " + ", ".join(f"{i}={n}" for i, n in enumerate(labels)),
        height=10,
        width=48,
    ))


if __name__ == "__main__":
    main()
