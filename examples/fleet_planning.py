#!/usr/bin/env python
"""How many VMs should I rent? Fleet planning for a tuning campaign.

The regional phase's games run on parallel VMs ("games in different regions
can be played in parallel in different VMs", Sec. 3.3), and the core-hour
bill is the same regardless of how many VMs the games are spread over —
only the *calendar* time changes.  This example runs a real tournament,
takes its per-region durations, and schedules them onto candidate fleet
sizes with the LPT heuristic from :mod:`repro.cloud.fleet` to answer:

* how long does tuning take on a fleet of n VMs, and
* at what fleet size does utilisation start to collapse?

Run with::

    python examples/fleet_planning.py
"""

from repro import CloudEnvironment, DarwinGame, DarwinGameConfig, make_application
from repro.analysis.textplots import hbar_chart
from repro.cloud.fleet import fleet_tradeoff

FLEETS = (1, 4, 16, 64, 256)


def main() -> None:
    app = make_application("redis", scale="bench")
    env = CloudEnvironment(seed=9)
    result = DarwinGame(DarwinGameConfig(seed=2)).tune(app, env)
    durations = result.details["regional"]["region_durations"]

    print(f"Tournament on {app.name}: {len(durations)} regional workloads, "
          f"{result.core_hours:,.0f} core-hours total")
    print(f"Longest single region: {max(durations):,.0f} s "
          f"(the wall-clock floor no fleet can beat)\n")

    points = fleet_tradeoff(durations, FLEETS)
    print(f"{'fleet':>6} {'wall-clock':>14} {'speed-up':>9} {'utilisation':>12}")
    serial = points[0].wall_clock
    for p in points:
        print(
            f"{p.n_vms:>6} {p.wall_clock / 3600.0:>11.1f} h "
            f"{serial / p.wall_clock:>8.1f}x {100 * p.utilisation:>10.0f}%"
        )

    print()
    print(hbar_chart(
        [f"{p.n_vms} VMs" for p in points],
        [p.wall_clock / 3600.0 for p in points],
        title="Regional-phase wall-clock by fleet size (hours)",
        width=44,
        unit="h",
    ))
    print(
        "\nReading: the core-hour bill is identical on every row; rent the"
        "\nsmallest fleet whose wall-clock fits your deadline, and stop"
        "\ngrowing the fleet once utilisation drops — idle VMs still bill."
    )


if __name__ == "__main__":
    main()
