"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at *bench*
scale (spaces of 1e5-3e5 points instead of millions) and prints the same
rows/series the paper reports, plus [OK]/[DIFF] paper-vs-measured lines.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn):
        return run_once(benchmark, fn)

    return _run
