"""Fig. 2: CoV versus mean execution time across configurations."""

import numpy as np

from repro.analysis.textplots import scatter_plot
from repro.apps import make_application
from repro.experiments import paper_vs_measured, render_table, run_fig2


def test_fig02_cov_vs_mean(once):
    app = make_application("redis", scale="bench")
    # 2500 configurations instead of the paper's 250: the blue population is
    # ~0.1% of the space, so a larger sample makes its presence deterministic.
    result = once(lambda: run_fig2(app, n_configs=2500, runs=100, seed=0))
    means = np.array([p.mean_time for p in result.points])
    covs = np.array([p.cov_percent for p in result.points])
    print()
    # Bin by mean time and report mean CoV per bin (the scatter's trend).
    bins = np.quantile(means, np.linspace(0, 1, 6))
    rows = []
    for lo, hi in zip(bins, bins[1:]):
        mask = (means >= lo) & (means <= hi)
        rows.append((f"{lo:.0f}-{hi:.0f}s", float(covs[mask].mean()), int(mask.sum())))
    print(render_table(
        ["mean-time bin", "avg CoV %", "configs"],
        rows,
        title="Fig. 2 — CoV vs mean execution time (2500 Redis configs, 100 runs)",
    ))
    print()
    # Sub-sample the scatter for the terminal; '@' marks the blue population.
    sample = np.random.default_rng(0).choice(len(result.points), 400, replace=False)
    robust = np.array([p.robust for p in result.points])
    print(scatter_plot(
        covs[sample],
        means[sample],
        highlight=robust[sample],
        title="Fig. 2 — mean exec time vs CoV ('@' = low-time/low-CoV blues)",
        x_label="CoV of execution time (%)",
        y_label="mean execution time (s)",
        height=14,
        width=56,
    ))
    print(paper_vs_measured(
        "faster configurations vary more",
        "negative trend", f"corr={result.trend_correlation:.2f}",
        result.trend_correlation < 0.0,
    ))
    blue_rate = len(result.blue_points) / len(result.points)
    print(paper_vs_measured(
        "rare low-time/low-CoV (blue) population exists",
        "a handful of points", f"{len(result.blue_points)} of {len(result.points)}",
        0 < blue_rate < 0.05,
    ))
    assert result.trend_correlation < 0.1
    assert len(result.blue_points) >= 1
