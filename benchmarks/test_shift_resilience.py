"""Sec. 5 resilience claim: DarwinGame's pick survives interference shifts.

The paper argues DarwinGame is resilient to "cloud interference
distribution shifts" because its tournament selects low-sensitivity
configurations.  This bench tunes under the nominal m5.8xlarge profile and
re-evaluates every strategy's pick under profiles whose mean interference
level is raised by up to 1.0 — a drastic noisy-neighbour regime change.
"""

from repro.experiments import paper_vs_measured, render_table
from repro.experiments.shift_study import run_shift_study

SHIFTS = (0.0, 0.25, 0.5, 1.0)


def test_shift_resilience(once):
    result = once(lambda: run_shift_study(
        "redis", shifts=SHIFTS, scale="bench", seed=0
    ))
    print()
    rows = [
        (s, shift, result.row(s, shift).mean_time,
         result.row(s, shift).degradation_percent)
        for s in result.strategies()
        for shift in SHIFTS
    ]
    print(render_table(
        ["strategy", "level shift", "exec time (s)", "degradation %"],
        rows,
        title="Interference distribution shift (Redis, tuned at nominal level)",
    ))

    dg_worst = result.row("DarwinGame", 1.0).degradation_percent
    others_worst = min(
        result.row(s, 1.0).degradation_percent
        for s in result.strategies()
        if s != "DarwinGame"
    )
    print(paper_vs_measured(
        "DarwinGame is resilient to distribution shifts",
        "design components make it resilient",
        f"+{dg_worst:.1f}% at shift 1.0 vs best-other +{others_worst:.1f}%",
        dg_worst < others_worst / 2,
    ))
    assert dg_worst < others_worst
    assert dg_worst < 10.0
    # Degradation must be monotone in the shift for every strategy.
    for s in result.strategies():
        degr = [result.row(s, shift).degradation_percent for shift in SHIFTS]
        assert degr == sorted(degr)
