"""Format predictive power under noise: the rationale behind Sec. 3's phases.

The paper chooses double elimination over a plain knockout "so that the
losing tuning configurations get an additional opportunity" and notes that
Swiss-style play "is expected to converge logarithmically" while staying
accurate for large pools.  This bench quantifies those claims with the
clean-room format schedulers: predictive power (probability that the true
strongest player wins) as observation noise grows, and the games each
format costs.
"""

from repro.experiments import paper_vs_measured, render_table
from repro.experiments.format_power import FORMAT_NAMES, run_format_power

NOISES = (0.0, 0.25, 0.5, 1.0)


def grid():
    return run_format_power(
        n_players=16, noise_levels=NOISES, trials=400, seed=0
    )


def test_format_predictive_power(once):
    result = once(grid)
    print()
    rows = [
        (
            fmt,
            noise,
            result.row(fmt, noise).predictive_power,
            result.row(fmt, noise).top2_power,
            result.row(fmt, noise).mean_games,
        )
        for fmt in FORMAT_NAMES
        for noise in NOISES
    ]
    print(render_table(
        ["format", "noise std", "P(best wins)", "P(top-2 wins)", "games"],
        rows,
        title="Predictive power of tournament formats (16 players, 400 trials)",
    ))

    # Double elimination must beat single elimination once noise matters.
    de = sum(result.row("DoubleElim", n).predictive_power for n in NOISES[1:])
    se = sum(result.row("SingleElim", n).predictive_power for n in NOISES[1:])
    print(paper_vs_measured(
        "double elim protects against 'one bad day'",
        "second chance improves winner quality",
        f"sum power {de:.2f} vs single elim {se:.2f}",
        de > se,
    ))
    assert de > se

    # Swiss must be much cheaper than round-robin yet competitive in power.
    swiss_games = result.row("Swiss", 0.5).mean_games
    rr_games = result.row("RoundRobin", 0.5).mean_games
    swiss_power = result.row("Swiss", 0.5).predictive_power
    rr_power = result.row("RoundRobin", 0.5).predictive_power
    print(paper_vs_measured(
        "Swiss converges logarithmically",
        "accurate at a fraction of round-robin cost",
        f"{swiss_games:.0f} vs {rr_games:.0f} games, "
        f"power {swiss_power:.2f} vs {rr_power:.2f}",
        swiss_games < rr_games / 2 and swiss_power > 0.6 * rr_power,
    ))
    assert swiss_games < rr_games / 2
    assert swiss_power > 0.5 * rr_power

    # All formats perfect without noise.
    for fmt in FORMAT_NAMES:
        assert result.row(fmt, 0.0).predictive_power == 1.0
