"""Ablations of this reproduction's own design decisions (DESIGN.md).

Beyond the paper's Fig. 16 ablations, DESIGN.md calls out two choices this
implementation makes and must justify empirically:

* **interleaved regions** — region ``r`` holds every ``n_r``-th index, so a
  region spans the whole lattice.  Contiguous blocks fix the leading (major)
  parameter digits, making a region's members near-clones: early
  termination cannot fire (no work-done gaps) and the tuning cost explodes.
* **sticky per-game unfairness** — the physics term that makes one game an
  imperfect judge.  The tournament must remain accurate despite it (that is
  the whole premise); switching it off must not change the winner quality,
  only make individual games cleaner.
"""

import numpy as np

import repro.cloud.colocation as colocation
from repro.apps import make_application
from repro.core.config import DarwinGameConfig
from repro.experiments import paper_vs_measured, render_table
from repro.experiments.protocol import run_strategy


def run_region_layouts():
    app = make_application("redis", scale="bench")
    out = {}
    for label, interleaved in (("interleaved", True), ("contiguous", False)):
        runs = [
            run_strategy(
                app, "DarwinGame", seed=seed,
                darwin_config=DarwinGameConfig(
                    interleaved_regions=interleaved, seed=seed
                ),
            )
            for seed in (0, 1)
        ]
        out[label] = {
            "time": float(np.mean([r.mean_time for r in runs])),
            "cov": float(np.mean([r.cov_percent for r in runs])),
            "hours": float(np.mean([r.core_hours for r in runs])),
        }
    return out


def test_interleaved_vs_contiguous_regions(once):
    result = once(run_region_layouts)
    print()
    print(render_table(
        ["region layout", "exec time (s)", "CoV %", "core-hours"],
        [
            (label, r["time"], r["cov"], r["hours"])
            for label, r in result.items()
        ],
        title="Design decision — region layout (Redis, 2 seeds)",
    ))
    inter, contig = result["interleaved"], result["contiguous"]
    saving = 100.0 * (1.0 - inter["hours"] / contig["hours"])
    print(paper_vs_measured(
        "interleaved regions cut tuning cost",
        "(design expectation: large)",
        f"{saving:.0f}% fewer core-hours at equal quality",
        saving > 30.0 and inter["time"] <= contig["time"] * 1.05,
    ))
    assert inter["hours"] < contig["hours"] * 0.7
    assert inter["time"] <= contig["time"] * 1.05


def test_unfairness_does_not_break_the_tournament(once):
    """The tournament's output quality must survive sticky per-game luck."""
    app = make_application("redis", scale="bench")

    def run_with_unfairness(std):
        original = colocation._UNFAIRNESS_STD
        colocation._UNFAIRNESS_STD = std
        try:
            run = run_strategy(app, "DarwinGame", seed=3)
        finally:
            colocation._UNFAIRNESS_STD = original
        return run

    noisy = once(lambda: run_with_unfairness(0.03))
    clean = run_with_unfairness(0.0)
    print()
    print(render_table(
        ["game unfairness std", "exec time (s)", "CoV %", "core-hours"],
        [
            ("0.03 (default)", noisy.mean_time, noisy.cov_percent, noisy.core_hours),
            ("0.00 (clean games)", clean.mean_time, clean.cov_percent, clean.core_hours),
        ],
        title="Design decision — sticky per-game unfairness (Redis)",
    ))
    print(paper_vs_measured(
        "tournament tolerates imperfect single games",
        "repeated games absorb per-game luck",
        f"{100 * abs(noisy.mean_time / clean.mean_time - 1):.1f}% quality delta",
        abs(noisy.mean_time / clean.mean_time - 1) < 0.05,
    ))
    assert abs(noisy.mean_time / clean.mean_time - 1) < 0.05
