"""Sec. 5 stability claim: DarwinGame picks the same configuration repeatedly."""

from repro.experiments import paper_vs_measured, render_table, run_stability


def test_pick_stability(once):
    dg = once(lambda: run_stability(
        "redis", strategy="DarwinGame", scale="bench", repeats=10, seed=0
    ))
    bliss = run_stability("redis", strategy="BLISS", scale="bench", repeats=10, seed=0)
    print()
    print(render_table(
        ["strategy", "repeats", "distinct picks", "modal pick fraction"],
        [
            (dg.strategy, dg.repeats, dg.distinct_picks, dg.modal_pick_fraction),
            (bliss.strategy, bliss.repeats, bliss.distinct_picks, bliss.modal_pick_fraction),
        ],
        title="Pick stability across repeated tuning campaigns (Redis)",
    ))
    print(paper_vs_measured(
        "DarwinGame picks the same config", "93 of 100 repeats",
        f"modal pick in {dg.modal_pick_fraction:.0%} of {dg.repeats} repeats",
        dg.modal_pick_fraction >= 0.6,
    ))
    print(paper_vs_measured(
        "next-best tuner is unstable", "42 distinct configs in 100 repeats",
        f"{bliss.distinct_picks} distinct configs in {bliss.repeats} repeats",
        bliss.distinct_picks >= dg.distinct_picks,
    ))
    assert dg.modal_pick_fraction >= 0.5
    assert bliss.distinct_picks >= dg.distinct_picks
