"""Fig. 16: contribution of each tournament design element."""

import numpy as np

from repro.core.config import ABLATION_NAMES
from repro.experiments import paper_vs_measured, render_table
from repro.experiments.ablations import run_ablations

APPS = ("redis", "gromacs", "ffmpeg", "lammps")


def test_fig16_ablations(once):
    result = once(lambda: run_ablations(APPS, scale="bench", repeats=1, seed=0))
    print()
    rows = []
    for app in APPS:
        for name in ABLATION_NAMES:
            r = result.row(app, name)
            rows.append((
                app, name, r.time_increase_percent, r.cov_increase_percent,
                r.core_hours_increase_percent,
            ))
    print(render_table(
        ["app", "ablation", "time +%", "CoV +%", "core-hours +%"],
        rows,
        title="Fig. 16 — % increase w.r.t. full DarwinGame",
    ))

    # Cost-saving features: removing them must inflate core-hours.
    for name in ("all 2-player games", "w/o early termination"):
        increases = [result.row(a, name).core_hours_increase_percent for a in APPS]
        print(paper_vs_measured(
            f"'{name}' raises tuning cost", ">30%",
            f"{np.mean(increases):.0f}% on average", np.mean(increases) > 15.0,
        ))
        assert np.mean(increases) > 10.0

    # Quality features: removing them must hurt execution time or CoV on
    # most applications.
    quality_ablations = (
        "w/o regional", "one-win regional", "w/o Swiss", "w/o global",
        "w/o consistency score", "w/o exe. score",
    )
    hurt = 0
    for name in quality_ablations:
        worse = sum(
            result.row(a, name).time_increase_percent > 1.0
            or result.row(a, name).cov_increase_percent > 50.0
            for a in APPS
        )
        hurt += worse >= 2
    print(paper_vs_measured(
        "removing quality elements hurts outcome",
        "all elements contribute",
        f"{hurt} of {len(quality_ablations)} ablations hurt >=2 apps",
        hurt >= 4,
    ))
    assert hurt >= 3
