"""Fig. 3: existing tuners are suboptimal and inconsistent across time."""

from repro.apps import make_application
from repro.experiments import paper_vs_measured, render_table, run_fig3


def test_fig03_tuner_instability(once):
    app = make_application("redis", scale="bench")
    result = once(lambda: run_fig3(app, seed=0))
    print()
    strategies = list(dict.fromkeys(c.strategy for c in result.cells))
    epochs = list(dict.fromkeys(c.epoch_label for c in result.cells))
    table = {(c.strategy, c.epoch_label): c.mean_time for c in result.cells}
    print(render_table(
        ["strategy"] + epochs + ["distinct picks"],
        [
            [s] + [table[(s, e)] for e in epochs] + [result.distinct_choices[s]]
            for s in strategies
        ],
        title="Fig. 3 — execution time when optimized at T1/T2/T3 (Redis)",
    ))
    cloud_tuners = [s for s in strategies if s != "Optimal"]
    worst_gap = max(
        (table[(s, e)] - result.optimal_time) / result.optimal_time
        for s in cloud_tuners for e in epochs
    )
    inconsistent = [s for s in cloud_tuners if result.distinct_choices[s] > 1]
    print(paper_vs_measured(
        "existing tuners far from optimal",
        ">40% above optimal somewhere", f"worst gap {100*worst_gap:.0f}%",
        worst_gap > 0.2,
    ))
    print(paper_vs_measured(
        "selected configuration changes across T1/T2/T3",
        "tuners pick different configs", f"{len(inconsistent)} of {len(cloud_tuners)} tuners inconsistent",
        len(inconsistent) >= 2,
    ))
    assert worst_gap > 0.1
    assert len(inconsistent) >= 1
