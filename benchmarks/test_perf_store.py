"""Store-backend benchmark: append throughput and resume-scan latency.

The ISSUE 8 acceptance workload: push ~10k synthetic campaign records
through each ``ResultStore`` backend, measure append throughput and the
fresh-process resume scan (``completed_ids()`` on a cold store object —
exactly what ``repro resume`` pays before it can skip done work), and
record one BENCH.jsonl row per backend.

The gate is the reason the SQLite backend exists: its ``completed_ids``
is an ID-only indexed scan, so on a store this size it must beat the
single-file JSONL backend's full-file reparse by at least 5x.

Run via ``scripts/bench.sh``, or directly::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_store.py -s
"""

import json
import os
import platform
import time

import pytest

from repro.campaigns import CampaignSpec, open_store
from repro.campaigns.store import BACKEND_NAMES
from repro.campaigns.store.record import CampaignRecord, STATUS_DONE

#: Synthetic records per backend — enough that read strategy (indexed scan
#: vs full reparse) dominates fixed costs, small enough for CI.
_RECORDS = 10_000

#: Resume-scan repetitions per backend; best-of rides out jitter.
_SCAN_ROUNDS = 3

_PATHS = {"jsonl": "bench.jsonl", "sharded": "bench.d", "sqlite": "bench.sqlite"}


def _record(payload: dict) -> None:
    line = json.dumps(payload, sort_keys=True)
    print(f"\n[perf] {line}")
    out = os.environ.get("BENCH_JSON")
    if out:
        with open(out, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")


def _synthetic_records(count: int):
    """Realistically-shaped done records, cheap to mint by the thousand.

    Tuning a real campaign takes seconds; at 10k records that is the
    benchmark measuring the tuner, not the store.  Seed variation keeps
    every campaign ID distinct (IDs are content hashes of the spec).
    """
    return [
        CampaignRecord(
            spec=CampaignSpec(app="redis", seed=seed, scale="test"),
            status=STATUS_DONE,
            best_index=seed % 97,
            core_hours=1.5,
            tuning_seconds=42.0,
        )
        for seed in range(count)
    ]


def _row(backend: str, phase: str, seconds: float, count: int) -> dict:
    return {
        "benchmark": f"store_{phase}_10k",
        "date": time.strftime("%Y-%m-%d"),
        "backend": backend,
        "records": count,
        "wall_seconds": round(seconds, 4),
        "records_per_second": round(count / seconds, 1) if seconds > 0 else 0.0,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


@pytest.mark.benchmark
def test_store_backend_append_and_scan(tmp_path):
    records = _synthetic_records(_RECORDS)
    done_ids = {r.campaign_id for r in records}
    scan_seconds = {}

    for backend in BACKEND_NAMES:
        path = tmp_path / _PATHS[backend]
        store = open_store(path, backend=backend)

        start = time.perf_counter()
        for record in records:
            store.append(record)
        append_seconds = time.perf_counter() - start
        store.close()
        _record(_row(backend, "append", append_seconds, _RECORDS))

        # The resume scan: a fresh process (fresh store object, cold
        # snapshot) asking "what can I skip?".
        best = None
        for _ in range(_SCAN_ROUNDS):
            fresh = open_store(path, backend=backend)
            start = time.perf_counter()
            completed = fresh.completed_ids()
            elapsed = time.perf_counter() - start
            fresh.close()
            assert completed == done_ids
            if best is None or elapsed < best:
                best = elapsed
        scan_seconds[backend] = best
        _record(_row(backend, "resume_scan", best, _RECORDS))

    # The acceptance gate: the indexed backend must make the resume scan
    # at least 5x cheaper than reparsing the whole single-file store.
    ratio = scan_seconds["jsonl"] / scan_seconds["sqlite"]
    assert ratio >= 5.0, (
        f"sqlite completed_ids ({scan_seconds['sqlite']*1000:.1f}ms) only "
        f"{ratio:.1f}x faster than jsonl "
        f"({scan_seconds['jsonl']*1000:.1f}ms) at {_RECORDS} records; "
        f"the indexed backend must be >= 5x"
    )
