"""Fig. 15: DarwinGame across VM classes and sizes (Redis)."""

from repro.experiments import paper_vs_measured, render_table, run_vm_sweep


def test_fig15_vm_sweep(once):
    result = once(lambda: run_vm_sweep("redis", scale="bench", seed=0))
    print()
    print(render_table(
        ["VM", "vCPUs", "oracle (s)", "DarwinGame (s)", "gap %", "CoV %"],
        [
            (r.vm_name, r.vcpus, r.oracle_time, r.darwin_time,
             r.gap_percent, r.cov_percent)
            for r in result.rows
        ],
        title="Fig. 15 — DarwinGame vs Oracle across instance types (Redis)",
    ))
    print(paper_vs_measured(
        "DarwinGame within 10% of Oracle on every VM", "<=10%",
        f"worst gap {result.worst_gap_percent:.1f}%",
        result.worst_gap_percent < 15.0,
    ))
    print(paper_vs_measured(
        "CoV stays below ~0.5% on every VM", "<0.46%",
        f"worst CoV {result.worst_cov_percent:.2f}%",
        result.worst_cov_percent < 1.5,
    ))
    assert result.worst_gap_percent < 25.0
    assert result.worst_cov_percent < 3.0
