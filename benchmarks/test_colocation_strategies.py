"""Sec. 3.2/3.3 asides: mass co-location and solo exposure both lose to games.

Two quantified claims from the design discussion:

* co-locating ~1000 configurations at once yields a winner "more than 2.8x
  more execution time" than optimal (co-location noise swamps the signal);
* comparing configurations via individual (solo) exposure to background
  noise is "often more than 10%" worse than DarwinGame's shared-noise games.
"""

from repro.experiments import paper_vs_measured, render_table
from repro.experiments.colocation_study import run_colocation_study


def test_colocation_strategies(once):
    result = once(lambda: run_colocation_study("redis", scale="bench", repeats=3, seed=0))
    print()
    rows = [
        (o.strategy, o.mean_pick_time, o.time_vs_optimal)
        for o in result.outcomes
    ]
    print(render_table(
        ["strategy", "pick cloud time (s)", "x of optimal"],
        rows,
        title="Co-location strategies (Redis): how to compare configurations",
    ))

    mass = result.outcome("MassColocation")
    solo = result.outcome("SoloExposure")
    darwin = result.outcome("DarwinGame")

    print(paper_vs_measured(
        "mass co-location (1000 players) fails",
        ">2.8x of optimal",
        f"{mass.time_vs_optimal:.2f}x of optimal",
        mass.time_vs_optimal > 1.5,
    ))
    print(paper_vs_measured(
        "solo exposure loses to shared-noise games",
        ">10% worse than DarwinGame",
        f"{100 * (solo.mean_pick_time / darwin.mean_pick_time - 1):.0f}% worse",
        solo.mean_pick_time > 1.05 * darwin.mean_pick_time,
    ))
    assert mass.time_vs_optimal > 1.5
    assert solo.mean_pick_time > darwin.mean_pick_time
    assert darwin.time_vs_optimal < 1.15
