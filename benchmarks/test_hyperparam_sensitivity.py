"""Sec. 3.2/3.3: robustness to the d and n_r hyper-parameters."""

from repro.experiments import paper_vs_measured, render_table, run_sensitivity


def test_hyperparameter_sensitivity(once):
    result = once(lambda: run_sensitivity("redis", scale="bench", seed=0))
    print()
    print(render_table(
        ["parameter", "value", "exec time (s)"],
        [(p.parameter, p.value, p.mean_time) for p in result.points],
        title="Hyper-parameter sweeps (Redis)",
    ))
    d_spread = result.max_spread_percent("work_deviation")
    r_spread = result.max_spread_percent("n_regions")
    print(paper_vs_measured(
        "outcome change for d in 5-15%", "<2.7%", f"{d_spread:.1f}%",
        d_spread < 8.0,
    ))
    print(paper_vs_measured(
        "outcome change for n_r in 0.5x-1.5x", "<3.7%", f"{r_spread:.1f}%",
        r_spread < 8.0,
    ))
    assert d_spread < 15.0
    assert r_spread < 15.0
