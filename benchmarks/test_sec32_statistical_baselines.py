"""Sec. 3.2 claim: quantile regression and Thompson sampling also fall short.

The paper's design discussion asserts that classical statistical ways of
handling variability — quantile regression and Thompson sampling — remain
"significantly less effective" than DarwinGame under cloud interference.
This bench regenerates that comparison with the same evaluation protocol as
the headline figures (execution time of the pick, CoV over 100 cloud runs).
"""

import numpy as np

from repro.experiments import (
    paper_vs_measured,
    render_table,
    run_statistical_comparison,
)

APPS = ("redis", "lammps")
REPEATS = 3
SEED = 0


def grid():
    return run_statistical_comparison(APPS, scale="bench", repeats=REPEATS, seed=SEED)


def test_sec32_statistical_methods(once):
    result = once(grid)
    print()
    rows = []
    for app in APPS:
        for strategy in ("Optimal", "DarwinGame", "QuantileRegression",
                         "ThompsonSampling", "BLISS"):
            r = result.row(app, strategy)
            rows.append((
                app, strategy, r.mean_time, r.gap_vs_optimal_percent, r.cov_percent,
            ))
    print(render_table(
        ["app", "strategy", "exec time (s)", "gap vs optimal %", "CoV %"],
        rows,
        title="Sec. 3.2 — statistical noise-handling methods vs DarwinGame",
    ))

    dg_gaps = [result.row(app, "DarwinGame").gap_vs_optimal_percent for app in APPS]
    stat_gaps = [
        result.row(app, s).gap_vs_optimal_percent
        for app in APPS
        for s in ("QuantileRegression", "ThompsonSampling")
    ]
    print(paper_vs_measured(
        "statistical methods vs DarwinGame",
        "significantly less effective",
        f"stat-methods gap {np.mean(stat_gaps):.1f}% vs DarwinGame {np.mean(dg_gaps):.1f}%",
        np.mean(stat_gaps) > 2.0 * max(np.mean(dg_gaps), 1.0),
    ))
    # Every statistical method, on every app, must trail DarwinGame.
    for app in APPS:
        dg = result.row(app, "DarwinGame").mean_time
        for s in ("QuantileRegression", "ThompsonSampling"):
            assert result.row(app, s).mean_time > dg, f"{s} beat DarwinGame on {app}"
    # And their picks must be visibly noisier than DarwinGame's.
    dg_cov = np.mean([result.row(app, "DarwinGame").cov_percent for app in APPS])
    stat_cov = np.mean([
        result.row(app, s).cov_percent
        for app in APPS for s in ("QuantileRegression", "ThompsonSampling")
    ])
    assert dg_cov < stat_cov
