"""Perf-regression benchmark: end-to-end ``DarwinGame.tune()`` timing.

Times the acceptance workload of the batched-round-engine PR — the stock
redis application (bench scale, ~210k points) tuned on an ``m5.8xlarge``
with environment seed 7 and tournament seed 1 — and asserts it stays well
under the pre-batching baseline (~9.0 s on the reference machine, ~6.0 s on
the machine that recorded the ROADMAP "Performance" entry; the batched
engine runs it in well under 2 s on either).

Run via ``scripts/bench.sh`` to append the measurement to the repo's
``BENCH.jsonl`` perf-trajectory file, or directly::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_tournament.py -s

Set ``BENCH_JSON=<path>`` to append the JSON entry to that file.
"""

import json
import os
import platform
import time

import pytest

from repro.apps import make_application
from repro.cloud.environment import CloudEnvironment
from repro.cloud.vm import VMSpec
from repro.core.config import DarwinGameConfig
from repro.core.tournament import DarwinGame

# Pre-batching seed wall time on the reference machine (see ISSUE 1 /
# ROADMAP "Performance"); the regression gate is a third of it, which the
# batched engine clears ~2x over even on slower hardware.
_BASELINE_SECONDS = 9.0
_GATE_SECONDS = _BASELINE_SECONDS / 3.0


def _record(payload: dict) -> None:
    # Every trajectory entry is machine-readable about its conditions: the
    # visible core count (ROADMAP's 1-core caveat) and the cache state.
    from repro.campaigns import default_jobs

    payload.setdefault("cores", default_jobs())
    payload.setdefault("cache", "cold")
    line = json.dumps(payload, sort_keys=True)
    print(f"\n[perf] {line}")
    out = os.environ.get("BENCH_JSON")
    if out:
        with open(out, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")


@pytest.mark.benchmark
def test_tune_wall_time_regression():
    """The acceptance workload must stay >= 3x faster than the seed."""
    app = make_application("redis")  # bench scale
    env = CloudEnvironment(VMSpec.preset("m5.8xlarge"), seed=7)
    tuner = DarwinGame(DarwinGameConfig(seed=1))

    t0 = time.perf_counter()
    result = tuner.tune(app, env)
    wall = time.perf_counter() - t0

    _record(
        {
            "benchmark": "tune_redis_m5.8xlarge_seed7_1",
            "date": time.strftime("%Y-%m-%d"),
            "jobs": 1,  # one tune() is a single campaign; sweeps record theirs
            "wall_seconds": round(wall, 3),
            "speedup_vs_seed_baseline": round(_BASELINE_SECONDS / wall, 2),
            "winner_index": int(result.best_index),
            "evaluations": int(result.evaluations),
            "core_hours": round(float(result.core_hours), 2),
            "tuning_seconds": round(float(result.tuning_seconds), 1),
            "python": platform.python_version(),
            "machine": platform.machine(),
        }
    )
    assert wall < _GATE_SECONDS, (
        f"tune() took {wall:.2f}s — over the {_GATE_SECONDS:.2f}s perf gate "
        f"(seed baseline {_BASELINE_SECONDS:.1f}s / 3)"
    )


@pytest.mark.benchmark
def test_tune_is_seed_deterministic_at_bench_scale():
    """Same seeds => same winner, so perf numbers are comparable across runs."""
    app = make_application("redis")
    winners = []
    for _ in range(2):
        env = CloudEnvironment(VMSpec.preset("m5.8xlarge"), seed=7)
        winners.append(DarwinGame(DarwinGameConfig(seed=1)).tune(app, env).best_index)
    assert winners[0] == winners[1]
