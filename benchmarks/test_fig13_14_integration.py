"""Figs. 13 and 14: integrating DarwinGame with ActiveHarmony and BLISS."""

import numpy as np

from repro.experiments import paper_vs_measured, render_table, run_integration

APPS = ("redis", "gromacs", "ffmpeg", "lammps")


def test_fig13_14_integration(once):
    result = once(lambda: run_integration(APPS, scale="bench", repeats=2, seed=0))
    print()
    rows = []
    for app in APPS:
        for base in ("ActiveHarmony", "BLISS"):
            alone = result.row(app, base)
            hybrid = result.row(app, f"{base}+DarwinGame")
            rows.append((
                app, base, alone.mean_time, hybrid.mean_time,
                result.improvement_percent(app, base),
                alone.core_hours_pct_of_exhaustive,
                hybrid.core_hours_pct_of_exhaustive,
            ))
    print(render_table(
        ["app", "base tuner", "alone (s)", "+DarwinGame (s)", "improvement %",
         "alone core-h %", "hybrid core-h %"],
        rows,
        title="Figs. 13/14 — integration with existing tuners",
    ))
    improvements = [result.improvement_percent(app, b)
                    for app in APPS for b in ("ActiveHarmony", "BLISS")]
    print(paper_vs_measured(
        "integration improves execution time", ">15% on average (9-22% per case)",
        f"{np.mean(improvements):.1f}% on average", np.mean(improvements) > 8.0,
    ))
    cheaper = sum(
        result.row(a, f"{b}+DarwinGame").core_hours < result.row(a, b).core_hours
        for a in APPS for b in ("ActiveHarmony", "BLISS")
    )
    print(paper_vs_measured(
        "integration reduces tuning core-hours", "all cases",
        f"{cheaper} of {2*len(APPS)} cases", cheaper >= 6,
    ))
    assert np.mean(improvements) > 5.0
    assert cheaper >= 5
