"""Fig. 1: execution-time spread across configurations and across runs."""

import numpy as np

from repro.analysis.textplots import cdf_plot
from repro.apps import make_application
from repro.experiments import (
    paper_vs_measured,
    render_table,
    run_fig1_left,
    run_fig1_right,
)


def test_fig01_left_config_spread(once):
    app = make_application("redis", scale="bench")
    result = once(lambda: run_fig1_left(app, n_configs=250, seed=0))
    print()
    deciles = np.quantile(result.times, np.linspace(0, 1, 11))
    print(
        render_table(
            ["decile", "execution time (s)"],
            [(f"{10*i}%", float(t)) for i, t in enumerate(deciles)],
            title="Fig. 1 (left) — CDF of 250 random Redis configurations",
        )
    )
    print()
    print(cdf_plot(
        result.times,
        title="Fig. 1 (left) — % of configurations vs execution time",
        x_label="execution time (s)",
        height=10,
        width=56,
    ))
    frac_2x = 100 * result.fraction_at_least_2x_best
    print(paper_vs_measured(
        "spread of execution times (max/min)", ">3x (230-792s)",
        f"{result.spread_ratio:.2f}x", result.spread_ratio > 2.5,
    ))
    print(paper_vs_measured(
        "configurations >= 2x the best", ">93%", f"{frac_2x:.1f}%", frac_2x > 85.0,
    ))
    assert result.spread_ratio > 2.0
    assert frac_2x > 80.0


def test_fig01_right_run_variation(once):
    app = make_application("redis", scale="bench")
    result = once(lambda: run_fig1_right(app, runs=1000, seed=0))
    print()
    print(
        render_table(
            ["config", "mean (s)", "min (s)", "max (s)", "variation %"],
            [
                (
                    label,
                    float(series.mean()),
                    float(series.min()),
                    float(series.max()),
                    100.0 * (series.max() - series.min()) / series.min(),
                )
                for label, series in zip(result.labels, result.per_config_times)
            ],
            title="Fig. 1 (right) — 1000 runs of configurations A/B/C",
        )
    )
    print(paper_vs_measured(
        "run-to-run variation of a fixed config", "up to ~45%",
        f"up to {result.max_variation_percent:.0f}%",
        result.max_variation_percent > 25.0,
    ))
    assert result.max_variation_percent > 15.0
