"""Sec. 6 framing: heuristic methods also assume a stable environment.

The related work groups genetic algorithms and simulated annealing among
the established heuristic tuning approaches, and the paper's thesis applies
to them unchanged: their fitness/acceptance tests run on noisy solo
measurements, so cloud interference corrupts their search just as it
corrupts the model-based tuners.  This bench runs both heuristics through
the standard evaluation protocol next to DarwinGame.
"""

import numpy as np

from repro.experiments import paper_vs_measured, render_table
from repro.experiments.protocol import repeat_strategy
from repro.apps import make_application

STRATEGIES = ("DarwinGame", "GeneticAlgorithm", "SimulatedAnnealing")
REPEATS = 3


def grid():
    app = make_application("redis", scale="bench")
    optimal = app.optimal.true_time
    rows = []
    for strategy in STRATEGIES:
        runs = repeat_strategy(app, strategy, repeats=REPEATS, seed=0)
        mean_time = float(np.mean([r.mean_time for r in runs]))
        rows.append({
            "strategy": strategy,
            "mean_time": mean_time,
            "gap": 100.0 * (mean_time - optimal) / optimal,
            "cov": float(np.mean([r.cov_percent for r in runs])),
        })
    return rows


def test_heuristic_baselines(once):
    rows = once(grid)
    print()
    print(render_table(
        ["strategy", "exec time (s)", "gap vs optimal %", "CoV %"],
        [(r["strategy"], r["mean_time"], r["gap"], r["cov"]) for r in rows],
        title="Sec. 6 — heuristic baselines under cloud interference (Redis)",
    ))
    by_name = {r["strategy"]: r for r in rows}
    dg = by_name["DarwinGame"]
    for name in ("GeneticAlgorithm", "SimulatedAnnealing"):
        h = by_name[name]
        print(paper_vs_measured(
            f"{name} trails DarwinGame",
            "interference-unaware heuristics are suboptimal",
            f"gap {h['gap']:.1f}% vs {dg['gap']:.1f}%, CoV {h['cov']:.1f}% vs {dg['cov']:.1f}%",
            h["gap"] > dg["gap"] and h["cov"] > dg["cov"],
        ))
        assert h["mean_time"] > dg["mean_time"]
        assert h["cov"] > dg["cov"]
