"""Figs. 10, 11 and 12: the headline comparison on all four applications.

The three figures share one (cached) experiment grid: every strategy tunes
every application several times; we report execution time of the chosen
configuration, its CoV over 100 cloud runs, and tuning core-hours as a
percentage of exhaustive search.
"""

import numpy as np

from repro.experiments import paper_vs_measured, render_table, run_headline

APPS = ("redis", "gromacs", "ffmpeg", "lammps")
REPEATS = 3
SEED = 0


def grid():
    return run_headline(APPS, scale="bench", repeats=REPEATS, seed=SEED)


def test_fig10_execution_time(once):
    result = once(grid)
    print()
    rows = []
    for app in APPS:
        for strategy in ("Optimal", "DarwinGame", "Exhaustive", "BLISS",
                         "OpenTuner", "ActiveHarmony"):
            r = result.row(app, strategy)
            rows.append((app, strategy, r.mean_time, r.time_low, r.time_high))
    print(render_table(
        ["app", "strategy", "exec time (s)", "low", "high"],
        rows,
        title="Fig. 10 — execution time of the chosen configuration",
    ))
    gaps, next_best_gaps = [], []
    for app in APPS:
        optimal = result.row(app, "Optimal").mean_time
        dg = result.row(app, "DarwinGame").mean_time
        others = [
            result.row(app, s).mean_time
            for s in ("Exhaustive", "BLISS", "OpenTuner", "ActiveHarmony")
        ]
        gaps.append(100 * (dg - optimal) / optimal)
        next_best_gaps.append(100 * (min(others) - optimal) / optimal)
        assert dg <= min(others) * 1.02, f"DarwinGame not best on {app}"
    print(paper_vs_measured(
        "DarwinGame vs optimal", "+4.2% on average",
        f"+{np.mean(gaps):.1f}% on average", np.mean(gaps) < 15.0,
    ))
    print(paper_vs_measured(
        "next-best tuner vs optimal", ">40% above optimal",
        f"+{np.mean(next_best_gaps):.1f}% on average", np.mean(next_best_gaps) > 10.0,
    ))


def test_fig11_cov(once):
    result = once(grid)
    print()
    rows = []
    for app in APPS:
        for strategy in ("DarwinGame", "Exhaustive", "BLISS", "OpenTuner",
                         "ActiveHarmony"):
            r = result.row(app, strategy)
            rows.append((app, strategy, r.cov_percent))
    print(render_table(
        ["app", "strategy", "CoV %"],
        rows,
        title="Fig. 11 — CoV of execution time with the chosen configuration",
    ))
    dg_covs = [result.row(app, "DarwinGame").cov_percent for app in APPS]
    other_covs = [
        result.row(app, s).cov_percent
        for app in APPS
        for s in ("Exhaustive", "BLISS", "OpenTuner", "ActiveHarmony")
    ]
    print(paper_vs_measured(
        "DarwinGame CoV", "0.46%", f"{np.mean(dg_covs):.2f}%",
        np.mean(dg_covs) < 1.5,
    ))
    print(paper_vs_measured(
        "other solutions' CoV", ">6%", f"{np.mean(other_covs):.1f}% on average",
        np.mean(other_covs) > 5.0,
    ))
    assert np.mean(dg_covs) < np.mean(other_covs) / 3.0


def test_fig12_core_hours(once):
    result = once(grid)
    print()
    rows = []
    for app in APPS:
        for strategy in ("DarwinGame", "BLISS", "OpenTuner", "ActiveHarmony"):
            r = result.row(app, strategy)
            rows.append((app, strategy, r.core_hours, r.core_hours_pct_of_exhaustive))
    print(render_table(
        ["app", "strategy", "core-hours", "% of exhaustive"],
        rows,
        title="Fig. 12 — tuning cost (core-hours, % of exhaustive search)",
    ))
    cheapest_count = 0
    for app in APPS:
        dg = result.row(app, "DarwinGame").core_hours
        others = [
            result.row(app, s).core_hours
            for s in ("BLISS", "OpenTuner", "ActiveHarmony")
        ]
        cheapest_count += dg <= min(others)
        pct = result.row(app, "DarwinGame").core_hours_pct_of_exhaustive
        assert pct < 12.0, f"DarwinGame cost on {app} is {pct:.1f}% of exhaustive"
    print(paper_vs_measured(
        "DarwinGame needs the fewest core-hours", "in most cases",
        f"cheapest on {cheapest_count} of {len(APPS)} apps", cheapest_count >= 3,
    ))
    assert cheapest_count >= 2
