"""Sweep-throughput benchmark: the Table-1 grid through the campaign runner.

The ISSUE 2 acceptance workload: run the Table 1 applications (test scale,
two seeds each — 8 campaigns) serially and with ``--jobs 2``, assert the
parallel sweep reproduces serial results bit for bit, and record
campaigns-per-minute for both in the BENCH.jsonl perf trajectory (each
entry carries its ``jobs``).

The speedup assertion is conditional on the machine actually having more
than one visible core — on a single-core runner a process pool can only
add overhead, so there we only bound that overhead.

Run via ``scripts/bench.sh``, or directly::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_sweep.py -s
"""

import json
import os
import platform
import time

import pytest

from repro.campaigns import CampaignRunner, default_jobs, summarise
from repro.campaigns import runner as campaign_runner
from repro.experiments.table1 import table1_grid

_JOBS = 2


def _cold_run(jobs: int, specs):
    """Run the grid with a cold per-process app cache.

    The serial run would otherwise warm the parent's ``_APP_CACHE`` that a
    fork-based pool inherits, biasing the serial-vs-parallel comparison.
    """
    campaign_runner._APP_CACHE.clear()
    return CampaignRunner(jobs=jobs).run(specs)


def _record(payload: dict) -> None:
    line = json.dumps(payload, sort_keys=True)
    print(f"\n[perf] {line}")
    out = os.environ.get("BENCH_JSON")
    if out:
        with open(out, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")


@pytest.mark.benchmark
def test_sweep_parallel_matches_serial_and_throughput():
    grid = table1_grid(scale="test", seeds=(0, 1), eval_runs=50)
    specs = list(grid.specs())
    assert len(specs) == 8

    serial = _cold_run(1, specs)
    parallel = _cold_run(_JOBS, specs)

    # Acceptance: same campaign IDs => same results, bit for bit.
    assert json.dumps([r.to_payload() for r in serial.records], sort_keys=True) \
        == json.dumps([r.to_payload() for r in parallel.records], sort_keys=True)
    assert summarise(serial.records).to_json() \
        == summarise(parallel.records).to_json()

    for report in (serial, parallel):
        _record(
            {
                "benchmark": "sweep_table1_test_2seeds",
                "date": time.strftime("%Y-%m-%d"),
                "jobs": report.jobs,
                "campaigns": report.executed,
                "wall_seconds": round(report.wall_seconds, 3),
                "campaigns_per_minute": round(report.campaigns_per_minute, 1),
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cores": default_jobs(),
            }
        )

    if default_jobs() > 1:
        # With real cores available the pool must beat serial outright.
        assert parallel.wall_seconds < serial.wall_seconds, (
            f"--jobs {_JOBS} sweep ({parallel.wall_seconds:.2f}s) not faster "
            f"than serial ({serial.wall_seconds:.2f}s) on a "
            f"{default_jobs()}-core machine"
        )
    else:
        # Single visible core: only bound the pool's overhead.
        assert parallel.wall_seconds < 3.0 * serial.wall_seconds + 1.0, (
            f"worker-pool overhead blew up: serial {serial.wall_seconds:.2f}s "
            f"vs --jobs {_JOBS} {parallel.wall_seconds:.2f}s"
        )


@pytest.mark.benchmark
def test_resume_after_interruption_reuses_stored_campaigns(tmp_path):
    grid = table1_grid(scale="test", seeds=(0, 1), eval_runs=50)
    specs = list(grid.specs())

    from repro.campaigns import CampaignStore

    store = CampaignStore(tmp_path / "sweep.jsonl")
    store.write_grid(grid)
    CampaignRunner(jobs=1, store=store).run(specs[: len(specs) // 2])

    resumed = CampaignRunner(jobs=_JOBS, store=store).run(specs)
    assert resumed.skipped == len(specs) // 2
    assert resumed.executed == len(specs) - len(specs) // 2

    fresh = CampaignRunner(jobs=1).run(specs)
    assert summarise(resumed.records).to_json() \
        == summarise(fresh.records).to_json()
