"""Sweep-throughput benchmark: the Table-1 grid through the campaign runner.

The ISSUE 2 acceptance workload: run the Table 1 applications (test scale,
two seeds each — 8 campaigns) serially and with ``--jobs 2``, assert the
parallel sweep reproduces serial results bit for bit, and record
campaigns-per-minute for both in the BENCH.jsonl perf trajectory (each
entry carries its ``jobs``, the visible core count, and its cache state).

ISSUE 3 adds the warm-surface-cache row: the same grid with a prewarmed
:mod:`repro.caching` disk tier must again be bit-identical and at least as
fast as the cold run — the cold-vs-warm pair is recorded so ROADMAP's
throughput table can cite both.

The parallel speedup assertion is conditional on the machine actually
having more than one visible core — on a single-core runner a process pool
can only add overhead, so there we only bound that overhead.

Run via ``scripts/bench.sh``, or directly::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_sweep.py -s
"""

import json
import os
import platform
import time

import pytest

from repro.caching import SurfaceCache, clear_process_caches, grid_app_pairs
from repro.campaigns import CampaignRunner, default_jobs, summarise
from repro.experiments.table1 import table1_grid
from repro.telemetry import read_telemetry, reset_telemetry

_JOBS = 2

#: Interleaved repetitions for the cold-vs-warm comparison; best-of keeps
#: the row honest on a noisy shared machine.
_ROUNDS = 3


def _fresh_run(jobs: int, specs, cache_dir=None, telemetry=False,
               exec_mode="process"):
    """Run the grid with cold per-process tiers (the cross-run state the
    former module-global app cache leaked between measurements)."""
    clear_process_caches()
    reset_telemetry()
    return CampaignRunner(
        jobs=jobs, cache_dir=cache_dir, telemetry=telemetry,
        exec_mode=exec_mode,
    ).run(specs)


def _record(payload: dict) -> None:
    payload.setdefault("cores", default_jobs())
    payload.setdefault("cache", "cold")
    line = json.dumps(payload, sort_keys=True)
    print(f"\n[perf] {line}")
    # An all-skipped resume (0 campaigns in ~0 wall seconds) measures
    # nothing — its throughput is 0.0 by definition, and appending it would
    # poison trajectory comparisons.  Print it, don't record it.
    if payload.get("campaigns", 0) == 0 or payload.get("wall_seconds", 0) <= 0:
        return
    out = os.environ.get("BENCH_JSON")
    if out:
        with open(out, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")


def _payloads(records):
    return json.dumps([r.to_payload() for r in records], sort_keys=True)


def _sweep_row(report, *, cache: str, scenario: str = "steady",
               fmt: str = "darwin", exec_mode: str = "process",
               benchmark: str = "sweep_table1_test_2seeds") -> dict:
    # Every sweep row names its scenario pack, tournament format, and
    # executor mode, so trajectory entries from dynamic-conditions,
    # alternate-shape, or mega-batched sweeps are never mistaken for the
    # baseline grid (see ROADMAP "Performance").
    return {
        "benchmark": benchmark,
        "date": time.strftime("%Y-%m-%d"),
        "jobs": report.jobs,
        "cache": cache,
        "scenario": scenario,
        "format": fmt,
        "exec_mode": exec_mode,
        "campaigns": report.executed,
        "retries": report.retries,
        "wall_seconds": round(report.wall_seconds, 3),
        "campaigns_per_minute": round(report.campaigns_per_minute, 1),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


@pytest.mark.benchmark
def test_sweep_parallel_matches_serial_and_throughput():
    grid = table1_grid(scale="test", seeds=(0, 1), eval_runs=50)
    specs = list(grid.specs())
    assert len(specs) == 8

    serial = _fresh_run(1, specs)
    parallel = _fresh_run(_JOBS, specs)

    # Acceptance: same campaign IDs => same results, bit for bit.
    assert _payloads(serial.records) == _payloads(parallel.records)
    assert summarise(serial.records).to_json() \
        == summarise(parallel.records).to_json()

    for report in (serial, parallel):
        _record(_sweep_row(report, cache="cold"))

    if default_jobs() > 1:
        # With real cores available the pool must beat serial outright.
        assert parallel.wall_seconds < serial.wall_seconds, (
            f"--jobs {_JOBS} sweep ({parallel.wall_seconds:.2f}s) not faster "
            f"than serial ({serial.wall_seconds:.2f}s) on a "
            f"{default_jobs()}-core machine"
        )
    else:
        # Single visible core: only bound the pool's overhead.
        assert parallel.wall_seconds < 3.0 * serial.wall_seconds + 1.0, (
            f"worker-pool overhead blew up: serial {serial.wall_seconds:.2f}s "
            f"vs --jobs {_JOBS} {parallel.wall_seconds:.2f}s"
        )


@pytest.mark.benchmark
def test_sweep_warm_cache_matches_cold_and_is_not_slower(tmp_path):
    """ISSUE 3 acceptance: warm == cold bit for bit, warm >= cold throughput."""
    grid = table1_grid(scale="test", seeds=(0, 1), eval_runs=50)
    specs = list(grid.specs())
    cache_dir = tmp_path / "surfaces"
    entries = SurfaceCache(cache_dir).warm(grid_app_pairs(specs))
    assert [e.status for e in entries] == ["computed"] * 4

    # Interleave cold and warm runs so machine drift hits both equally.
    cold_best = warm_best = None
    reference = None
    for _ in range(_ROUNDS):
        cold = _fresh_run(1, specs)
        warm = _fresh_run(1, specs, cache_dir=cache_dir)
        if reference is None:
            reference = _payloads(cold.records)
        # Warm-cache results must be bit-identical to cold-cache results.
        assert _payloads(cold.records) == reference
        assert _payloads(warm.records) == reference
        if cold_best is None or cold.wall_seconds < cold_best.wall_seconds:
            cold_best = cold
        if warm_best is None or warm.wall_seconds < warm_best.wall_seconds:
            warm_best = warm

    _record(_sweep_row(cold_best, cache="cold"))
    _record(_sweep_row(warm_best, cache="warm"))

    # The persisted tables replace first-touch surface computation with a
    # validated load; the warm sweep must not be slower than cold.  At test
    # scale the surfaces are tiny, so the margin is a few percent — gate
    # with a 5% noise allowance rather than flaking on scheduler jitter
    # (the recorded rows carry the honest measured pair either way).
    assert warm_best.wall_seconds <= 1.05 * cold_best.wall_seconds, (
        f"warm-cache sweep ({warm_best.wall_seconds:.2f}s) slower than "
        f"cold ({cold_best.wall_seconds:.2f}s) beyond noise"
    )


@pytest.mark.benchmark
def test_sweep_telemetry_overhead_within_noise(tmp_path):
    """ISSUE 7 acceptance: telemetry must observe the sweep, not slow it.

    Runs the Table-1 grid with the event bus off and on (interleaved,
    best-of), asserts the instrumented sweep is bit-identical to the plain
    one and within the 5% noise allowance, and records both rows so the
    trajectory carries the honest measured pair.
    """
    grid = table1_grid(scale="test", seeds=(0, 1), eval_runs=50)
    specs = list(grid.specs())

    off_best = on_best = None
    reference = None
    for round_index in range(_ROUNDS):
        off = _fresh_run(1, specs)
        sidecar = tmp_path / f"round{round_index}.telemetry"
        on = _fresh_run(1, specs, telemetry=sidecar)
        if reference is None:
            reference = _payloads(off.records)
        # The bus must never affect results: instrumented == plain, bit
        # for bit, and the sidecar must hold the per-campaign spans.
        assert _payloads(off.records) == reference
        assert _payloads(on.records) == reference
        spans = [e for e in read_telemetry(sidecar)
                 if e.name == "campaign.execute"]
        assert len(spans) == len(specs)
        if off_best is None or off.wall_seconds < off_best.wall_seconds:
            off_best = off
        if on_best is None or on.wall_seconds < on_best.wall_seconds:
            on_best = on

    _record(dict(_sweep_row(off_best, cache="cold"), telemetry="off"))
    _record(dict(_sweep_row(on_best, cache="cold"), telemetry="on"))

    # Emission is a flag check plus one JSON line per span/counter — at
    # test scale that is well under scheduler jitter, so gate with the
    # same 5% noise allowance the warm-cache row uses.
    assert on_best.wall_seconds <= 1.05 * off_best.wall_seconds, (
        f"telemetry-on sweep ({on_best.wall_seconds:.2f}s) slower than "
        f"telemetry-off ({off_best.wall_seconds:.2f}s) beyond noise"
    )


@pytest.mark.benchmark
def test_sweep_stacked_matches_process_and_throughput():
    """ISSUE 10 acceptance: the mega-batched executor must reproduce the
    process-mode sweep bit for bit and must not be slower on 1 core.

    Serial and stacked runs are interleaved (best-of, like the warm-cache
    row) so machine drift hits both equally; both rows land in BENCH.jsonl
    with their ``exec_mode`` so the trajectory can compare them directly.
    """
    grid = table1_grid(scale="test", seeds=(0, 1), eval_runs=50)
    specs = list(grid.specs())
    assert len(specs) == 8

    serial_best = stacked_best = None
    reference = None
    ratios = []
    for _ in range(_ROUNDS):
        serial = _fresh_run(1, specs)
        stacked = _fresh_run(1, specs, exec_mode="stacked")
        if reference is None:
            reference = _payloads(serial.records)
        # Fused rounds must change nothing: stacked == process, bit for bit.
        assert _payloads(serial.records) == reference
        assert _payloads(stacked.records) == reference
        ratios.append(stacked.wall_seconds / serial.wall_seconds)
        if serial_best is None or serial.wall_seconds < serial_best.wall_seconds:
            serial_best = serial
        if stacked_best is None or stacked.wall_seconds < stacked_best.wall_seconds:
            stacked_best = stacked
    assert stacked_best.executed == len(specs)

    _record(_sweep_row(serial_best, cache="cold"))
    _record(_sweep_row(stacked_best, cache="cold", exec_mode="stacked"))

    # Gate: stacked >= serial on 1 core.  Fusion amortises the per-kernel
    # overhead of concurrent rounds; at test scale that margin is a few
    # percent, which this machine's run-to-run drift (±5-6%) can swamp.
    # Comparing the two modes *within* each back-to-back round cancels that
    # drift, so gate on the best paired ratio with the same 5% noise
    # allowance the warm-cache and telemetry rows use (the recorded
    # best-of rows carry the honest absolute numbers).
    assert min(ratios) <= 1.05, (
        f"stacked sweep slower than process-mode serial beyond noise in "
        f"every round (stacked/serial wall ratios: "
        f"{', '.join(f'{r:.3f}' for r in ratios)})"
    )


@pytest.mark.benchmark
def test_sweep_scenario_pack_throughput_and_determinism():
    """ISSUE 4: the scenario axis must stay in the vectorised fast path.

    Runs the Table-1 grid under the ``bursty`` pack, asserts a re-run is
    bit-identical (scenario randomness is seed-deterministic), and records
    the throughput row with its pack name so the trajectory separates
    dynamic-conditions sweeps from steady ones.
    """
    from repro.campaigns import CampaignGrid

    base = table1_grid(scale="test", seeds=(0, 1), eval_runs=50)
    grid = CampaignGrid(**{**base.to_dict(), "scenarios": ("bursty",)})
    specs = list(grid.specs())
    assert len(specs) == 8
    assert all(s.scenario == "bursty" for s in specs)

    first = _fresh_run(1, specs)
    again = _fresh_run(1, specs)
    assert _payloads(first.records) == _payloads(again.records)

    steady = _fresh_run(1, list(base.specs()))
    assert _payloads(first.records) != _payloads(steady.records)

    best = first if first.wall_seconds <= again.wall_seconds else again
    _record(_sweep_row(best, cache="cold", scenario="bursty",
                       benchmark="sweep_table1_test_2seeds_bursty"))

    # The scenario overlay is a vectorised level transform: it must not
    # meaningfully slow the sweep relative to the steady grid.
    assert best.wall_seconds < 1.5 * steady.wall_seconds + 1.0, (
        f"bursty-scenario sweep ({best.wall_seconds:.2f}s) blew up vs "
        f"steady ({steady.wall_seconds:.2f}s)"
    )


@pytest.mark.benchmark
def test_sweep_format_grid_throughput_and_determinism():
    """ISSUE 5: the format axis must stay in the batched fast path.

    Runs the Table-1 grid under the ``knockout`` tournament shape, asserts
    a re-run is bit-identical (the scheduler/executor engine is
    seed-deterministic under every recipe), and records the throughput row
    with its format name so alternate-shape sweeps are never compared
    against default-shape rows.
    """
    from repro.campaigns import CampaignGrid

    base = table1_grid(scale="test", seeds=(0, 1), eval_runs=50)
    grid = CampaignGrid(**{**base.to_dict(), "formats": ("knockout",)})
    specs = list(grid.specs())
    assert len(specs) == 8
    assert all(s.format == "knockout" for s in specs)

    first = _fresh_run(1, specs)
    again = _fresh_run(1, specs)
    assert _payloads(first.records) == _payloads(again.records)

    default = _fresh_run(1, list(base.specs()))
    assert _payloads(first.records) != _payloads(default.records)

    best = first if first.wall_seconds <= again.wall_seconds else again
    _record(_sweep_row(best, cache="cold", fmt="knockout",
                       benchmark="sweep_table1_test_2seeds_knockout"))

    # An alternate shape only swaps which scheduler emits the (few) playoff
    # rounds — it must not meaningfully slow the sweep.
    assert best.wall_seconds < 1.5 * default.wall_seconds + 1.0, (
        f"knockout-format sweep ({best.wall_seconds:.2f}s) blew up vs "
        f"darwin ({default.wall_seconds:.2f}s)"
    )


@pytest.mark.benchmark
def test_resume_after_interruption_reuses_stored_campaigns(tmp_path):
    grid = table1_grid(scale="test", seeds=(0, 1), eval_runs=50)
    specs = list(grid.specs())

    from repro.campaigns import CampaignStore

    store = CampaignStore(tmp_path / "sweep.jsonl")
    store.write_grid(grid)
    CampaignRunner(jobs=1, store=store).run(specs[: len(specs) // 2])

    resumed = CampaignRunner(jobs=_JOBS, store=store).run(specs)
    assert resumed.skipped == len(specs) // 2
    assert resumed.executed == len(specs) - len(specs) // 2

    fresh = CampaignRunner(jobs=1).run(specs)
    assert summarise(resumed.records).to_json() \
        == summarise(fresh.records).to_json()
