"""Table 1: tunable parameters and search-space sizes."""

from repro.experiments import paper_vs_measured, render_table, run_table1


def test_table1_spaces(once):
    rows = once(run_table1)
    print()
    print(
        render_table(
            ["application", "app params", "system params", "space size", "paper"],
            [
                (
                    r.app_name,
                    len(r.app_parameters),
                    len(r.system_parameters),
                    r.space_size,
                    f"{r.paper_size:.1e}",
                )
                for r in rows
            ],
            title="Table 1 — search spaces",
        )
    )
    for r in rows:
        holds = 0.9 < r.size_ratio < 1.1
        print(
            paper_vs_measured(
                f"{r.app_name} space size",
                f"{r.paper_size:.2e}",
                f"{r.space_size:.2e}",
                holds,
            )
        )
        assert holds
