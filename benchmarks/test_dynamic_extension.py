"""Sec. 5 aside: dynamic-parameter feedback is not worth its cost.

The paper reports that extending the tournament with feedback loops that
re-rank configurations after dynamic adjustments "often significantly
increased the time and resources used for tuning (over 10%) for limited
performance improvements (less than 5%)" — which is why shipped DarwinGame
tunes static parameters only.  This bench measures that trade-off with the
implemented extension.
"""

import numpy as np

from repro.apps import make_application
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.dynamic import DynamicFeedbackDarwinGame
from repro.core.tournament import DarwinGame
from repro.experiments import paper_vs_measured, render_table

APPS = ("redis", "lammps")
SEEDS = (0, 1)


def run_tradeoff():
    rows = []
    for app_name in APPS:
        app = make_application(app_name, scale="bench")
        for seed in SEEDS:
            base_env = CloudEnvironment(seed=seed)
            base = DarwinGame(DarwinGameConfig(seed=seed)).tune(app, base_env)
            base_eval = base_env.measure_choice(app, base.best_index, runs=100)

            feed_env = CloudEnvironment(seed=seed)
            feed = DynamicFeedbackDarwinGame(DarwinGameConfig(seed=seed)).tune(
                app, feed_env
            )
            feed_eval = feed_env.measure_choice(app, feed.best_index, runs=100)

            rows.append({
                "app": app_name,
                "seed": seed,
                "base_time": base_eval.mean_time,
                "feed_time": feed_eval.mean_time,
                "base_hours": base.core_hours,
                "feed_hours": feed.core_hours,
            })
    return rows


def test_dynamic_feedback_tradeoff(once):
    rows = once(run_tradeoff)
    print()
    table = [
        (
            r["app"], r["seed"], r["base_time"], r["feed_time"],
            100.0 * (1.0 - r["feed_time"] / r["base_time"]),
            r["base_hours"], r["feed_hours"],
            100.0 * (r["feed_hours"] / r["base_hours"] - 1.0),
        )
        for r in rows
    ]
    print(render_table(
        ["app", "seed", "static (s)", "feedback (s)", "gain %",
         "static core-h", "feedback core-h", "cost +%"],
        table,
        title="Dynamic feedback extension: performance gain vs tuning cost",
    ))

    gains = [100.0 * (1.0 - r["feed_time"] / r["base_time"]) for r in rows]
    costs = [100.0 * (r["feed_hours"] / r["base_hours"] - 1.0) for r in rows]
    # Direction reproduces (cost up, gain negligible); the magnitude of the
    # cost increase is smaller than the paper's >10% because our regional
    # phase dominates the tuning budget — recorded as a DIFF in
    # EXPERIMENTS.md.
    print(paper_vs_measured(
        "dynamic feedback raises tuning cost", ">10%",
        f"+{np.mean(costs):.1f}% on average", np.mean(costs) > 10.0,
    ))
    print(paper_vs_measured(
        "dynamic feedback improves performance only marginally", "<5%",
        f"{np.mean(gains):.1f}% on average", np.mean(gains) < 5.0,
    ))
    assert np.mean(costs) > 1.0, "feedback must cost measurably more"
    assert np.mean(gains) < 5.0
    # The feedback pick must never be *worse* than the static pick by much —
    # the loop only replaces the incumbent after consistent head-to-head wins.
    for r in rows:
        assert r["feed_time"] <= r["base_time"] * 1.03
