"""Virtual-machine specifications and their interference profiles.

The paper evaluates on AWS ``m5`` instances of several sizes plus compute-,
memory- and storage-optimised classes (Sec. 4, Fig. 15).  Two facts about
those machines drive the reproduction:

* smaller VMs suffer **more** interference — more tenants share the host
  (Sec. 5, Fig. 15 discussion), and
* the *class* shifts the contention profile (storage-optimised instances see
  burstier I/O interference, compute-optimised slightly less).

A :class:`VMSpec` therefore derives an :class:`InterferenceProfile` from its
vCPU count and family; the concrete numbers are calibrated so that a
well-optimised (noise-sensitive) configuration on ``m5.8xlarge`` exhibits the
6–12% run-to-run CoV of Fig. 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import CloudError


@dataclass(frozen=True)
class InterferenceProfile:
    """Parameters of a VM's background-interference process.

    The interference *level* is a non-negative multiplier source: a run with
    sensitivity ``s`` under level ``I`` slows down by a factor ``1 + s * I``.

    Attributes:
        mean_level: long-run mean interference level.
        fast_std: instantaneous standard deviation of the fast (seconds-scale)
            fluctuation component.
        fast_tau: correlation time of the fast component, seconds.
        diurnal_amplitude: amplitude of the daily load cycle.
        drift_std: hourly standard deviation of the slow random-walk drift
            (tenant churn on the host).
        burst_rate: Poisson rate (per second) of noisy-neighbour bursts.
        burst_scale: mean magnitude of a burst's level contribution.
        burst_duration: typical burst length in seconds (dilutes a burst's
            effect on long runs).
    """

    mean_level: float
    fast_std: float
    fast_tau: float
    diurnal_amplitude: float
    drift_std: float
    burst_rate: float
    burst_scale: float
    burst_duration: float

    def __post_init__(self) -> None:
        if self.mean_level < 0:
            raise CloudError(f"mean_level must be >= 0, got {self.mean_level}")
        if self.fast_tau <= 0 or self.burst_duration <= 0:
            raise CloudError("time constants must be positive")


# Family-specific multipliers: (base mean level, burst-rate multiplier).
_FAMILY_TRAITS: Dict[str, tuple] = {
    "general": (0.22, 1.0),
    "compute": (0.16, 0.8),
    "memory": (0.20, 1.0),
    "storage": (0.26, 1.6),
}


def make_profile(vcpus: int, family: str) -> InterferenceProfile:
    """Derive an interference profile from VM size and family.

    Smaller VMs (fewer vCPUs) land on hosts with more co-tenants, so the mean
    level scales with ``1 + 2 / sqrt(vcpus)``.
    """
    if family not in _FAMILY_TRAITS:
        raise CloudError(
            f"unknown VM family {family!r}; expected one of {sorted(_FAMILY_TRAITS)}"
        )
    if vcpus <= 0:
        raise CloudError(f"vcpus must be positive, got {vcpus}")
    base, burst_mult = _FAMILY_TRAITS[family]
    mean = base * (1.0 + 2.0 / math.sqrt(vcpus))
    scale = mean / 0.30  # normalised to the m5.8xlarge operating point
    return InterferenceProfile(
        mean_level=mean,
        fast_std=0.24 * scale,
        fast_tau=60.0,
        diurnal_amplitude=0.75 * mean,
        drift_std=0.022 * scale,
        burst_rate=burst_mult / 1800.0,
        burst_scale=0.8,
        burst_duration=120.0,
    )


@dataclass(frozen=True)
class VMSpec:
    """A cloud VM type: name, vCPU count, family, interference profile."""

    name: str
    vcpus: int
    family: str = "general"

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise CloudError(f"vcpus must be positive, got {self.vcpus}")
        if self.family not in _FAMILY_TRAITS:
            raise CloudError(f"unknown VM family {self.family!r}")

    @property
    def interference(self) -> InterferenceProfile:
        return make_profile(self.vcpus, self.family)

    @staticmethod
    def preset(name: str) -> "VMSpec":
        """Look up one of the paper's evaluated instance types by name."""
        try:
            return PRESETS[name]
        except KeyError:
            raise CloudError(
                f"unknown VM preset {name!r}; available: {sorted(PRESETS)}"
            ) from None


PRESETS: Dict[str, VMSpec] = {
    spec.name: spec
    for spec in (
        VMSpec("m5.large", 2, "general"),
        VMSpec("m5.2xlarge", 8, "general"),
        VMSpec("m5.8xlarge", 32, "general"),
        VMSpec("m5.16xlarge", 64, "general"),
        VMSpec("m5.24xlarge", 96, "general"),
        VMSpec("c5.9xlarge", 36, "compute"),
        VMSpec("r5.8xlarge", 32, "memory"),
        VMSpec("i3.8xlarge", 32, "storage"),
    )
}

DEFAULT_VM = PRESETS["m5.8xlarge"]
