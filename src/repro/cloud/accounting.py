"""Core-hour accounting (the paper's tuning-cost metric, Fig. 12).

Every tuning activity books ``vcpus * seconds`` against a label; the ledger
turns those into core-hours.  Keeping this in one place means DarwinGame and
every baseline are billed identically.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import CloudError


@dataclass
class CoreHourLedger:
    """Accumulates core-seconds per activity label."""

    _core_seconds: Dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    _wall_seconds: float = 0.0

    def book(self, *, vcpus: int, seconds: float, label: str = "tuning") -> None:
        """Record ``vcpus`` busy for ``seconds`` under ``label``."""
        if vcpus <= 0:
            raise CloudError(f"vcpus must be positive, got {vcpus}")
        if seconds < 0:
            raise CloudError(f"cannot book negative time: {seconds}")
        self._core_seconds[label] += vcpus * seconds

    def advance_wall(self, seconds: float) -> None:
        """Record simulated wall-clock time of the campaign."""
        if seconds < 0:
            raise CloudError(f"cannot advance wall clock by {seconds}")
        self._wall_seconds += seconds

    @property
    def core_hours(self) -> float:
        """Total core-hours across all labels."""
        return sum(self._core_seconds.values()) / 3600.0

    @property
    def wall_hours(self) -> float:
        return self._wall_seconds / 3600.0

    def core_hours_by_label(self) -> Dict[str, float]:
        """Core-hours per label, for per-phase cost breakdowns."""
        return {k: v / 3600.0 for k, v in self._core_seconds.items()}

    def snapshot(self) -> float:
        """Current total, convenient for measuring a section's cost delta."""
        return self.core_hours

    def reset(self) -> None:
        self._core_seconds.clear()
        self._wall_seconds = 0.0
