"""Physics of one co-located game (Sec. 3.2).

When ``k`` copies of the application run together on one VM, every copy sees

* the same background interference trajectory ``I(t)`` (that is DarwinGame's
  key trick: competitors face identical noise),
* a shared co-location contention term growing with ``k`` (the paper notes
  that co-locating 1000 configurations at once fails precisely because this
  term swamps the signal), and
* a small per-player residual jitter (scheduling unfairness).

A player with true solo time ``T`` and sensitivity ``s`` progresses at rate
``1 / (T * (1 + s * (I + contention) + jitter))`` work-fractions per second.
The game ends when the fastest player finishes, or — if early termination is
enabled — when the fastest player is at least ``min_work`` done and leads the
runner-up by more than the work-done deviation ``d`` (Fig. 5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cloud.interference import InterferenceProcess
from repro.cloud.vm import VMSpec
from repro.errors import CloudError
from repro.types import GameOutcome

# Co-location pressure per competitor, relative to VM width.  At the paper's
# operating point (32 players on 32 vCPUs) this contributes ~0.78 to the
# interference level — co-location inside a VM "creates additional noise".
_CONTENTION_COEFF = 0.8
# Residual per-player, per-segment unfairness (std of a zero-mean factor).
_JITTER_STD = 0.015
# Persistent per-player, per-game unfairness: scheduling and cache-placement
# luck is sticky for the lifetime of a run, so one co-located copy can run a
# few percent slow for a whole game.  This is what makes a single game an
# imperfect judge and the tournament's repeated games necessary (Sec. 3.2).
_UNFAIRNESS_STD = 0.03
# Sensitivity-independent measurement noise floor (timer, startup, ...).
_MEASUREMENT_STD = 0.003


def contention_level(num_players: int, vcpus: int) -> float:
    """Shared contention term added to the interference level during a game."""
    if num_players < 1:
        raise CloudError(f"a game needs at least one player, got {num_players}")
    return _CONTENTION_COEFF * (num_players - 1) / vcpus


def simulate_colocated(
    *,
    true_times: np.ndarray,
    sensitivities: np.ndarray,
    vm: VMSpec,
    interference: InterferenceProcess,
    start_time: float,
    rng: np.random.Generator,
    work_deviation: Optional[float] = None,
    min_work_for_termination: float = 0.25,
    max_segments: int = 240,
) -> GameOutcome:
    """Simulate one co-located game and return its :class:`GameOutcome`.

    Args:
        true_times: per-player interference-free execution times (seconds).
        sensitivities: per-player noise sensitivities in ``[0, 1]``.
        vm: the VM the game runs on.
        interference: the host's interference process.
        start_time: simulated start time of the game.
        rng: generator for this game's stochastic draws.
        work_deviation: the early-termination deviation ``d`` (e.g. ``0.10``),
            or ``None`` to disable early termination.
        min_work_for_termination: fastest player must have completed at least
            this fraction before early termination may fire.
        max_segments: resolution cap of the piecewise-constant simulation.
    """
    t_true = np.asarray(true_times, dtype=float)
    sens = np.asarray(sensitivities, dtype=float)
    if t_true.ndim != 1 or t_true.shape != sens.shape:
        raise CloudError("true_times and sensitivities must be matching 1-D arrays")
    if t_true.size == 0:
        raise CloudError("a game needs at least one player")
    if np.any(t_true <= 0):
        raise CloudError("true execution times must be positive")
    if work_deviation is not None and not 0.0 < work_deviation < 1.0:
        raise CloudError(f"work deviation must be in (0, 1), got {work_deviation}")

    k = t_true.size
    shared = contention_level(k, vm.vcpus)
    # Sticky per-player luck for this game; partially sensitivity-scaled —
    # contention-heavy (sensitive) executions suffer more from bad placement.
    unfairness = rng.normal(0.0, _UNFAIRNESS_STD, size=k) * (0.25 + 0.75 * sens)

    # Upper-bound the game duration: slowest player under pessimistic noise.
    pessimistic = 1.0 + sens * (interference.profile.mean_level
                                + 3.0 * interference.profile.fast_std
                                + shared)
    horizon = float((t_true * pessimistic).max()) * 1.5
    n_segments = int(min(max_segments, max(48, horizon / 5.0)))

    elapsed = 0.0
    work = np.zeros(k)
    early = False
    finished_at = None
    mean_levels = []

    # The horizon is a heuristic; extend (rarely) until the fastest finishes.
    for _attempt in range(8):
        levels = interference.sample_trajectory(
            start_time + elapsed, horizon, n_segments, rng
        )
        mean_levels.append(float(levels.mean()))
        dt = horizon / n_segments
        # rates: (segments, players) — work fraction per second.
        jitter = rng.normal(0.0, _JITTER_STD, size=(n_segments, k)) * sens
        slowdown = 1.0 + sens * (levels[:, None] + shared) + jitter + unfairness[None, :]
        # Nothing in a shared VM runs faster than on dedicated hardware:
        # lucky jitter/unfairness can only claw back toward the noise-free
        # rate, never beyond it.
        rates = 1.0 / (t_true * np.maximum(slowdown, 1.0))
        cum = work + np.cumsum(rates * dt, axis=0)

        stop_segment = None
        if work_deviation is not None and k >= 2:
            top2 = np.sort(cum, axis=1)[:, -2:]
            best, second = top2[:, 1], top2[:, 0]
            gap = (best - second) / np.maximum(best, 1e-12)
            triggered = (best >= min_work_for_termination) & (gap > work_deviation)
            hits = np.nonzero(triggered)[0]
            if hits.size:
                stop_segment = int(hits[0])
                early = True

        done = np.nonzero(cum.max(axis=1) >= 1.0)[0]
        if done.size and (stop_segment is None or done[0] <= stop_segment):
            stop_segment = int(done[0])
            early = False
            finished_at = stop_segment

        if stop_segment is not None:
            # Interpolate the exact finish moment inside the stop segment so
            # elapsed time (and core-hours) do not quantise to segments.
            prev = cum[stop_segment - 1] if stop_segment > 0 else work
            seg_rates = rates[stop_segment]
            if finished_at is not None:
                leader = int(np.argmax(cum[stop_segment]))
                need = 1.0 - prev[leader]
                frac = float(np.clip(need / (seg_rates[leader] * dt), 0.0, 1.0))
            else:
                frac = 1.0
            elapsed += (stop_segment + frac) * dt
            work = prev + seg_rates * frac * dt
            break

        # Fastest player did not finish within the horizon: bank progress,
        # advance, and simulate another horizon.
        elapsed += horizon
        work = cum[-1]
    else:  # pragma: no cover - would need pathological surfaces
        raise CloudError("co-located game failed to converge within 8 horizons")

    work = np.minimum(work, 1.0)
    finished = work >= 1.0 - 1e-9
    return GameOutcome(
        elapsed=float(elapsed),
        work=tuple(float(w) for w in work),
        finished=tuple(bool(f) for f in finished),
        early_terminated=early,
        start_time=float(start_time),
        mean_interference=float(np.mean(mean_levels)),
    )


def solo_observed_time(
    *,
    true_time: float,
    sensitivity: float,
    level: float,
    measurement_noise: float,
) -> float:
    """Observed duration of a solo run under mean level ``level``.

    ``measurement_noise`` is a zero-mean multiplicative draw already scaled by
    :data:`_MEASUREMENT_STD`; it models the sensitivity-independent noise
    floor every real measurement carries.
    """
    if true_time <= 0:
        raise CloudError("true execution time must be positive")
    return float(true_time * (1.0 + sensitivity * level) * (1.0 + measurement_noise))


def measurement_noise_std() -> float:
    """Expose the measurement-noise floor for tests and calibration."""
    return _MEASUREMENT_STD
