"""Physics of one co-located game (Sec. 3.2).

When ``k`` copies of the application run together on one VM, every copy sees

* the same background interference trajectory ``I(t)`` (that is DarwinGame's
  key trick: competitors face identical noise),
* a shared co-location contention term growing with ``k`` (the paper notes
  that co-locating 1000 configurations at once fails precisely because this
  term swamps the signal), and
* a small per-player residual jitter (scheduling unfairness).

A player with true solo time ``T`` and sensitivity ``s`` progresses at rate
``1 / (T * (1 + s * (I + contention) + jitter))`` work-fractions per second.
The game ends when the fastest player finishes, or — if early termination is
enabled — when the fastest player is at least ``min_work`` done and leads the
runner-up by more than the work-done deviation ``d`` (Fig. 5).

The kernel is *round-shaped*: :func:`simulate_colocated_rounds` fuses any
number of rounds — possibly from different campaigns, with different
interference processes, start times, and early-termination settings — into
stacked ``(games, segments, players)`` tensor passes.  Every game draws from
its own generator and every per-game parameter rides along as a tensor row,
so fusion never changes results; :func:`simulate_colocated_batch` is exactly
the one-round case.  The heavy arithmetic runs on :mod:`repro.xp`, the
pluggable array backend (numpy by default).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.xp as xp
from repro.cloud.interference import InterferenceProcess
from repro.cloud.vm import VMSpec
from repro.errors import CloudError
from repro.types import GameOutcome

# Co-location pressure per competitor, relative to VM width.  At the paper's
# operating point (32 players on 32 vCPUs) this contributes ~0.78 to the
# interference level — co-location inside a VM "creates additional noise".
_CONTENTION_COEFF = 0.8
# Residual per-player, per-segment unfairness (std of a zero-mean factor).
_JITTER_STD = 0.015
# Persistent per-player, per-game unfairness: scheduling and cache-placement
# luck is sticky for the lifetime of a run, so one co-located copy can run a
# few percent slow for a whole game.  This is what makes a single game an
# imperfect judge and the tournament's repeated games necessary (Sec. 3.2).
_UNFAIRNESS_STD = 0.03
# Sensitivity-independent measurement noise floor (timer, startup, ...).
_MEASUREMENT_STD = 0.003


def contention_level(num_players: int, vcpus: int) -> float:
    """Shared contention term added to the interference level during a game."""
    if num_players < 1:
        raise CloudError(f"a game needs at least one player, got {num_players}")
    return _CONTENTION_COEFF * (num_players - 1) / vcpus


def simulate_colocated(
    *,
    true_times: np.ndarray,
    sensitivities: np.ndarray,
    vm: VMSpec,
    interference: InterferenceProcess,
    start_time: float,
    rng: np.random.Generator,
    work_deviation: Optional[float] = None,
    min_work_for_termination: float = 0.25,
    max_segments: int = 240,
) -> GameOutcome:
    """Simulate one co-located game and return its :class:`GameOutcome`.

    Args:
        true_times: per-player interference-free execution times (seconds).
        sensitivities: per-player noise sensitivities in ``[0, 1]``.
        vm: the VM the game runs on.
        interference: the host's interference process.
        start_time: simulated start time of the game.
        rng: generator for this game's stochastic draws.
        work_deviation: the early-termination deviation ``d`` (e.g. ``0.10``),
            or ``None`` to disable early termination.
        min_work_for_termination: fastest player must have completed at least
            this fraction before early termination may fire.
        max_segments: resolution cap of the piecewise-constant simulation.
    """
    return simulate_colocated_batch(
        games=[(true_times, sensitivities)],
        vm=vm,
        interference=interference,
        start_time=start_time,
        rngs=[rng],
        work_deviation=work_deviation,
        min_work_for_termination=min_work_for_termination,
        max_segments=max_segments,
    )[0]


# Element budget (games * segments * players) of one stacked simulation pass.
# Rounds larger than this are transparently split so peak memory stays at a
# few hundred MB even for thousand-game rounds; the split never changes
# results because every game draws from its own generator.
_BATCH_ELEMENT_BUDGET = 4_000_000


@dataclass(frozen=True)
class RoundRequest:
    """One validated round of co-located games, ready to simulate.

    Built by :func:`prepare_round` (which owns all input validation) and
    consumed by :func:`simulate_colocated_rounds`.  ``work_deviation`` is
    ``None`` when early termination is disabled for the round.  A request is
    self-contained — it carries its own interference process, start time, and
    termination settings — which is what lets rounds from *different
    campaigns* fuse into one tensor pass.
    """

    games: Tuple[Tuple[np.ndarray, np.ndarray], ...]
    vm: VMSpec
    interference: InterferenceProcess
    start_time: float
    rngs: Tuple[np.random.Generator, ...]
    work_deviation: Optional[float]
    min_work_for_termination: float
    max_segments: int


def prepare_round(
    *,
    games: Sequence[Tuple[np.ndarray, np.ndarray]],
    vm: VMSpec,
    interference: InterferenceProcess,
    start_time: float,
    rngs: Sequence[np.random.Generator],
    work_deviation: Optional[float] = None,
    min_work_for_termination: float = 0.25,
    max_segments: int = 240,
) -> RoundRequest:
    """Validate one round's inputs into a :class:`RoundRequest`."""
    if len(rngs) != len(games):
        raise CloudError(
            f"need one rng per game, got {len(rngs)} for {len(games)} games"
        )
    if work_deviation is not None and not 0.0 < work_deviation < 1.0:
        raise CloudError(f"work deviation must be in (0, 1), got {work_deviation}")

    prepared: List[Tuple[np.ndarray, np.ndarray]] = []
    for true_times, sensitivities in games:
        t_true = np.asarray(true_times, dtype=float)
        sens = np.asarray(sensitivities, dtype=float)
        if t_true.ndim != 1 or t_true.shape != sens.shape:
            raise CloudError(
                "true_times and sensitivities must be matching 1-D arrays"
            )
        if t_true.size == 0:
            raise CloudError("a game needs at least one player")
        if np.any(t_true <= 0):
            raise CloudError("true execution times must be positive")
        prepared.append((t_true, sens))

    return RoundRequest(
        games=tuple(prepared),
        vm=vm,
        interference=interference,
        start_time=float(start_time),
        rngs=tuple(rngs),
        work_deviation=work_deviation,
        min_work_for_termination=min_work_for_termination,
        max_segments=max_segments,
    )


class _GameState:
    """Mutable per-game simulation state threaded through horizon attempts.

    Carries its own interference process, start time, and early-termination
    thresholds (``dev`` is ``inf`` when early termination is disabled), so a
    chunk may freely mix games from rounds with different settings.
    """

    __slots__ = (
        "t_true", "sens", "k", "shared", "unfairness", "horizon", "dt",
        "n_segments", "elapsed", "work", "early", "mean_levels", "rng",
        "interference", "start", "dev", "min_work",
    )

    def __init__(
        self,
        t_true: np.ndarray,
        sens: np.ndarray,
        request: RoundRequest,
        rng: np.random.Generator,
    ) -> None:
        self.t_true = t_true
        self.sens = sens
        self.k = t_true.size
        self.shared = contention_level(self.k, request.vm.vcpus)
        interference = request.interference
        # Sticky per-player luck for this game; partially sensitivity-scaled —
        # contention-heavy (sensitive) executions suffer more from bad
        # placement.
        self.unfairness = rng.normal(0.0, _UNFAIRNESS_STD, size=self.k) * (
            0.25 + 0.75 * sens
        )
        # Upper-bound the game duration: slowest player under pessimistic noise.
        pessimistic = 1.0 + sens * (interference.profile.mean_level
                                    + 3.0 * interference.profile.fast_std
                                    + self.shared)
        self.horizon = float((t_true * pessimistic).max()) * 1.5
        self.n_segments = int(
            min(request.max_segments, max(48, self.horizon / 5.0))
        )
        self.dt = self.horizon / self.n_segments
        self.elapsed = 0.0
        self.work = np.zeros(self.k)
        self.early = False
        self.mean_levels: List[float] = []
        self.rng = rng
        self.interference = interference
        self.start = request.start_time
        self.dev = (
            float(request.work_deviation)
            if request.work_deviation is not None
            else float("inf")
        )
        self.min_work = float(request.min_work_for_termination)

    def outcome(self) -> GameOutcome:
        work = np.minimum(self.work, 1.0)
        finished = work >= 1.0 - 1e-9
        levels = self.mean_levels
        return GameOutcome(
            elapsed=float(self.elapsed),
            work=tuple(work.tolist()),
            finished=tuple(finished.tolist()),
            early_terminated=self.early,
            start_time=float(self.start),
            mean_interference=float(sum(levels) / len(levels)),
        )


# Per-thread stack channel.  When the stacked executor runs a campaign on a
# worker thread it installs a channel here; `simulate_colocated_batch` then
# *parks* the validated round on the channel instead of simulating, and the
# coordinator fuses every parked round into one `simulate_colocated_rounds`
# pass.  Threads without a channel (the default) simulate inline.
_STACK_CHANNELS = threading.local()


def install_stack_channel(channel) -> None:
    """Install (or, with ``None``, remove) this thread's stack channel.

    ``channel`` must expose ``simulate(request) -> List[GameOutcome]``; see
    :class:`repro.core.stacked.StackedExecutor` for the only producer.
    """
    _STACK_CHANNELS.channel = channel


def _stack_channel():
    return getattr(_STACK_CHANNELS, "channel", None)


def simulate_colocated_batch(
    *,
    games: Sequence[Tuple[np.ndarray, np.ndarray]],
    vm: VMSpec,
    interference: InterferenceProcess,
    start_time: float,
    rngs: Sequence[np.random.Generator],
    work_deviation: Optional[float] = None,
    min_work_for_termination: float = 0.25,
    max_segments: int = 240,
) -> List[GameOutcome]:
    """Simulate one *round* of co-located games as stacked tensors.

    ``games`` is a list of ``(true_times, sensitivities)`` player arrays —
    one entry per game of the round; ``rngs`` supplies one generator per
    game, so every game owns an independent random stream and the result is
    identical whether the round is simulated in one pass, split into chunks,
    or replayed one game at a time (``simulate_colocated`` is exactly the
    single-game batch).

    All games start at ``start_time`` (games of a round run on parallel
    VMs).  The heavy arithmetic — slowdown fields, work cumsums, and the
    early-termination scan — runs once per horizon attempt on a padded
    ``(games, segments, players)`` tensor instead of once per game.

    Under the stacked executor the validated round is handed to the calling
    thread's stack channel, which fuses it with the concurrent rounds of
    other campaigns; the fused pass produces bit-identical outcomes.
    """
    request = prepare_round(
        games=games,
        vm=vm,
        interference=interference,
        start_time=start_time,
        rngs=rngs,
        work_deviation=work_deviation,
        min_work_for_termination=min_work_for_termination,
        max_segments=max_segments,
    )
    channel = _stack_channel()
    if channel is not None:
        return channel.simulate(request)
    return simulate_colocated_rounds([request])[0]


def simulate_colocated_rounds(
    requests: Sequence[RoundRequest],
) -> List[List[GameOutcome]]:
    """Simulate many rounds — one per request — in fused tensor passes.

    The rounds may come from different campaigns: each request carries its
    own interference process, start time, and termination thresholds, and
    every per-game parameter becomes a tensor row.  Outcomes are returned
    grouped per request, aligned with the input order, and are bit-identical
    to simulating each request alone (on the numpy backend) because every
    game draws only from its own generator and trajectory sampling is
    grouped per interference process in stable request order.
    """
    states: List[_GameState] = []
    counts: List[int] = []
    for request in requests:
        for (t_true, sens), rng in zip(request.games, request.rngs):
            states.append(_GameState(t_true, sens, request, rng))
        counts.append(len(request.games))

    # The horizon is a heuristic; extend (rarely) until the fastest finishes.
    active = list(range(len(states)))
    for _attempt in range(8):
        if not active:
            break
        still_active: List[int] = []
        for chunk in _budget_chunks(active, states):
            still_active.extend(_simulate_attempt(chunk, states))
        active = still_active
    if active:  # pragma: no cover - would need pathological surfaces
        raise CloudError("co-located game failed to converge within 8 horizons")

    rounds: List[List[GameOutcome]] = []
    offset = 0
    for count in counts:
        rounds.append([state.outcome() for state in states[offset:offset + count]])
        offset += count
    return rounds


def _budget_chunks(
    active: List[int], states: List[_GameState]
) -> List[List[int]]:
    """Split a round into chunks whose padded tensor fits the element budget.

    Games are grouped by similar segment count and player count, so the
    padded ``(games, segments, players)`` tensor of each chunk carries
    little dead weight.  Chunk composition never changes results — every
    game draws from its own generator.
    """
    ordered = sorted(active, key=lambda g: (states[g].n_segments, states[g].k))
    chunks: List[List[int]] = []
    current: List[int] = []
    max_s = max_p = 0
    for g in ordered:
        s = max(max_s, states[g].n_segments)
        p = max(max_p, states[g].k)
        if current and (len(current) + 1) * s * p > _BATCH_ELEMENT_BUDGET:
            chunks.append(current)
            current, s, p = [], states[g].n_segments, states[g].k
        current.append(g)
        max_s, max_p = s, p
    if current:
        chunks.append(current)
    return chunks


def _sample_chunk_trajectories(
    chunk: List[int], states: List[_GameState]
) -> List[np.ndarray]:
    """Per-game trajectory draws for a chunk, grouped per interference process.

    Games sharing a process (i.e. of the same campaign) are batched through
    its ``sample_trajectories`` vectorised sampler when available; replayed
    traces fall back to the per-game call.  Grouping preserves in-chunk order
    within each group, and the walk-table extension behind ``epoch_mean`` is
    query-order independent, so a fused multi-campaign chunk draws exactly
    the numbers each campaign would draw alone.
    """
    groups: Dict[int, Tuple[InterferenceProcess, List[int]]] = {}
    for a, g in enumerate(chunk):
        proc = states[g].interference
        groups.setdefault(id(proc), (proc, []))[1].append(a)

    trajectories: List[Optional[np.ndarray]] = [None] * len(chunk)
    for proc, positions in groups.values():
        batch_sampler = getattr(proc, "sample_trajectories", None)
        if batch_sampler is not None:
            sampled = batch_sampler(
                [states[chunk[a]].start + states[chunk[a]].elapsed
                 for a in positions],
                [states[chunk[a]].horizon for a in positions],
                [states[chunk[a]].n_segments for a in positions],
                [states[chunk[a]].rng for a in positions],
            )
        else:
            sampled = [
                proc.sample_trajectory(
                    states[chunk[a]].start + states[chunk[a]].elapsed,
                    states[chunk[a]].horizon,
                    states[chunk[a]].n_segments,
                    states[chunk[a]].rng,
                )
                for a in positions
            ]
        for a, traj in zip(positions, sampled):
            trajectories[a] = traj
    return trajectories


# Segment block length of the stacked scan.  Games leave the computation as
# soon as they stop (finish or early-terminate), so most of a round is only
# simulated over the first block or two instead of every game paying for the
# full pessimistic horizon.
_SEGMENT_BLOCK = 32


def _simulate_attempt(chunk: List[int], states: List[_GameState]) -> List[int]:
    """Advance every game of ``chunk`` by one horizon; return the unfinished."""
    n_games = len(chunk)
    seg_max = max(states[g].n_segments for g in chunk)
    p_max = max(states[g].k for g in chunk)
    # Chunks are grouped by shape, so padding is usually absent — in that
    # case the masking passes over the tensors are skipped entirely.
    padded = any(
        states[g].n_segments != seg_max or states[g].k != p_max for g in chunk
    )

    levels = xp.zeros((n_games, seg_max))
    t_true = xp.ones((n_games, p_max))
    sens = xp.zeros((n_games, p_max))
    unfairness = xp.zeros((n_games, p_max))
    carry = xp.zeros((n_games, p_max))  # work done up to the current block
    shared = xp.empty(n_games)
    dt = xp.empty(n_games)
    k_arr = xp.empty(n_games, dtype=np.int64)
    # Per-row early-termination thresholds: ``inf`` disables the trigger for
    # a row (``gap > inf`` is never true), so a chunk can mix rounds with and
    # without early termination without changing either's results.
    devs = xp.empty(n_games)
    min_works = xp.empty(n_games)
    if padded:
        mask_p = xp.zeros((n_games, p_max), dtype=bool)
        mask_s = xp.zeros((n_games, seg_max), dtype=bool)

    # Per-game trajectory draws (batched per interference process); everything
    # after is a stacked computation over the whole chunk.
    trajectories = _sample_chunk_trajectories(chunk, states)
    for a, g in enumerate(chunk):
        st = states[g]
        traj = trajectories[a]
        st.mean_levels.append(float(traj.mean()))
        levels[a, : st.n_segments] = traj
        t_true[a, : st.k] = st.t_true
        sens[a, : st.k] = st.sens
        unfairness[a, : st.k] = st.unfairness
        carry[a, : st.k] = st.work
        shared[a] = st.shared
        dt[a] = st.dt
        k_arr[a] = st.k
        devs[a] = st.dev
        min_works[a] = st.min_work
        if padded:
            mask_p[a, : st.k] = True
            mask_s[a, : st.n_segments] = True

    levels += shared[:, None]  # level + co-location contention, per segment
    early_any = bool((devs < np.inf).any()) and p_max >= 2

    # Scan the horizon in segment blocks.  A game whose stop segment falls
    # inside a block is finalised and leaves the scan, so later blocks only
    # simulate — and only draw jitter for — the games still running.  The
    # per-game generator emits jitter values in segment order either way, so
    # lazy drawing yields the same numbers as drawing the whole horizon
    # upfront; the undrawn tail of a stopped game's dedicated stream is
    # simply never consumed.
    rows = xp.arange(n_games)
    unfinished: List[int] = []
    for b0 in range(0, seg_max, _SEGMENT_BLOCK):
        b1 = min(b0 + _SEGMENT_BLOCK, seg_max)
        # Per-player scheduling jitter of the block, drawn per running game.
        w = xp.zeros((rows.size, b1 - b0, p_max))
        for r, a in enumerate(rows):
            st = states[chunk[int(a)]]
            hi = min(b1, st.n_segments)
            if hi > b0:
                w[r, : hi - b0, : st.k] = (
                    st.rng.normal(0.0, _JITTER_STD, size=(hi - b0, st.k))
                    * st.sens
                )
        # Slowdown field of the block, built in place on the jitter buffer:
        # 1 + sens * (level + contention) + jitter + unfairness.
        w += unfairness[rows][:, None, :]
        w += 1.0
        w += sens[rows][:, None, :] * levels[rows, b0:b1][:, :, None]
        # Nothing in a shared VM runs faster than on dedicated hardware:
        # lucky jitter/unfairness can only claw back toward the noise-free
        # rate, never beyond it.
        xp.maximum(w, 1.0, out=w)
        w *= t_true[rows][:, None, :]
        xp.reciprocal(w, out=w)       # rates: work fraction per second
        w *= dt[rows][:, None, None]  # work fraction per segment
        if padded:
            w *= mask_p[rows][:, None, :]
            w *= mask_s[rows, b0:b1][:, :, None]
        cum = xp.cumsum(w, axis=1)
        cum += carry[rows][:, None, :]

        k_rows = k_arr[rows]
        trig_any = xp.zeros(rows.size, dtype=bool)
        trig_first = xp.zeros(rows.size, dtype=np.int64)
        if early_any:
            # The top-2 partition's ``best`` selects the same element as a
            # plain ``max(axis=2)``, so rows whose threshold is ``inf`` (no
            # early termination) still finish on exactly the same segment as
            # they would on the max-only path below.
            view = xp.where(mask_p[rows][:, None, :], cum, -np.inf) if padded else cum
            top2 = xp.partition(view, p_max - 2, axis=2)[:, :, p_max - 2:]
            best, second = top2[:, :, 1], top2[:, :, 0]
            gap = (best - second) / xp.maximum(best, 1e-12)
            triggered = (best >= min_works[rows][:, None]) & (
                gap > devs[rows][:, None]
            )
            if padded:
                triggered &= mask_s[rows, b0:b1]
            if xp.any(k_rows < 2):
                triggered &= (k_rows >= 2)[:, None]
            trig_any = triggered.any(axis=1)
            trig_first = triggered.argmax(axis=1)
        else:
            best = (
                xp.where(mask_p[rows][:, None, :], cum, -np.inf) if padded else cum
            ).max(axis=2)

        # A frozen padded tail can never newly cross 1.0, so the first
        # >= 1.0 segment is always a real one; no segment mask needed.
        done = best >= 1.0
        done_any = done.any(axis=1)
        done_first = done.argmax(axis=1)

        for r in xp.nonzero(trig_any | done_any)[0]:
            st = states[chunk[int(rows[r])]]
            stop_local: Optional[int] = None
            early = finished = False
            if trig_any[r]:
                stop_local = int(trig_first[r])
                early = True
            if done_any[r] and (stop_local is None or done_first[r] <= stop_local):
                stop_local = int(done_first[r])
                early = False
                finished = True
            # Interpolate the exact finish moment inside the stop segment so
            # elapsed time (and core-hours) do not quantise to segments.
            prev = cum[r, stop_local - 1, : st.k] if stop_local > 0 else st.work
            step = w[r, stop_local, : st.k]  # work done in the stop segment
            if finished:
                leader = int(xp.argmax(cum[r, stop_local, : st.k]))
                need = 1.0 - prev[leader]
                frac = float(np.clip(need / step[leader], 0.0, 1.0))
            else:
                frac = 1.0
            st.elapsed += (b0 + stop_local + frac) * st.dt
            st.work = prev + step * frac
            st.early = early

        still = ~(trig_any | done_any)
        if not still.any():
            rows = rows[:0]
            break
        # Bank block progress for the games still running.  (``st.work`` is
        # only read at block starts, so carry is the single source of truth
        # between blocks.)
        carry[rows[still]] = cum[still, -1, :]
        for r in xp.nonzero(still)[0]:
            a = int(rows[r])
            states[chunk[a]].work = carry[a, : k_arr[a]]
        rows = rows[still]

    # Fastest player did not finish within the horizon for whoever is left:
    # bank progress; the next attempt simulates another horizon.
    for a in rows:
        st = states[chunk[int(a)]]
        st.elapsed += st.horizon
        st.work = carry[int(a), : st.k].copy()
        unfinished.append(chunk[int(a)])
    return unfinished


def solo_observed_time(
    *,
    true_time: float,
    sensitivity: float,
    level: float,
    measurement_noise: float,
) -> float:
    """Observed duration of a solo run under mean level ``level``.

    ``measurement_noise`` is a zero-mean multiplicative draw already scaled by
    :data:`_MEASUREMENT_STD`; it models the sensitivity-independent noise
    floor every real measurement carries.
    """
    if true_time <= 0:
        raise CloudError("true execution time must be positive")
    return float(true_time * (1.0 + sensitivity * level) * (1.0 + measurement_noise))


def measurement_noise_std() -> float:
    """Expose the measurement-noise floor for tests and calibration."""
    return _MEASUREMENT_STD
