"""The shared-cloud execution environment every tuner runs against.

:class:`CloudEnvironment` owns the simulated clock, one VM type with its
interference realisation, and the core-hour ledger.  All tuners — DarwinGame
and the baselines alike — can only interact with applications through this
facade, which enforces the paper's central constraint: *nobody can observe or
control the background interference; all you get are noisy execution times.*

The physics (how interference maps to observed durations) lives in
:mod:`repro.cloud.colocation`; this module sequences runs in simulated time
and does the bookkeeping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import coefficient_of_variation
from repro.cloud.accounting import CoreHourLedger
from repro.cloud.colocation import (
    measurement_noise_std,
    simulate_colocated_batch,
    solo_observed_time,
)
from repro.cloud.interference import InterferenceProcess
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.errors import CloudError
from repro.rng import SeedLike, ensure_rng, spawn
from repro.types import ChoiceEvaluation, GameOutcome, SoloOutcome

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.apps.model import ApplicationModel
    from repro.scenarios import ScenarioLike


class CloudEnvironment:
    """One rented slice of a shared cloud: a VM type, a clock, a ledger.

    Args:
        vm: the instance type every run executes on.
        seed: master seed; the interference realisation, run noise and
            evaluation noise derive independent child generators from it.
        start_time: initial simulated time in seconds (campaigns launched at
            different times — the paper's T1/T2/T3 — see different phases of
            the same interference realisation).
        scenario: optional dynamic cloud conditions — a registered pack
            name (``repro.scenarios.SCENARIO_NAMES``) or a
            :class:`~repro.scenarios.Scenario`.  The scenario's entropy is
            a *fourth* child of the master seed, spawned only when the
            scenario has modifiers, so the three stationary streams are
            untouched and ``scenario="steady"`` (or ``None``) reproduces
            pre-scenario results bit for bit.
    """

    def __init__(
        self,
        vm: VMSpec = DEFAULT_VM,
        seed: SeedLike = 0,
        start_time: float = 0.0,
        scenario: "ScenarioLike" = None,
    ) -> None:
        from repro.scenarios import resolve_scenario

        if start_time < 0:
            raise CloudError(f"start_time must be >= 0, got {start_time}")
        self.vm = vm
        rng = ensure_rng(seed)
        interference_rng, self._run_rng, self._eval_rng = spawn(rng, 3)
        self.scenario = resolve_scenario(scenario)
        dynamics = None
        if self.scenario is not None and not self.scenario.is_steady:
            dynamics = self.scenario.realise(
                int(spawn(rng, 1)[0].integers(0, 2**63))
            )
        self.interference = InterferenceProcess(
            vm.interference, interference_rng, dynamics=dynamics
        )
        self.ledger = CoreHourLedger()
        self._now = float(start_time)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Advance the simulated clock (e.g. by a round's longest game)."""
        if seconds < 0:
            raise CloudError(f"cannot advance clock by {seconds}")
        self._now += seconds
        self.ledger.advance_wall(seconds)

    def advance_to(self, time: float) -> None:
        """Jump forward to an absolute simulated time (never backwards)."""
        if time < self._now:
            raise CloudError(
                f"cannot move clock backwards from {self._now} to {time}"
            )
        self.advance(time - self._now)

    # -- solo runs (how interference-unaware tuners sample) ---------------

    def run_solo(
        self,
        app: "ApplicationModel",
        index: int,
        *,
        label: str = "solo",
        advance_clock: bool = True,
    ) -> SoloOutcome:
        """Execute one configuration alone on the VM; returns the noisy time."""
        t_true = float(app.true_time(np.array([index]))[0])
        sens = float(app.sensitivity(np.array([index]))[0])
        level = float(
            self.interference.sample_run_means(self._now, t_true, self._run_rng)[0]
        )
        noise = self._run_rng.normal(0.0, measurement_noise_std())
        observed = solo_observed_time(
            true_time=t_true, sensitivity=sens, level=level, measurement_noise=noise
        )
        self.ledger.book(vcpus=self.vm.vcpus, seconds=observed, label=label)
        if advance_clock:
            self.advance(observed)
        return SoloOutcome(
            observed_time=observed, start_time=self._now, mean_interference=level
        )

    def run_solo_batch(
        self,
        app: "ApplicationModel",
        indices: Sequence[int],
        *,
        label: str = "solo-batch",
        advance_clock: bool = True,
    ) -> np.ndarray:
        """Execute configurations back-to-back (the exhaustive-search loop).

        Vectorised: run ``k`` starts after runs ``0..k-1`` finished, with each
        run's mean interference drawn from the process at its own start time.
        Returns the observed times in order.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return np.empty(0)
        t_true = app.true_time(idx)
        sens = app.sensitivity(idx)
        # Start offsets estimated from true times; the estimate only positions
        # runs on the slow-drift curve, so the approximation is benign.
        approx = t_true * (1.0 + sens * self.interference.profile.mean_level)
        starts = self._now + np.concatenate([[0.0], np.cumsum(approx[:-1])])
        levels = self.interference.sample_run_means(starts, t_true, self._run_rng)
        noise = self._run_rng.normal(0.0, measurement_noise_std(), size=idx.shape)
        observed = t_true * (1.0 + sens * levels) * (1.0 + noise)
        total = float(observed.sum())
        self.ledger.book(vcpus=self.vm.vcpus, seconds=total, label=label)
        if advance_clock:
            self.advance(total)
        return observed

    # -- co-located games (DarwinGame's sampling primitive) ----------------

    def run_colocated(
        self,
        app: "ApplicationModel",
        indices: Sequence[int],
        *,
        work_deviation: Optional[float] = None,
        min_work_for_termination: float = 0.25,
        label: str = "game",
        advance_clock: bool = True,
    ) -> GameOutcome:
        """Run one game: all configurations co-located on this VM.

        Books the whole VM for the game's duration.  With ``advance_clock``
        False the caller is responsible for advancing time once per *round*
        of parallel games (games within a round run on parallel VMs).

        Exactly equivalent to a single-game :meth:`run_colocated_batch` —
        the game draws from the same spawned child generator either way.
        """
        return self.run_colocated_batch(
            app,
            [indices],
            work_deviation=work_deviation,
            min_work_for_termination=min_work_for_termination,
            label=label,
            advance_clock=advance_clock,
        )[0]

    def run_colocated_batch(
        self,
        app: "ApplicationModel",
        games: Sequence[Sequence[int]],
        *,
        work_deviation: Optional[float] = None,
        min_work_for_termination: float = 0.25,
        label: str = "game",
        advance_clock: bool = False,
    ) -> List[GameOutcome]:
        """Run one *round* of co-located games, one parallel VM per game.

        All games start at the current simulated time and are simulated as
        one stacked tensor computation (see
        :func:`repro.cloud.colocation.simulate_colocated_batch`).  Each game
        draws from its own child generator spawned off the run stream and
        keyed by its position in ``games``, so a round is seed-deterministic
        and splitting it into smaller batches does not change outcomes.

        Every game books the whole VM for its own duration.  With
        ``advance_clock`` True the clock advances by the *longest* game of
        the round — the paper's semantics of a round on parallel VMs.
        """
        lineups = [np.asarray(g, dtype=np.int64) for g in games]
        if not lineups:
            return []
        for idx in lineups:
            if idx.size > self.vm.vcpus:
                raise CloudError(
                    f"cannot co-locate {idx.size} players on {self.vm.name} "
                    f"({self.vm.vcpus} vCPUs)"
                )
        # One vectorised surface evaluation for the whole round.
        flat = np.concatenate(lineups)
        t_true = app.true_time(flat)
        sens = app.sensitivity(flat)
        bounds = np.cumsum([idx.size for idx in lineups])[:-1]
        games_in = list(zip(np.split(t_true, bounds), np.split(sens, bounds)))

        outcomes = simulate_colocated_batch(
            games=games_in,
            vm=self.vm,
            interference=self.interference,
            start_time=self._now,
            rngs=spawn(self._run_rng, len(lineups)),
            work_deviation=work_deviation,
            min_work_for_termination=min_work_for_termination,
        )
        for outcome in outcomes:
            self.ledger.book(
                vcpus=self.vm.vcpus, seconds=outcome.elapsed, label=label
            )
        if advance_clock:
            self.advance(max(outcome.elapsed for outcome in outcomes))
        return outcomes

    # -- post-hoc evaluation (the paper's quality metrics) -----------------

    def measure_choice(
        self,
        app: "ApplicationModel",
        index: int,
        *,
        runs: int = 100,
        spacing: float = 21600.0,
    ) -> ChoiceEvaluation:
        """Evaluate a chosen configuration the way the paper does (Sec. 4).

        The configuration is executed ``runs`` times at different periods of
        time in the cloud; we report the mean execution time and the
        coefficient of variation.  Evaluation runs are *not* billed to the
        tuning ledger and do not advance the campaign clock.
        """
        if runs < 2:
            raise CloudError(f"need at least 2 evaluation runs, got {runs}")
        t_true = float(app.true_time(np.array([index]))[0])
        sens = float(app.sensitivity(np.array([index]))[0])
        starts = self._now + np.arange(runs) * float(spacing)
        levels = self.interference.sample_run_means(starts, t_true, self._eval_rng)
        noise = self._eval_rng.normal(0.0, measurement_noise_std(), size=runs)
        times = t_true * (1.0 + sens * levels) * (1.0 + noise)
        return ChoiceEvaluation(
            index=int(index),
            mean_time=float(times.mean()),
            cov_percent=coefficient_of_variation(times),
            min_time=float(times.min()),
            max_time=float(times.max()),
            true_time=t_true,
            sensitivity=sens,
            runs=runs,
        )
