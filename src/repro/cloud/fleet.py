"""Bounded-parallelism fleet scheduling for tournament campaigns.

The tournament's phases parallelise across VMs ("games in different regions
can be played in parallel in different VMs", Sec. 3.3), and the simulated
campaign clock assumes an unbounded fleet: a round takes as long as its
longest game.  Real users rent a *finite* number of VMs, so the wall-clock
time of a round is a makespan-scheduling problem: distribute the games
(known durations) over ``n`` identical machines.

This module provides the classic LPT (longest processing time first)
approximation and the resulting cost/wall-time trade-off curve, so a user
can answer "how many VMs should I rent to finish tuning overnight?".
Core-hours are fleet-size-invariant (the same games are played either way);
only the wall-clock changes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import CloudError


@dataclass(frozen=True)
class HostClass:
    """One contention class of a heterogeneous fleet.

    ``level_multiplier`` scales the stationary interference level relative
    to the reference host (the general-purpose ``m5`` operating point);
    ``weight`` is the class's share of the fleet.
    """

    name: str
    level_multiplier: float
    weight: float

    def __post_init__(self) -> None:
        if self.level_multiplier < 0:
            raise CloudError("level_multiplier must be >= 0")
        if self.weight <= 0:
            raise CloudError("host class weight must be positive")


def default_host_mix(vcpus: int = 32) -> Tuple[HostClass, ...]:
    """The heterogeneous fleet the ``mixed-fleet`` scenario schedules over.

    Host classes are derived from the calibrated family profiles in
    :mod:`repro.cloud.vm` at the given VM size, normalised to the
    general-purpose host, plus an over-subscribed tail class — the
    paper-world answer to "my fleet is not all ``m5``".
    """
    from repro.cloud.vm import make_profile

    reference = make_profile(vcpus, "general").mean_level
    classes = [
        HostClass(
            name=family,
            level_multiplier=make_profile(vcpus, family).mean_level / reference,
            weight=weight,
        )
        for family, weight in (
            ("compute", 0.25), ("general", 0.4), ("memory", 0.15),
            ("storage", 0.1),
        )
    ]
    classes.append(HostClass("oversubscribed", 1.8, 0.1))
    return tuple(classes)


@dataclass(frozen=True)
class FleetSchedule:
    """An assignment of game durations to a fleet of identical VMs."""

    n_vms: int
    makespan: float                     # wall-clock seconds to finish all games
    loads: Tuple[float, ...]            # total busy seconds per VM
    assignments: Tuple[Tuple[int, ...], ...]  # game ids per VM

    @property
    def total_work(self) -> float:
        return float(sum(self.loads))

    @property
    def utilisation(self) -> float:
        """Fraction of rented VM-time spent actually playing games."""
        if self.makespan <= 0:
            return 1.0
        return self.total_work / (self.n_vms * self.makespan)


def schedule_lpt(durations: Sequence[float], n_vms: int) -> FleetSchedule:
    """Schedule games onto ``n_vms`` with the LPT heuristic.

    LPT sorts jobs by decreasing duration and always assigns the next job to
    the least-loaded machine; it is within 4/3 of the optimal makespan.
    """
    if n_vms < 1:
        raise CloudError(f"fleet needs at least one VM, got {n_vms}")
    jobs = [float(d) for d in durations]
    if any(d < 0 for d in jobs):
        raise CloudError("game durations must be non-negative")
    if not jobs:
        return FleetSchedule(
            n_vms=n_vms, makespan=0.0,
            loads=tuple(0.0 for _ in range(n_vms)),
            assignments=tuple(() for _ in range(n_vms)),
        )

    order = sorted(range(len(jobs)), key=lambda j: -jobs[j])
    heap: List[Tuple[float, int]] = [(0.0, vm) for vm in range(n_vms)]
    heapq.heapify(heap)
    loads = [0.0] * n_vms
    assignments: List[List[int]] = [[] for _ in range(n_vms)]
    for job in order:
        load, vm = heapq.heappop(heap)
        loads[vm] = load + jobs[job]
        assignments[vm].append(job)
        heapq.heappush(heap, (loads[vm], vm))
    return FleetSchedule(
        n_vms=n_vms,
        makespan=max(loads),
        loads=tuple(loads),
        assignments=tuple(tuple(a) for a in assignments),
    )


@dataclass(frozen=True)
class FleetPoint:
    """One point of the fleet-size trade-off curve."""

    n_vms: int
    wall_clock: float
    utilisation: float


def fleet_tradeoff(
    durations: Sequence[float], fleet_sizes: Sequence[int]
) -> List[FleetPoint]:
    """Wall-clock and utilisation for each candidate fleet size.

    The total core-hours are identical across fleet sizes (same games); the
    curve shows how much rented *calendar* time each fleet buys, and how
    much of it idles once the fleet outgrows the round's parallelism.
    """
    points = []
    for n in fleet_sizes:
        schedule = schedule_lpt(durations, n)
        points.append(
            FleetPoint(
                n_vms=n,
                wall_clock=schedule.makespan,
                utilisation=schedule.utilisation,
            )
        )
    return points
