"""Interference traces: record, replay, and synthesise host noise.

The stochastic :class:`~repro.cloud.interference.InterferenceProcess` is the
default noise source, but three study patterns need a *concrete* level
timeline instead:

* **record/replay** — capture the realisation one strategy experienced and
  replay it for another, so two tuners can be compared under literally
  identical noise;
* **synthetic scenarios** — step shifts, spike trains, and ramps for
  distribution-shift studies (Sec. 5 argues DarwinGame is resilient to
  "cloud interference distribution shifts");
* **external data** — a real host-utilisation trace imported as an array.

A :class:`ReplayedInterference` exposes the same query interface as
``InterferenceProcess`` (``profile``, ``epoch_mean``, ``sample_run_means``,
``sample_trajectory``), so a :class:`~repro.cloud.environment.CloudEnvironment`
can run on a trace by swapping its ``interference`` attribute — no other
code changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cloud.interference import InterferenceProcess
from repro.cloud.vm import InterferenceProfile
from repro.errors import CloudError
from repro.rng import SeedLike, ensure_rng

_MIN_LEVEL = 0.01


@dataclass(frozen=True)
class InterferenceTrace:
    """A piecewise-constant interference level timeline.

    ``levels[k]`` holds the level on ``[k * dt, (k + 1) * dt)``; queries
    beyond the recorded horizon wrap around (a trace is treated as one
    period of a stationary environment).
    """

    levels: np.ndarray
    dt: float

    def __post_init__(self) -> None:
        levels = np.asarray(self.levels, dtype=float)
        if levels.ndim != 1 or levels.size == 0:
            raise CloudError("a trace needs a non-empty 1-D level array")
        if np.any(levels < 0):
            raise CloudError("trace levels must be non-negative")
        if self.dt <= 0:
            raise CloudError(f"trace dt must be positive, got {self.dt}")
        object.__setattr__(self, "levels", levels)

    @property
    def duration(self) -> float:
        """Length of one trace period in seconds."""
        return float(self.levels.size * self.dt)

    def level_at(self, t) -> np.ndarray:
        """Level at time(s) ``t`` (vectorised, wraps past the horizon)."""
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        if np.any(ts < 0):
            raise CloudError("trace queried at negative time")
        buckets = (ts / self.dt).astype(np.int64) % self.levels.size
        return self.levels[buckets]

    def mean_over(self, start, duration) -> np.ndarray:
        """Average level over ``[start, start + duration)`` (vectorised).

        Computed from the cumulative sum of the (tiled) trace, exact for
        arbitrary windows.
        """
        t0 = np.atleast_1d(np.asarray(start, dtype=float))
        dur = np.atleast_1d(np.asarray(duration, dtype=float))
        t0, dur = np.broadcast_arrays(t0, dur)
        if np.any(dur <= 0):
            raise CloudError("window duration must be positive")
        # Integrate via fine sampling at trace resolution (window midpoints
        # per segment); exact when windows align with segments and within
        # O(dt/duration) otherwise.
        out = np.empty(t0.shape)
        for pos in np.ndindex(t0.shape):
            n = max(2, int(np.ceil(dur[pos] / self.dt)) * 2)
            mids = t0[pos] + (np.arange(n) + 0.5) * (dur[pos] / n)
            out[pos] = float(self.level_at(mids).mean())
        return out

    def shifted(self, delta: float) -> "InterferenceTrace":
        """A copy with every level shifted by ``delta`` (floored at ~0)."""
        return InterferenceTrace(
            levels=np.maximum(self.levels + delta, _MIN_LEVEL), dt=self.dt
        )

    def scaled(self, factor: float) -> "InterferenceTrace":
        """A copy with every level scaled by ``factor`` (must be >= 0)."""
        if factor < 0:
            raise CloudError(f"scale factor must be >= 0, got {factor}")
        return InterferenceTrace(
            levels=np.maximum(self.levels * factor, _MIN_LEVEL), dt=self.dt
        )


def record_trace(
    process: InterferenceProcess,
    *,
    duration: float,
    dt: float = 30.0,
    seed: SeedLike = 0,
) -> InterferenceTrace:
    """Sample one realisation of ``process`` into a replayable trace."""
    if duration <= 0 or dt <= 0:
        raise CloudError("duration and dt must be positive")
    n = max(1, int(round(duration / dt)))
    levels = process.sample_trajectory(0.0, n * dt, n, ensure_rng(seed))
    return InterferenceTrace(levels=levels, dt=dt)


def step_trace(
    *,
    level_before: float,
    level_after: float,
    step_at: float,
    duration: float,
    dt: float = 30.0,
) -> InterferenceTrace:
    """A synthetic step shift: quiet until ``step_at``, louder afterwards."""
    if not 0 <= step_at <= duration:
        raise CloudError("step_at must lie within [0, duration]")
    n = max(1, int(round(duration / dt)))
    levels = np.full(n, float(level_before))
    levels[int(step_at / dt):] = float(level_after)
    return InterferenceTrace(levels=np.maximum(levels, _MIN_LEVEL), dt=dt)


def spike_trace(
    *,
    base_level: float,
    spike_level: float,
    period: float,
    spike_duration: float,
    duration: float,
    dt: float = 30.0,
) -> InterferenceTrace:
    """A periodic spike train: noisy-neighbour episodes every ``period``."""
    if spike_duration <= 0 or period <= spike_duration:
        raise CloudError("need 0 < spike_duration < period")
    n = max(1, int(round(duration / dt)))
    t = (np.arange(n) + 0.5) * dt
    in_spike = (t % period) < spike_duration
    levels = np.where(in_spike, float(spike_level), float(base_level))
    return InterferenceTrace(levels=np.maximum(levels, _MIN_LEVEL), dt=dt)


class ReplayedInterference:
    """Deterministic drop-in for :class:`InterferenceProcess` from a trace.

    Only a small residual measurement jitter is stochastic (configurable,
    defaults to none), so replaying the same trace twice yields identical
    observations — the property record/replay studies rely on.
    """

    def __init__(
        self, trace: InterferenceTrace, profile: InterferenceProfile
    ) -> None:
        self.trace = trace
        self.profile = profile

    def epoch_mean(self, t) -> np.ndarray:
        """Slow mean level — for a trace, just the level itself."""
        return self.trace.level_at(t)

    def sample_run_means(self, start_times, durations, rng) -> np.ndarray:
        """Mean level over each run; deterministic given the trace."""
        return self.trace.mean_over(start_times, durations)

    def sample_trajectory(
        self, start_time: float, duration: float, n_segments: int, rng
    ) -> np.ndarray:
        """Piecewise-constant trajectory read straight off the trace."""
        if n_segments <= 0:
            raise CloudError(f"n_segments must be positive, got {n_segments}")
        if duration <= 0:
            raise CloudError(f"duration must be positive, got {duration}")
        dt = duration / n_segments
        mids = start_time + (np.arange(n_segments) + 0.5) * dt
        return self.trace.level_at(mids)
