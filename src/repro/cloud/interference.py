"""Stochastic background-interference process of a shared cloud host.

The process has three components, chosen to reproduce the published
observations (Figs. 1–3) without pretending to model EC2 mechanistically:

* a **slow drift**: a diurnal load cycle plus an hourly random walk —
  tenant churn.  This is what makes tuning campaigns started at different
  times (the paper's T1/T2/T3) see different environments.
* a **fast fluctuation**: an Ornstein–Uhlenbeck-style component with a
  correlation time of about a minute.  Averaging over a long run attenuates
  it by ``sqrt(1 + duration / tau)``.
* **noisy-neighbour bursts**: Poisson-arriving episodes of heavy contention
  lasting a couple of minutes.

Two query styles are provided.  Solo runs (how every baseline tuner samples)
need only the *mean* level over a run — :meth:`sample_run_means` is fully
vectorised for the exhaustive-search scan.  Co-located games need a
*trajectory* so that early termination can observe work progress through
time — :meth:`sample_trajectory`.
"""

from __future__ import annotations

import math

import numpy as np

import repro.xp as xp
from repro.cloud.vm import InterferenceProfile
from repro.errors import CloudError
from repro.rng import SeedLike, child, ensure_rng

_DAY_SECONDS = 86400.0
_BUCKET_SECONDS = 3600.0

#: Floor of the interference level.  Shared with the scenario modifiers
#: (``repro.scenarios``), which clamp to the same floor after their
#: transforms — one constant, one physics.
MIN_LEVEL = 0.01
_MIN_LEVEL = MIN_LEVEL


def ar1_scan(rho: float, state: float, innovations: np.ndarray) -> np.ndarray:
    """Evaluate the linear recurrence ``y[k] = rho * y[k-1] + innovations[k]``.

    Closed form: ``y[k] = rho**(k+1) * state + sum_j rho**(k-j) * eps[j]``,
    evaluated as ``rho**k * cumsum(eps[j] / rho**j)`` so the whole scan is a
    handful of vectorised numpy operations instead of a Python loop.  The
    division by ``rho**j`` grows without bound, so the scan is chunked such
    that ``rho**-j`` spans at most ~100 decades per chunk — well inside
    float64 range while keeping each chunk a single vector expression.

    ``rho`` must lie in ``[0, 1]`` (our decay/correlation coefficients
    always do); negative coefficients are rejected.

    The scan runs on :mod:`repro.xp` (numpy unless an accelerator backend is
    active), since it sits under every trajectory and walk-table draw.
    """
    if not 0.0 <= rho <= 1.0:
        raise CloudError(f"ar1_scan requires rho in [0, 1], got {rho}")
    eps = xp.asarray(innovations, dtype=float)
    n = eps.size
    out = xp.empty(n)
    if n == 0:
        return out
    if rho == 0.0:
        # Memoryless limit (e.g. segment length >> correlation time).
        return eps.copy()
    if rho < 1.0:
        chunk = max(1, int(100.0 / max(-math.log10(rho), 1e-18)))
    else:  # pragma: no cover - rho is always < 1 for our processes
        chunk = n
    pos = 0
    while pos < n:
        m = min(chunk, n - pos)
        powers = rho ** xp.arange(1, m + 1)
        seg = powers * (state + xp.cumsum(eps[pos:pos + m] / powers))
        out[pos:pos + m] = seg
        state = float(seg[-1])
        pos += m
    return out


class InterferenceProcess:
    """Seeded realisation of one host's interference over simulated time.

    ``dynamics`` (a realised :class:`repro.scenarios.ScenarioDynamics`)
    overlays time-varying scenario conditions on the stationary slow
    component.  It transforms the deterministic level field only — it never
    consumes from this process's random streams — so a process without
    dynamics (or with the empty ``steady`` scenario) is bit-identical to
    the pre-scenario behaviour.
    """

    def __init__(
        self,
        profile: InterferenceProfile,
        seed: SeedLike = None,
        dynamics=None,
    ) -> None:
        self.profile = profile
        self.dynamics = dynamics
        rng = ensure_rng(seed)
        self._walk_rng = child(rng)
        self._phase = float(ensure_rng(child(rng)).uniform(0.0, 2.0 * math.pi))
        # Lazily extended random-walk table, one entry per hour bucket.
        self._walk = np.zeros(1, dtype=float)

    # -- slow component -------------------------------------------------

    # AR(1) coefficient of the hourly tenant-churn walk.  With innovation
    # std sigma the stationary std is sigma / sqrt(1 - rho^2) ~= 5 * sigma,
    # so campaigns weeks apart see genuinely different (but bounded) epochs.
    _WALK_RHO = 0.98

    # Buckets appended per extension of the lazy walk table.  Extending in
    # fixed, absolutely-aligned blocks keeps the walk bit-identical no matter
    # which query times (in which order) trigger the extension — the scan's
    # floating-point grouping never depends on the query pattern.
    _WALK_BLOCK = 1024

    def _extend_walk(self, bucket: int) -> None:
        while bucket >= len(self._walk):
            steps = self._walk_rng.normal(
                0.0, self.profile.drift_std, size=self._WALK_BLOCK
            )
            tail = ar1_scan(self._WALK_RHO, float(self._walk[-1]), steps)
            self._walk = np.concatenate([self._walk, tail])

    def epoch_mean(self, t) -> np.ndarray:
        """Deterministic-given-seed slow mean level at time(s) ``t`` (seconds)."""
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        if np.any(ts < 0):
            raise CloudError("interference queried at negative time")
        buckets = (ts / _BUCKET_SECONDS).astype(np.int64)
        self._extend_walk(int(buckets.max()) if buckets.size else 0)
        diurnal = self.profile.diurnal_amplitude * np.sin(
            2.0 * math.pi * ts / _DAY_SECONDS + self._phase
        )
        level = self.profile.mean_level + diurnal + self._walk[buckets]
        level = np.maximum(level, _MIN_LEVEL)
        if self.dynamics is not None:
            # Scenario overlay: vectorised, deterministic given the
            # environment seed, and the single hook every sampling path
            # (solo means, batched trajectories, evaluations) flows through.
            level = self.dynamics.apply(ts, level)
        return level

    # -- solo-run sampling ------------------------------------------------

    def sample_run_means(
        self, start_times, durations, rng: np.random.Generator
    ) -> np.ndarray:
        """Mean interference level over each run (vectorised).

        ``start_times`` and ``durations`` broadcast against each other.  The
        fast component is attenuated by run length; bursts contribute with
        probability ``1 - exp(-rate * duration)``, diluted by
        ``burst_duration / duration`` for runs longer than a burst.
        """
        t0 = np.asarray(start_times, dtype=float)
        dur = np.asarray(durations, dtype=float)
        t0, dur = np.broadcast_arrays(t0, dur)
        if np.any(dur <= 0):
            raise CloudError("run duration must be positive")
        base = self.epoch_mean(t0)
        atten = np.sqrt(1.0 + dur / self.profile.fast_tau)
        fast = rng.normal(0.0, 1.0, size=t0.shape) * (self.profile.fast_std / atten)
        p_burst = 1.0 - np.exp(-self.profile.burst_rate * dur)
        hit = rng.random(size=t0.shape) < p_burst
        dilution = np.minimum(1.0, self.profile.burst_duration / dur)
        bursts = hit * rng.exponential(self.profile.burst_scale, size=t0.shape) * dilution
        return np.maximum(base + fast + bursts, _MIN_LEVEL)

    # -- trajectory sampling (co-located games) ---------------------------

    def sample_trajectory(
        self,
        start_time: float,
        duration: float,
        n_segments: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Piecewise-constant level trajectory over ``n_segments`` segments.

        The fast component follows an AR(1) discretisation of an OU process
        around the slow mean; bursts arrive per segment and decay over the
        following segments.
        """
        if n_segments <= 0:
            raise CloudError(f"n_segments must be positive, got {n_segments}")
        if duration <= 0:
            raise CloudError(f"duration must be positive, got {duration}")
        dt = duration / n_segments
        mids = start_time + (np.arange(n_segments) + 0.5) * dt
        base = self.epoch_mean(mids)

        return self._stochastic_trajectory(base, dt, n_segments, rng)

    def _stochastic_trajectory(
        self,
        base: np.ndarray,
        dt: float,
        n_segments: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Fast AR(1) + burst-decay components on top of the slow ``base``.

        The single draw path shared by :meth:`sample_trajectory` and
        :meth:`sample_trajectories` — batched and per-game trajectories must
        consume a game's generator identically or batched rounds would stop
        being equivalent to single games.
        """
        rho = math.exp(-dt / self.profile.fast_tau)
        innovation_std = self.profile.fast_std * math.sqrt(max(1.0 - rho * rho, 1e-12))
        shocks = rng.normal(0.0, innovation_std, size=n_segments)
        fast = ar1_scan(rho, float(rng.normal(0.0, self.profile.fast_std)), shocks)

        arrivals = rng.random(n_segments) < (self.profile.burst_rate * dt)
        magnitudes = rng.exponential(self.profile.burst_scale, size=n_segments) * arrivals
        decay = math.exp(-dt / self.profile.burst_duration)
        bursts = ar1_scan(decay, 0.0, magnitudes)

        return np.maximum(base + fast + bursts, _MIN_LEVEL)

    def sample_trajectories(
        self,
        start_times: "list[float]",
        durations: "list[float]",
        segment_counts: "list[int]",
        rngs: "list[np.random.Generator]",
    ) -> "list[np.ndarray]":
        """Trajectories of many parallel games, one generator per game.

        Per game this produces exactly what :meth:`sample_trajectory` would
        with the same generator — the stochastic components draw from each
        game's own stream — but the deterministic slow component is
        evaluated for all games in a single vectorised pass, which is what
        makes whole-round batches cheap.
        """
        if not (len(start_times) == len(durations)
                == len(segment_counts) == len(rngs)):
            raise CloudError("trajectory batch arguments must have equal length")
        mids: list = []
        for t0, duration, n_segments in zip(start_times, durations, segment_counts):
            if n_segments <= 0:
                raise CloudError(f"n_segments must be positive, got {n_segments}")
            if duration <= 0:
                raise CloudError(f"duration must be positive, got {duration}")
            dt = duration / n_segments
            mids.append(t0 + (np.arange(n_segments) + 0.5) * dt)
        base_all = self.epoch_mean(np.concatenate(mids)) if mids else np.empty(0)
        bounds = np.cumsum([m.size for m in mids])[:-1]

        return [
            self._stochastic_trajectory(base, duration / n_segments, n_segments, rng)
            for base, duration, n_segments, rng in zip(
                np.split(base_all, bounds), durations, segment_counts, rngs
            )
        ]
