"""Cloud simulator: VMs, interference, co-location physics, accounting."""

from repro.cloud.accounting import CoreHourLedger
from repro.cloud.colocation import (
    contention_level,
    simulate_colocated,
    simulate_colocated_batch,
)
from repro.cloud.environment import CloudEnvironment
from repro.cloud.fleet import (
    FleetPoint,
    FleetSchedule,
    HostClass,
    default_host_mix,
    fleet_tradeoff,
    schedule_lpt,
)
from repro.cloud.interference import InterferenceProcess
from repro.cloud.traces import (
    InterferenceTrace,
    ReplayedInterference,
    record_trace,
    spike_trace,
    step_trace,
)
from repro.cloud.vm import DEFAULT_VM, PRESETS, InterferenceProfile, VMSpec, make_profile

__all__ = [
    "CloudEnvironment",
    "CoreHourLedger",
    "DEFAULT_VM",
    "FleetPoint",
    "FleetSchedule",
    "HostClass",
    "InterferenceProcess",
    "InterferenceProfile",
    "InterferenceTrace",
    "PRESETS",
    "ReplayedInterference",
    "VMSpec",
    "contention_level",
    "default_host_mix",
    "fleet_tradeoff",
    "make_profile",
    "record_trace",
    "schedule_lpt",
    "simulate_colocated",
    "simulate_colocated_batch",
    "spike_trace",
    "step_trace",
]
