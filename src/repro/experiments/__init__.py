"""Experiment runners: one per figure/table of the paper's evaluation."""

from repro.experiments.ablations import AblationResult, run_ablations
from repro.experiments.colocation_study import (
    ColocationStudyResult,
    run_colocation_study,
)
from repro.experiments.format_power import (
    FORMAT_NAMES,
    FormatPowerResult,
    FormatPowerRow,
    run_format_power,
)
from repro.experiments.headline import (
    HeadlineResult,
    HeadlineRow,
    StabilityResult,
    run_headline,
    run_stability,
)
from repro.experiments.instability import InstabilityResult, run_fig3
from repro.experiments.integration import IntegrationResult, run_integration
from repro.experiments.motivation import (
    Fig1Left,
    Fig1Right,
    Fig2Scatter,
    run_fig1_left,
    run_fig1_right,
    run_fig2,
)
from repro.experiments.persistence import (
    evaluation_from_dict,
    jsonable,
    load_campaign,
    load_evaluation,
    load_trace,
    load_tuning_result,
    save_campaign,
    save_evaluation,
    save_trace,
    save_tuning_result,
    tuning_result_from_dict,
)
from repro.experiments.protocol import (
    STRATEGY_NAMES,
    StrategyRun,
    repeat_seed_plan,
    repeat_strategy,
    run_strategy,
)
from repro.experiments.reporting import paper_vs_measured, render_table
from repro.experiments.scenario_robustness import (
    DEFAULT_SCENARIOS,
    ScenarioRobustnessResult,
    run_scenario_robustness,
)
from repro.experiments.sensitivity import SensitivityResult, run_sensitivity
from repro.experiments.shift_study import (
    ShiftRow,
    ShiftStudyResult,
    run_shift_study,
)
from repro.experiments.statistical import (
    STATISTICAL_STRATEGIES,
    StatisticalResult,
    StatisticalRow,
    run_statistical_comparison,
)
from repro.experiments.table1 import Table1Row, run_table1, table1_grid
from repro.experiments.vm_sweep import FIG15_VMS, VMSweepResult, run_vm_sweep

__all__ = [
    "AblationResult",
    "ColocationStudyResult",
    "DEFAULT_SCENARIOS",
    "FIG15_VMS",
    "FORMAT_NAMES",
    "FormatPowerResult",
    "FormatPowerRow",
    "Fig1Left",
    "Fig1Right",
    "Fig2Scatter",
    "HeadlineResult",
    "HeadlineRow",
    "InstabilityResult",
    "IntegrationResult",
    "STATISTICAL_STRATEGIES",
    "STRATEGY_NAMES",
    "ScenarioRobustnessResult",
    "SensitivityResult",
    "ShiftRow",
    "ShiftStudyResult",
    "StabilityResult",
    "StatisticalResult",
    "StatisticalRow",
    "StrategyRun",
    "Table1Row",
    "VMSweepResult",
    "evaluation_from_dict",
    "jsonable",
    "load_campaign",
    "load_evaluation",
    "load_trace",
    "load_tuning_result",
    "paper_vs_measured",
    "render_table",
    "repeat_seed_plan",
    "repeat_strategy",
    "run_ablations",
    "save_campaign",
    "save_evaluation",
    "save_trace",
    "save_tuning_result",
    "run_colocation_study",
    "run_fig1_left",
    "run_format_power",
    "run_fig1_right",
    "run_fig2",
    "run_fig3",
    "run_headline",
    "run_integration",
    "run_scenario_robustness",
    "run_sensitivity",
    "run_shift_study",
    "run_stability",
    "run_statistical_comparison",
    "run_strategy",
    "run_table1",
    "run_vm_sweep",
    "table1_grid",
    "tuning_result_from_dict",
]
