"""Figs. 13 and 14: integrating DarwinGame with existing tuners (Sec. 3.6).

For ActiveHarmony and BLISS we compare the tuner as-is against the tuner
steering DarwinGame tournaments across subspaces (:class:`HybridTuner`):
execution time of the chosen configuration (Fig. 13) and tuning core-hours
as a percentage of exhaustive search (Fig. 14).  OpenTuner is excluded, as
in the paper, because its bandit-over-techniques search has no notion of a
persistent region to hand to DarwinGame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.registry import make_application
from repro.cloud.environment import CloudEnvironment
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.core.config import DarwinGameConfig
from repro.tuners.active_harmony import ActiveHarmonyLike
from repro.tuners.bliss import BlissLike
from repro.tuners.integration import HybridTuner

INTEGRATION_BASES = ("ActiveHarmony", "BLISS")


@dataclass(frozen=True)
class IntegrationRow:
    """One (application, tuner-variant) aggregate."""

    app_name: str
    tuner: str            # e.g. "BLISS" or "BLISS+DarwinGame"
    mean_time: float
    cov_percent: float
    core_hours: float
    core_hours_pct_of_exhaustive: float
    repeats: int


@dataclass(frozen=True)
class IntegrationResult:
    rows: List[IntegrationRow]

    def row(self, app_name: str, tuner: str) -> IntegrationRow:
        for r in self.rows:
            if r.app_name == app_name and r.tuner == tuner:
                return r
        raise KeyError((app_name, tuner))

    def improvement_percent(self, app_name: str, base: str) -> float:
        """Execution-time improvement of base+DarwinGame over base alone."""
        alone = self.row(app_name, base).mean_time
        hybrid = self.row(app_name, f"{base}+DarwinGame").mean_time
        return 100.0 * (alone - hybrid) / alone


def _base_tuner(name: str, seed: int):
    if name == "ActiveHarmony":
        return ActiveHarmonyLike(seed=seed)
    if name == "BLISS":
        return BlissLike(seed=seed)
    raise ValueError(f"unknown integration base {name!r}")


def _exhaustive_core_hours(app, vm: VMSpec) -> float:
    """Analytic cost of exhaustively sampling the space once on this VM."""
    total_seconds = 0.0
    mean_level = vm.interference.mean_level
    for chunk in app.space.iter_chunks():
        t = app.true_time(chunk)
        s = app.sensitivity(chunk)
        total_seconds += float((t * (1.0 + s * mean_level)).sum())
    return vm.vcpus * total_seconds / 3600.0


def run_integration(
    app_names: Tuple[str, ...] = ("redis", "gromacs", "ffmpeg", "lammps"),
    *,
    scale: str = "bench",
    repeats: int = 3,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
    bases: Tuple[str, ...] = INTEGRATION_BASES,
) -> IntegrationResult:
    """Produce the Figs. 13/14 grid."""
    rows: List[IntegrationRow] = []
    rng = np.random.default_rng(seed)
    for app_name in app_names:
        app = make_application(app_name, scale=scale)
        exhaustive_hours = _exhaustive_core_hours(app, vm)
        for base_name in bases:
            variants: Dict[str, list] = {base_name: [], f"{base_name}+DarwinGame": []}
            for k in range(repeats):
                run_seed = int(rng.integers(0, 2**31))
                start = float(k) * 86400.0 * 3.0

                env = CloudEnvironment(vm, seed=run_seed, start_time=start)
                base = _base_tuner(base_name, run_seed)
                result = base.tune(app, env)
                evaluation = env.measure_choice(app, result.best_index)
                variants[base_name].append(
                    (evaluation.mean_time, evaluation.cov_percent, result.core_hours)
                )

                env = CloudEnvironment(vm, seed=run_seed, start_time=start)
                hybrid = HybridTuner(
                    _base_tuner(base_name, run_seed),
                    DarwinGameConfig(seed=run_seed),
                    seed=run_seed,
                )
                result = hybrid.tune(app, env)
                evaluation = env.measure_choice(app, result.best_index)
                variants[hybrid.name].append(
                    (evaluation.mean_time, evaluation.cov_percent, result.core_hours)
                )

            for tuner_name, samples in variants.items():
                times, covs, hours = (np.array([s[i] for s in samples]) for i in range(3))
                rows.append(
                    IntegrationRow(
                        app_name=app_name,
                        tuner=tuner_name,
                        mean_time=float(times.mean()),
                        cov_percent=float(covs.mean()),
                        core_hours=float(hours.mean()),
                        core_hours_pct_of_exhaustive=100.0 * float(hours.mean()) / exhaustive_hours,
                        repeats=repeats,
                    )
                )
    return IntegrationResult(rows=rows)
