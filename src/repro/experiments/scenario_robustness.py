"""Scenario-robustness experiment: tuners under dynamic cloud conditions.

The paper's central claim — tournament tuning is robust where noisy
single-measurement tuners are not — is evaluated under *stationary*
interference only.  This experiment stresses it: the same (app, strategy,
seed) grid is tuned under every requested scenario pack (diurnal swings,
noisy-neighbour storms, spot preemptions, drifting baselines,
heterogeneous fleets) and aggregated per scenario, reporting each
strategy's mean execution time, CoV, and gap versus DarwinGame under
identical conditions.

Like every grid experiment this enumerates a
:class:`~repro.campaigns.spec.CampaignGrid` and submits it through the
campaign runner, so it parallelises with ``jobs=`` and reproduces serial
results bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.campaigns.report import (
    ScenarioRow,
    ScenarioSummary,
    scenario_table,
    summarise_by_scenario,
)
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignGrid
from repro.scenarios import get_scenario

#: The default strategy panel: the tournament versus the paper's strongest
#: search-based baselines (the oracle is meaningless under dynamic noise —
#: its dedicated environment has no interference to modify).
DEFAULT_STRATEGIES: Tuple[str, ...] = ("DarwinGame", "BLISS", "ActiveHarmony")

#: The default scenario panel: the stationary control plus one pack per
#: dynamic archetype.
DEFAULT_SCENARIOS: Tuple[str, ...] = (
    "steady", "diurnal", "bursty", "preemptible", "drift", "mixed-fleet",
)


@dataclass(frozen=True)
class ScenarioRobustnessResult:
    """Per-scenario aggregates plus the grid that produced them."""

    grid: CampaignGrid
    summary: ScenarioSummary

    @property
    def rows(self) -> List[ScenarioRow]:
        return self.summary.rows

    def row(self, scenario: str, strategy: str) -> ScenarioRow:
        return self.summary.row(scenario, strategy)

    def table(self) -> str:
        return scenario_table(
            self.summary, title="tuner robustness across scenario packs"
        )


def run_scenario_robustness(
    *,
    apps: Sequence[str] = ("redis",),
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    seeds: Sequence[int] = (0, 1, 2),
    scale: str = "bench",
    vm: str = "m5.8xlarge",
    eval_runs: int = 100,
    jobs: int = 1,
) -> ScenarioRobustnessResult:
    """Tune every strategy under every scenario and aggregate per scenario."""
    for name in scenarios:
        get_scenario(name)  # fail fast on typos, before any campaign runs
    grid = CampaignGrid(
        apps=tuple(apps),
        strategies=tuple(strategies),
        vms=(vm,),
        seeds=tuple(int(s) for s in seeds),
        scale=scale,
        eval_runs=eval_runs,
        scenarios=tuple(scenarios),
    )
    report = CampaignRunner(jobs=jobs).run(grid.specs()).raise_on_failure()
    return ScenarioRobustnessResult(
        grid=grid, summary=summarise_by_scenario(report.records)
    )
