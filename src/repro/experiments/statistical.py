"""Sec. 3.2 study: statistical noise-handling methods vs DarwinGame.

The paper claims that "statistical methods like quantile regression and
Thompson sampling, which are often used to handle variability, are also
unable to account for unpredictable cloud interference (resulting in
significantly less effective results compared to DarwinGame)".  This runner
quantifies that sentence: it tunes each application with the quantile
regression and Thompson-sampling baselines alongside DarwinGame (and BLISS
as the strongest conventional tuner), using the same evaluation protocol as
the headline figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.campaigns.runner import CampaignRunner, cached_application
from repro.campaigns.spec import repeat_specs, vm_to_field
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.experiments.protocol import StrategyRun

#: Strategy order of the Sec. 3.2 comparison.
STATISTICAL_STRATEGIES = (
    "Optimal",
    "DarwinGame",
    "QuantileRegression",
    "ThompsonSampling",
    "BLISS",
)

_CACHE: Dict[tuple, "StatisticalResult"] = {}


@dataclass(frozen=True)
class StatisticalRow:
    """Aggregate of one (application, strategy) pair."""

    app_name: str
    strategy: str
    mean_time: float
    cov_percent: float
    gap_vs_optimal_percent: float
    core_hours: float
    repeats: int


@dataclass(frozen=True)
class StatisticalResult:
    """The full Sec. 3.2 comparison grid."""

    rows: List[StatisticalRow]
    repeats: int
    scale: str

    def row(self, app_name: str, strategy: str) -> StatisticalRow:
        for r in self.rows:
            if r.app_name == app_name and r.strategy == strategy:
                return r
        raise KeyError((app_name, strategy))

    def apps(self) -> List[str]:
        return list(dict.fromkeys(r.app_name for r in self.rows))


def _aggregate(
    app_name: str,
    strategy: str,
    runs: List[StrategyRun],
    optimal_time: float,
) -> StatisticalRow:
    times = np.array([r.mean_time for r in runs])
    covs = np.array([r.cov_percent for r in runs])
    hours = float(np.mean([r.core_hours for r in runs]))
    mean_time = float(times.mean())
    gap = 100.0 * (mean_time - optimal_time) / optimal_time
    return StatisticalRow(
        app_name=app_name,
        strategy=strategy,
        mean_time=mean_time,
        cov_percent=float(covs.mean()),
        gap_vs_optimal_percent=gap,
        core_hours=hours,
        repeats=len(runs),
    )


def run_statistical_comparison(
    app_names: Tuple[str, ...] = ("redis", "lammps"),
    *,
    scale: str = "bench",
    repeats: int = 3,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
    jobs: int = 1,
) -> StatisticalResult:
    """Tune with every Sec. 3.2 strategy and aggregate the quality metrics.

    The (application x strategy x repeat) grid runs through the campaign
    runner; ``jobs > 1`` parallelises it without changing any result, so
    the cache key ignores ``jobs``.
    """
    key = (tuple(app_names), scale, repeats, vm.name, seed)
    if key in _CACHE:
        return _CACHE[key]

    specs = []
    for app_name in app_names:
        for strategy in STATISTICAL_STRATEGIES:
            n = 1 if strategy == "Optimal" else repeats
            specs.extend(
                repeat_specs(
                    app_name, strategy, repeats=n, scale=scale,
                    vm=vm_to_field(vm), seed=seed,
                )
            )
    report = CampaignRunner(jobs=jobs).run(specs)
    runs_by_cell: Dict[tuple, List[StrategyRun]] = {}
    for run in report.strategy_runs():
        runs_by_cell.setdefault((run.app_name, run.strategy), []).append(run)

    rows: List[StatisticalRow] = []
    for app_name in app_names:
        optimal_time = cached_application(app_name, scale).optimal.true_time
        for strategy in STATISTICAL_STRATEGIES:
            rows.append(
                _aggregate(
                    app_name, strategy,
                    runs_by_cell[(app_name, strategy)], optimal_time,
                )
            )
    result = StatisticalResult(rows=rows, repeats=repeats, scale=scale)
    _CACHE[key] = result
    return result
