"""Motivation experiments: Figs. 1 and 2 (Sec. 2).

* Fig. 1 (left): CDF of cloud execution times over randomly chosen tuning
  configurations — a >3x spread, with the vast majority of configurations
  at least twice as slow as the best.
* Fig. 1 (right): CDF of execution times across many runs of three fixed
  configurations (A, B, C) — the same configuration can vary by tens of
  percent run to run.
* Fig. 2: scatter of per-configuration CoV versus mean execution time —
  faster configurations tend to vary more, with a rare low-time/low-CoV
  ("blue") population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.stats import cdf_points, coefficient_of_variation
from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.rng import ensure_rng


@dataclass(frozen=True)
class Fig1Left:
    """CDF of observed execution times over random configurations."""

    times: np.ndarray
    cdf_percent: np.ndarray
    spread_ratio: float
    fraction_at_least_2x_best: float


@dataclass(frozen=True)
class Fig1Right:
    """Run-to-run variation of three fixed configurations (A fastest)."""

    labels: Tuple[str, str, str]
    mean_times: Tuple[float, float, float]
    max_variation_percent: float
    per_config_times: Tuple[np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class Fig2Point:
    """One configuration in the CoV-vs-mean scatter."""

    index: int
    mean_time: float
    cov_percent: float
    robust: bool


@dataclass(frozen=True)
class Fig2Scatter:
    points: List[Fig2Point]
    trend_correlation: float  # corr(mean time, CoV); negative = faster varies more
    blue_points: List[Fig2Point]  # low-time AND low-CoV configurations


def run_fig1_left(
    app: ApplicationModel,
    *,
    n_configs: int = 250,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
) -> Fig1Left:
    """Observe ``n_configs`` random configurations once each in the cloud."""
    env = CloudEnvironment(vm, seed=seed)
    indices = app.space.sample_indices(n_configs, ensure_rng(seed + 1))
    observed = env.run_solo_batch(app, indices, label="motivation")
    times, pct = cdf_points(observed)
    best = float(times[0])
    return Fig1Left(
        times=times,
        cdf_percent=pct,
        spread_ratio=float(times[-1] / best),
        fraction_at_least_2x_best=float(np.mean(times >= 2.0 * best)),
    )


def run_fig1_right(
    app: ApplicationModel,
    *,
    runs: int = 1000,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
) -> Fig1Right:
    """Re-run three representative configurations many times each.

    The paper's three example configurations average 440s, 617s and 678s for
    Redis — i.e. they sit at roughly 37%, 69% and 80% of the [min, max]
    execution-time range.  We pick the sampled configurations closest to the
    same relative positions.
    """
    rng = ensure_rng(seed)
    sample = app.space.sample_indices(4000, rng)
    true_times = app.true_time(sample)
    lo, hi = float(true_times.min()), float(true_times.max())
    picks = []
    for fraction in (0.37, 0.69, 0.80):
        target = lo + fraction * (hi - lo)
        picks.append(int(sample[int(np.argmin(np.abs(true_times - target)))]))

    env = CloudEnvironment(vm, seed=seed)
    series = []
    for index in picks:
        evaluation = env.measure_choice(app, index, runs=runs, spacing=3600.0)
        # measure_choice returns summary stats; regenerate the raw series for
        # the CDF with the same protocol.
        starts = env.now + np.arange(runs) * 3600.0
        levels = env.interference.sample_run_means(
            starts, evaluation.true_time, ensure_rng(seed + index)
        )
        times = evaluation.true_time * (1.0 + evaluation.sensitivity * levels)
        series.append(times)
    variations = [100.0 * (s.max() - s.min()) / s.min() for s in series]
    return Fig1Right(
        labels=("A", "B", "C"),
        mean_times=tuple(float(s.mean()) for s in series),
        max_variation_percent=float(max(variations)),
        per_config_times=tuple(series),
    )


def run_fig2(
    app: ApplicationModel,
    *,
    n_configs: int = 250,
    runs: int = 100,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
) -> Fig2Scatter:
    """CoV vs mean execution time for random configurations."""
    env = CloudEnvironment(vm, seed=seed)
    indices = app.space.sample_indices(n_configs, ensure_rng(seed + 1))
    robust = app.is_robust(indices)
    points: List[Fig2Point] = []
    for index, is_robust in zip(indices, robust):
        evaluation = env.measure_choice(app, int(index), runs=runs)
        points.append(
            Fig2Point(
                index=int(index),
                mean_time=evaluation.mean_time,
                cov_percent=evaluation.cov_percent,
                robust=bool(is_robust),
            )
        )
    means = np.array([p.mean_time for p in points])
    covs = np.array([p.cov_percent for p in points])
    corr = float(np.corrcoef(means, covs)[0, 1])
    # Blue markers: genuinely fast (within 1.6x of the sampled best) AND
    # stable (CoV below 2%) — the rare candidates a desirable tuner finds.
    time_cut = 1.6 * float(means.min())
    cov_cut = 2.0
    blue = [p for p in points if p.mean_time <= time_cut and p.cov_percent <= cov_cut]
    return Fig2Scatter(points=points, trend_correlation=corr, blue_points=blue)
