"""Interference distribution shift: does the tuned pick survive louder noise?

Sec. 5 notes that "while cloud interference distribution shifts are
possible, several design components of DarwinGame aim to make it resilient
to such varying levels of interference".  The mechanism is simple: because
DarwinGame selects configurations with low noise *sensitivity*, its pick's
execution time barely moves when the background level rises; a conventional
tuner's pick — fast but fragile — inflates with the noise.

The study tunes each strategy under the nominal environment, then evaluates
the chosen configuration under progressively shifted interference (the mean
level raised by a delta), reporting the degradation curve per strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.registry import make_application
from repro.cloud.environment import CloudEnvironment
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.errors import ReproError
from repro.experiments.protocol import run_strategy

_CACHE: Dict[tuple, "ShiftStudyResult"] = {}


@dataclass(frozen=True)
class ShiftRow:
    """One (strategy, shift) cell: pick quality under shifted interference."""

    strategy: str
    shift: float                  # added to the profile's mean level
    mean_time: float              # cloud mean time under the shifted profile
    degradation_percent: float    # vs the same pick under the nominal profile


@dataclass(frozen=True)
class ShiftStudyResult:
    """Degradation curves of every strategy's pick under rising interference."""

    app_name: str
    rows: List[ShiftRow]
    shifts: Tuple[float, ...]

    def row(self, strategy: str, shift: float) -> ShiftRow:
        for r in self.rows:
            if r.strategy == strategy and abs(r.shift - shift) < 1e-12:
                return r
        raise KeyError((strategy, shift))

    def strategies(self) -> List[str]:
        return list(dict.fromkeys(r.strategy for r in self.rows))


def _shifted_vm(vm: VMSpec, shift: float) -> VMSpec:
    """A VM whose interference profile's mean level is raised by ``shift``.

    ``VMSpec`` derives its profile from size and family, so we wrap it in a
    small subclass carrying an explicit profile override.
    """

    profile = dc_replace(
        vm.interference,
        mean_level=vm.interference.mean_level + shift,
        diurnal_amplitude=vm.interference.diurnal_amplitude,
    )

    class _ShiftedVM(VMSpec):
        @property
        def interference(self):  # type: ignore[override]
            return profile

    return _ShiftedVM(name=f"{vm.name}+{shift:.2f}", vcpus=vm.vcpus, family=vm.family)


def run_shift_study(
    app_name: str = "redis",
    *,
    strategies: Tuple[str, ...] = ("DarwinGame", "BLISS", "OpenTuner"),
    shifts: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    scale: str = "bench",
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
    eval_runs: int = 100,
) -> ShiftStudyResult:
    """Tune under the nominal profile; evaluate picks under shifted profiles."""
    if not shifts or shifts[0] != 0.0:
        raise ReproError("shifts must start at 0.0 (the nominal baseline)")
    key = (app_name, strategies, shifts, scale, vm.name, seed, eval_runs)
    if key in _CACHE:
        return _CACHE[key]

    app = make_application(app_name, scale=scale)
    rows: List[ShiftRow] = []
    for strategy in strategies:
        tuned = run_strategy(app, strategy, vm=vm, seed=seed)
        pick = tuned.best_index
        baseline = None
        for shift in shifts:
            shifted_vm = _shifted_vm(vm, shift) if shift else vm
            eval_env = CloudEnvironment(shifted_vm, seed=seed + 99_991)
            evaluation = eval_env.measure_choice(app, pick, runs=eval_runs)
            if baseline is None:
                baseline = evaluation.mean_time
            rows.append(
                ShiftRow(
                    strategy=strategy,
                    shift=shift,
                    mean_time=evaluation.mean_time,
                    degradation_percent=100.0
                    * (evaluation.mean_time - baseline)
                    / baseline,
                )
            )
    result = ShiftStudyResult(app_name=app_name, rows=rows, shifts=shifts)
    _CACHE[key] = result
    return result
