"""Shared evaluation protocol for every experiment.

One *strategy run* is: build a fresh cloud environment (its own interference
realisation), let the strategy tune the application, then evaluate the chosen
configuration with the paper's protocol — 100 executions spread over time,
reporting mean execution time and coefficient of variation (Sec. 4).

Strategies are referred to by the names used in the paper's figures:
``"Optimal"`` (oracle, dedicated environment), ``"DarwinGame"``,
``"Exhaustive"``, ``"BLISS"``, ``"OpenTuner"``, ``"ActiveHarmony"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.core.config import DarwinGameConfig
from repro.core.tournament import DarwinGame
from repro.errors import ReproError
from repro.tuners.active_harmony import ActiveHarmonyLike
from repro.tuners.bliss import BlissLike
from repro.tuners.exhaustive import ExhaustiveSearch
from repro.tuners.opentuner_like import OpenTunerLike
from repro.tuners.annealing import SimulatedAnnealingTuner
from repro.tuners.genetic import GeneticTuner
from repro.tuners.quantile_regression import QuantileRegressionTuner
from repro.tuners.thompson import ThompsonSamplingTuner
from repro.types import ChoiceEvaluation, TuningResult

#: Strategies, in the order the paper's figures list them.
STRATEGY_NAMES = (
    "Optimal",
    "DarwinGame",
    "Exhaustive",
    "BLISS",
    "OpenTuner",
    "ActiveHarmony",
)


@dataclass(frozen=True)
class StrategyRun:
    """One tuning campaign plus the post-hoc quality of its chosen config.

    ``tuning_result`` carries the tuner's full :class:`TuningResult` (chosen
    values, evaluation count, per-strategy diagnostics) when the strategy
    actually tuned; the ``"Optimal"`` oracle has none.  The campaign store
    archives it alongside the evaluation.
    """

    strategy: str
    app_name: str
    vm_name: str
    evaluation: ChoiceEvaluation
    core_hours: float
    tuning_seconds: float
    best_index: int
    tuning_result: Optional[TuningResult] = None

    @property
    def mean_time(self) -> float:
        return self.evaluation.mean_time

    @property
    def cov_percent(self) -> float:
        return self.evaluation.cov_percent


def _make_strategy(name: str, seed: int):
    """Instantiate a tuner-like object (``.tune(app, env)``) by figure name."""
    factories: Dict[str, Callable] = {
        "DarwinGame": lambda: DarwinGame(DarwinGameConfig(seed=seed)),
        "Exhaustive": lambda: ExhaustiveSearch(seed=seed),
        "BLISS": lambda: BlissLike(seed=seed),
        "OpenTuner": lambda: OpenTunerLike(seed=seed),
        "ActiveHarmony": lambda: ActiveHarmonyLike(seed=seed),
        "QuantileRegression": lambda: QuantileRegressionTuner(seed=seed),
        "ThompsonSampling": lambda: ThompsonSamplingTuner(seed=seed),
        "GeneticAlgorithm": lambda: GeneticTuner(seed=seed),
        "SimulatedAnnealing": lambda: SimulatedAnnealingTuner(seed=seed),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ReproError(
            f"unknown strategy {name!r}; available: {list(factories)} + 'Optimal'"
        ) from None


def run_strategy(
    app: ApplicationModel,
    strategy: str,
    *,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
    start_time: float = 0.0,
    eval_runs: int = 100,
    darwin_config: Optional[DarwinGameConfig] = None,
    tuner_seed: Optional[int] = None,
    scenario=None,
    tournament_format: Optional[str] = None,
) -> StrategyRun:
    """Tune once with ``strategy`` and evaluate the chosen configuration.

    ``"Optimal"`` is the infeasible oracle: the configuration with the lowest
    dedicated-environment time, charged zero tuning cost, *evaluated in the
    dedicated environment* (its bar in Fig. 10 is the interference-free
    time, which is what every cloud strategy is measured against).

    ``tuner_seed`` decouples the tuner's internal randomness from the
    environment's noise realisation (``seed``); by default both derive from
    ``seed``.  The stability experiment fixes the tuner seed and varies only
    the environment — "the same tool, run at different times in the cloud".

    ``scenario`` (a registered pack name or a :class:`repro.scenarios.
    Scenario`) overlays dynamic cloud conditions on the environment; both
    tuning *and* the post-hoc evaluation run under them.  The oracle is
    unaffected — its dedicated environment has no interference to modify.

    ``tournament_format`` (a registered :mod:`repro.formats.recipes` name)
    selects the tournament shape the DarwinGame engine runs.  The name is
    validated for every strategy (typos fail fast), but only ``DarwinGame``
    has a tournament shape — other strategies run identically under every
    format.
    """
    if tournament_format is not None:
        from repro.formats.recipes import tournament_format as resolve_format

        resolve_format(tournament_format)
    env = CloudEnvironment(vm, seed=seed, start_time=start_time,
                           scenario=scenario)
    if tuner_seed is None:
        tuner_seed = seed
    if strategy == "Optimal":
        point = app.optimal
        evaluation = ChoiceEvaluation(
            index=point.index,
            mean_time=point.true_time,
            cov_percent=0.0,
            min_time=point.true_time,
            max_time=point.true_time,
            true_time=point.true_time,
            sensitivity=point.sensitivity,
            runs=0,
        )
        return StrategyRun(
            strategy=strategy,
            app_name=app.name,
            vm_name=vm.name,
            evaluation=evaluation,
            core_hours=0.0,
            tuning_seconds=0.0,
            best_index=point.index,
        )

    if strategy == "DarwinGame":
        config = (
            darwin_config if darwin_config is not None
            else DarwinGameConfig(seed=tuner_seed)
        )
        if tournament_format is not None:
            config = config.with_format(tournament_format)
        tuner = DarwinGame(config)
    else:
        tuner = _make_strategy(strategy, tuner_seed)
    result: TuningResult = tuner.tune(app, env)
    evaluation = env.measure_choice(app, result.best_index, runs=eval_runs)
    return StrategyRun(
        strategy=strategy,
        app_name=app.name,
        vm_name=vm.name,
        evaluation=evaluation,
        core_hours=result.core_hours,
        tuning_seconds=result.tuning_seconds,
        best_index=result.best_index,
        tuning_result=result,
    )


def repeat_seed_plan(
    seed: int, repeats: int, *, vary_tuner_seed: bool = True
) -> List[Tuple[int, float, int]]:
    """The ``(env_seed, start_time, tuner_seed)`` plan behind repeated tuning.

    Single source of truth shared by :func:`repeat_strategy` and the
    campaign layer's :func:`repro.campaigns.spec.repeat_specs`: each repeat
    gets its own interference realisation and a campaign start three days
    after the previous one.
    """
    rng = np.random.default_rng(seed)
    plan: List[Tuple[int, float, int]] = []
    for k in range(repeats):
        env_seed = int(rng.integers(0, 2**31))
        plan.append(
            (
                env_seed,
                float(k) * 86400.0 * 3.0,
                env_seed if vary_tuner_seed else int(seed),
            )
        )
    return plan


def repeat_strategy(
    app: ApplicationModel,
    strategy: str,
    *,
    repeats: int,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
    eval_runs: int = 100,
    vary_tuner_seed: bool = True,
) -> List[StrategyRun]:
    """Repeat a strategy with different seeds (the paper repeats tuning 100x).

    Each repeat gets its own interference realisation and a different
    campaign start time — reproducing "tuning performed multiple times in
    the cloud during different time intervals".  With ``vary_tuner_seed``
    (the default) the tuner's internal randomness is also re-seeded per
    repeat; the stability experiment passes ``False`` to isolate the effect
    of the environment's noise on the tuner's outcome.
    """
    return [
        run_strategy(
            app,
            strategy,
            vm=vm,
            seed=env_seed,
            start_time=start_time,
            eval_runs=eval_runs,
            tuner_seed=tuner_seed,
        )
        for env_seed, start_time, tuner_seed in repeat_seed_plan(
            seed, repeats, vary_tuner_seed=vary_tuner_seed
        )
    ]
