"""Fig. 15: DarwinGame's effectiveness across VM classes and sizes.

Redis is tuned and executed on every evaluated instance type; DarwinGame's
chosen configuration should stay within ~10% of the Oracle (dedicated-
environment optimum) everywhere, with a CoV below ~0.5%, even though smaller
VMs suffer much heavier interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.campaigns.runner import CampaignRunner, cached_application
from repro.campaigns.spec import CampaignSpec
from repro.cloud.vm import PRESETS, VMSpec

#: The paper's Fig. 15 x-axis, in order.
FIG15_VMS: Tuple[str, ...] = (
    "m5.large",
    "m5.2xlarge",
    "m5.8xlarge",
    "m5.16xlarge",
    "m5.24xlarge",
    "c5.9xlarge",
    "r5.8xlarge",
    "i3.8xlarge",
)


@dataclass(frozen=True)
class VMSweepRow:
    vm_name: str
    vcpus: int
    oracle_time: float
    darwin_time: float
    gap_percent: float
    cov_percent: float
    core_hours: float


@dataclass(frozen=True)
class VMSweepResult:
    app_name: str
    rows: List[VMSweepRow]

    @property
    def worst_gap_percent(self) -> float:
        return max(r.gap_percent for r in self.rows)

    @property
    def worst_cov_percent(self) -> float:
        return max(r.cov_percent for r in self.rows)


def run_vm_sweep(
    app_name: str = "redis",
    *,
    scale: str = "bench",
    seed: int = 0,
    vm_names: Tuple[str, ...] = FIG15_VMS,
    jobs: int = 1,
) -> VMSweepResult:
    """Tune with DarwinGame on each VM type; compare to the Oracle.

    One campaign per VM preset, submitted through the campaign runner;
    ``jobs > 1`` sweeps instance types in parallel with identical results.
    """
    oracle = cached_application(app_name, scale).optimal.true_time
    specs = [
        CampaignSpec(
            app=app_name, strategy="DarwinGame", vm=vm_name,
            scale=scale, seed=seed,
        )
        for vm_name in vm_names
    ]
    runs = CampaignRunner(jobs=jobs).run(specs).strategy_runs()
    rows: List[VMSweepRow] = []
    for vm_name, run in zip(vm_names, runs):
        vm: VMSpec = PRESETS[vm_name]
        gap = 100.0 * (run.mean_time - oracle) / oracle
        rows.append(
            VMSweepRow(
                vm_name=vm_name,
                vcpus=vm.vcpus,
                oracle_time=oracle,
                darwin_time=run.mean_time,
                gap_percent=gap,
                cov_percent=run.cov_percent,
                core_hours=run.core_hours,
            )
        )
    return VMSweepResult(app_name=app_name, rows=rows)
