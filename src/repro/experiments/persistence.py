"""JSON persistence of tuning campaigns and their artefacts.

Tuning in the cloud is long-running and billed by the hour; users archive
outcomes and compare campaigns across days.  This module round-trips the
library's result records through plain JSON — no pickle, so the files are
stable across library versions, auditable, and loadable by external tools:

* :class:`~repro.types.TuningResult` — a tuner's outcome,
* :class:`~repro.types.ChoiceEvaluation` — the 100-run quality measurement,
* :class:`~repro.cloud.traces.InterferenceTrace` — a recorded noise
  timeline,
* a *campaign*: one tuning result plus its evaluation and metadata.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.cloud.traces import InterferenceTrace
from repro.errors import ReproError
from repro.types import ChoiceEvaluation, TuningResult

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def jsonable(value):
    """Recursively convert numpy scalars/arrays to plain Python.

    Public building block: the campaign store (:mod:`repro.campaigns.store`)
    streams records through this before writing JSONL lines.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


_jsonable = jsonable


def tuning_result_from_dict(data: dict) -> TuningResult:
    """Rebuild a :class:`TuningResult` from its ``asdict`` representation."""
    data = dict(data)
    data["best_values"] = tuple(data["best_values"])
    return TuningResult(**data)


def evaluation_from_dict(data: dict) -> ChoiceEvaluation:
    """Rebuild a :class:`ChoiceEvaluation` from its ``asdict`` form."""
    return ChoiceEvaluation(**data)


def _dump(payload: dict, path: PathLike) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as handle:
        json.dump(_jsonable(payload), handle, indent=2)
    return out


def _load(path: PathLike, expected_kind: str) -> dict:
    with Path(path).open() as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ReproError(
            f"{path} holds {type(payload).__name__} JSON, "
            f"expected a {expected_kind!r} record"
        )
    kind = payload.get("kind")
    if kind != expected_kind:
        raise ReproError(
            f"{path} holds a {kind!r} record, expected {expected_kind!r}"
        )
    if payload.get("version") != _FORMAT_VERSION:
        raise ReproError(
            f"{path} uses format version {payload.get('version')}, "
            f"this library reads version {_FORMAT_VERSION}"
        )
    return payload


# -- TuningResult -----------------------------------------------------------

def save_tuning_result(result: TuningResult, path: PathLike) -> Path:
    """Write a tuning result as JSON; returns the path written."""
    payload = {
        "kind": "tuning_result",
        "version": _FORMAT_VERSION,
        "data": asdict(result),
    }
    return _dump(payload, path)


def load_tuning_result(path: PathLike) -> TuningResult:
    """Read a tuning result written by :func:`save_tuning_result`."""
    return tuning_result_from_dict(_load(path, "tuning_result")["data"])


# -- ChoiceEvaluation ---------------------------------------------------------

def save_evaluation(evaluation: ChoiceEvaluation, path: PathLike) -> Path:
    """Write a choice evaluation as JSON."""
    payload = {
        "kind": "choice_evaluation",
        "version": _FORMAT_VERSION,
        "data": asdict(evaluation),
    }
    return _dump(payload, path)


def load_evaluation(path: PathLike) -> ChoiceEvaluation:
    """Read a choice evaluation written by :func:`save_evaluation`."""
    return evaluation_from_dict(_load(path, "choice_evaluation")["data"])


# -- InterferenceTrace --------------------------------------------------------

def save_trace(trace: InterferenceTrace, path: PathLike) -> Path:
    """Write an interference trace as JSON."""
    payload = {
        "kind": "interference_trace",
        "version": _FORMAT_VERSION,
        "data": {"levels": trace.levels.tolist(), "dt": trace.dt},
    }
    return _dump(payload, path)


def load_trace(path: PathLike) -> InterferenceTrace:
    """Read a trace written by :func:`save_trace`."""
    data = _load(path, "interference_trace")["data"]
    return InterferenceTrace(
        levels=np.asarray(data["levels"], dtype=float), dt=float(data["dt"])
    )


# -- whole campaigns ----------------------------------------------------------

def save_campaign(
    result: TuningResult,
    evaluation: Optional[ChoiceEvaluation],
    path: PathLike,
    *,
    app_name: str = "",
    vm_name: str = "",
    notes: str = "",
) -> Path:
    """Archive one tuning campaign: result + evaluation + metadata."""
    payload = {
        "kind": "campaign",
        "version": _FORMAT_VERSION,
        "meta": {"app": app_name, "vm": vm_name, "notes": notes},
        "result": asdict(result),
        "evaluation": asdict(evaluation) if evaluation is not None else None,
    }
    return _dump(payload, path)


def load_campaign(path: PathLike) -> tuple:
    """Read a campaign archive; returns ``(result, evaluation, meta)``.

    ``evaluation`` is ``None`` when the campaign was saved without one.
    """
    payload = _load(path, "campaign")
    result = tuning_result_from_dict(payload["result"])
    evaluation = (
        evaluation_from_dict(payload["evaluation"])
        if payload["evaluation"] is not None
        else None
    )
    return result, evaluation, payload["meta"]
