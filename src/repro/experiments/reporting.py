"""Plain-text rendering of experiment results.

Every benchmark prints the rows/series the paper's figure or table reports,
in a fixed-width layout, so "regenerating Fig. N" means running the bench
and reading the same comparison off the terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence], *, title: str = "") -> str:
    """Render a fixed-width text table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def paper_vs_measured(
    claim: str, paper_value: str, measured_value: str, holds: bool
) -> str:
    """One line of the EXPERIMENTS.md-style paper-vs-measured record."""
    mark = "OK " if holds else "DIFF"
    return f"[{mark}] {claim}: paper={paper_value} measured={measured_value}"
