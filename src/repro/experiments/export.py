"""CSV export of figure data (for plotting outside this repository).

Every experiment result dataclass can be flattened to rows; this module
writes them as CSV so the paper's figures can be re-plotted with any tool.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.experiments.ablations import AblationResult
from repro.experiments.headline import HeadlineResult
from repro.experiments.integration import IntegrationResult
from repro.experiments.motivation import Fig1Left, Fig2Scatter
from repro.experiments.vm_sweep import VMSweepResult

PathLike = Union[str, Path]


def _write(path: PathLike, headers: Sequence[str], rows: Iterable[Sequence]) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return out


def export_fig1_left(result: Fig1Left, path: PathLike) -> Path:
    """CDF of observed execution times (Fig. 1 left)."""
    return _write(
        path,
        ["execution_time_s", "cumulative_percent"],
        zip(result.times.tolist(), result.cdf_percent.tolist()),
    )


def export_fig2(result: Fig2Scatter, path: PathLike) -> Path:
    """CoV-vs-mean scatter points (Fig. 2)."""
    return _write(
        path,
        ["index", "mean_time_s", "cov_percent", "robust"],
        ((p.index, p.mean_time, p.cov_percent, int(p.robust)) for p in result.points),
    )


def export_headline(result: HeadlineResult, path: PathLike) -> Path:
    """Figs. 10/11/12 grid."""
    return _write(
        path,
        [
            "app", "strategy", "mean_time_s", "time_low_s", "time_high_s",
            "cov_percent", "core_hours", "core_hours_pct_of_exhaustive",
            "distinct_picks", "modal_pick_fraction", "repeats",
        ],
        (
            (
                r.app_name, r.strategy, r.mean_time, r.time_low, r.time_high,
                r.cov_percent, r.core_hours, r.core_hours_pct_of_exhaustive,
                r.distinct_picks, r.modal_pick_fraction, r.repeats,
            )
            for r in result.rows
        ),
    )


def export_integration(result: IntegrationResult, path: PathLike) -> Path:
    """Figs. 13/14 grid."""
    return _write(
        path,
        ["app", "tuner", "mean_time_s", "cov_percent", "core_hours",
         "core_hours_pct_of_exhaustive"],
        (
            (r.app_name, r.tuner, r.mean_time, r.cov_percent, r.core_hours,
             r.core_hours_pct_of_exhaustive)
            for r in result.rows
        ),
    )


def export_vm_sweep(result: VMSweepResult, path: PathLike) -> Path:
    """Fig. 15 series."""
    return _write(
        path,
        ["vm", "vcpus", "oracle_s", "darwingame_s", "gap_percent", "cov_percent"],
        (
            (r.vm_name, r.vcpus, r.oracle_time, r.darwin_time, r.gap_percent,
             r.cov_percent)
            for r in result.rows
        ),
    )


def export_ablations(result: AblationResult, path: PathLike) -> Path:
    """Fig. 16 grid."""
    return _write(
        path,
        ["app", "ablation", "time_increase_pct", "cov_increase_pct",
         "core_hours_increase_pct"],
        (
            (r.app_name, r.ablation, r.time_increase_percent,
             r.cov_increase_percent, r.core_hours_increase_percent)
            for r in result.rows
        ),
    )


def export_statistical(result, path: PathLike) -> Path:
    """Sec. 3.2 statistical-baselines grid (StatisticalResult)."""
    return _write(
        path,
        ["app", "strategy", "mean_time_s", "gap_vs_optimal_pct", "cov_percent",
         "core_hours", "repeats"],
        (
            (r.app_name, r.strategy, r.mean_time, r.gap_vs_optimal_percent,
             r.cov_percent, r.core_hours, r.repeats)
            for r in result.rows
        ),
    )


def export_shift_study(result, path: PathLike) -> Path:
    """Sec. 5 interference-shift degradation curves (ShiftStudyResult)."""
    return _write(
        path,
        ["strategy", "level_shift", "mean_time_s", "degradation_pct"],
        (
            (r.strategy, r.shift, r.mean_time, r.degradation_percent)
            for r in result.rows
        ),
    )


def export_format_power(result, path: PathLike) -> Path:
    """Sec. 3.5 format predictive-power grid (FormatPowerResult)."""
    return _write(
        path,
        ["format", "noise_std", "predictive_power", "top2_power", "mean_games",
         "trials"],
        (
            (r.format_name, r.noise_std, r.predictive_power, r.top2_power,
             r.mean_games, r.trials)
            for r in result.rows
        ),
    )
