"""Why games, and why not one giant game: Sec. 3.2/3.3's quantified asides.

Two numbers in the design discussion justify the tournament's shape:

* "Even when we play games multiple times between the maximum number of most
  promising tuning configurations that can be co-located (1000
  configurations), the resulting winner is far from the optimal solution
  (more than 2.8x more execution time on average).  This is because
  co-location inside a VM creates additional noise."  — mass co-location
  fails; you need small games.
* "Empirically, we observed this approach outperforms other strategies
  where each configuration is individually exposed to the background noise
  ... often by more than 10%."  — solo exposure fails; you need *shared*
  noise.

This module reproduces both: a mass-co-location strategy (one huge game on
an oversubscribed VM), a solo-exposure strategy (the same tournament
schedule, but every player measured alone and compared on observed times),
and DarwinGame itself, all on the same applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.model import ApplicationModel
from repro.apps.registry import make_application
from repro.cloud.colocation import contention_level
from repro.cloud.environment import CloudEnvironment
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.core.config import DarwinGameConfig
from repro.core.tournament import DarwinGame
from repro.errors import ReproError
from repro.rng import ensure_rng

_CACHE: Dict[tuple, "ColocationStudyResult"] = {}


@dataclass(frozen=True)
class StrategyOutcome:
    """Chosen configuration quality for one comparison strategy.

    Picks are judged the way the paper judges tuners: by their mean
    execution time *in the cloud* (100 runs spread over time), not by their
    dedicated-environment time — a fragile configuration that looks fast
    solo is still a bad pick.
    """

    strategy: str
    mean_pick_time: float          # mean cloud time of the pick across repeats
    time_vs_optimal: float         # mean_pick_time / optimal true time
    repeats: int


@dataclass(frozen=True)
class ColocationStudyResult:
    """Mass co-location vs solo exposure vs DarwinGame, per application."""

    app_name: str
    outcomes: List[StrategyOutcome]

    def outcome(self, strategy: str) -> StrategyOutcome:
        for o in self.outcomes:
            if o.strategy == strategy:
                return o
        raise KeyError(strategy)


def _mass_colocation_pick(
    app: ApplicationModel, seed: int, *, n_players: int, games: int
) -> int:
    """One huge oversubscribed game, repeated; best average work wins.

    The physics honestly model why this fails: contention grows linearly
    with the player count, so at 1000 players on 32 vCPUs the shared noise
    term dwarfs the players' intrinsic speed differences.
    """
    rng = ensure_rng(seed)
    env = CloudEnvironment(DEFAULT_VM, seed=seed)
    players = app.space.sample_indices(n_players, rng, replace=False)
    t_true = app.true_time(players)
    sens = app.sensitivity(players)
    shared = contention_level(n_players, env.vm.vcpus)
    totals = np.zeros(n_players)
    for _ in range(games):
        # Equivalent mass-game physics without the (vCPU-capped) Game API:
        # every player experiences the same trajectory draw plus huge
        # contention; work rate ~ 1 / effective time.  At ~30x
        # oversubscription the scheduler's per-copy CPU share fluctuates
        # wildly, so the sticky unfairness grows with the contention level —
        # this is the "co-location inside a VM creates additional noise"
        # that makes the mass game nearly uninformative.
        level = float(
            env.interference.sample_run_means(env.now, float(t_true.mean()), rng)[0]
        )
        queueing = rng.normal(0.0, 0.02 * shared, size=n_players)
        unfairness = rng.normal(0.0, 0.03, size=n_players) * (0.25 + 0.75 * sens)
        effective = t_true * np.maximum(
            1.0 + sens * (level + shared) + unfairness + queueing, 1e-3
        )
        totals += (1.0 / effective) / (1.0 / effective).max()
        env.advance(float(effective.min()))
    return int(players[int(np.argmax(totals))])


def _solo_exposure_pick(app: ApplicationModel, seed: int, *, budget: int) -> int:
    """Tournament-free strawman: each candidate measured alone, best time wins.

    Every candidate is exposed to *different* background noise — the exact
    failure mode DarwinGame's shared-noise games avoid.
    """
    rng = ensure_rng(seed)
    env = CloudEnvironment(DEFAULT_VM, seed=seed)
    players = app.space.sample_indices(budget, rng, replace=False)
    observed = env.run_solo_batch(app, players, label="solo-exposure")
    return int(players[int(np.argmin(observed))])


def run_colocation_study(
    app_name: str = "redis",
    *,
    scale: str = "bench",
    repeats: int = 3,
    mass_players: int = 1000,
    mass_games: int = 5,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
) -> ColocationStudyResult:
    """Compare mass co-location, solo exposure, and DarwinGame."""
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    key = (app_name, scale, repeats, mass_players, mass_games, vm.name, seed)
    if key in _CACHE:
        return _CACHE[key]

    app = make_application(app_name, scale=scale)
    optimal = app.optimal.true_time
    rng = np.random.default_rng(seed)
    seeds = [int(rng.integers(0, 2**31)) for _ in range(repeats)]
    eval_env = CloudEnvironment(vm, seed=seed + 10_000)

    def pick_time(index: int) -> float:
        return eval_env.measure_choice(app, index, runs=100).mean_time

    mass = [
        pick_time(_mass_colocation_pick(app, s, n_players=mass_players, games=mass_games))
        for s in seeds
    ]
    # Solo exposure gets the same sampling budget DarwinGame's games imply.
    solo = [pick_time(_solo_exposure_pick(app, s, budget=4096)) for s in seeds]
    darwin = []
    for s in seeds:
        env = CloudEnvironment(vm, seed=s)
        result = DarwinGame(DarwinGameConfig(seed=s)).tune(app, env)
        darwin.append(pick_time(result.best_index))

    outcomes = [
        StrategyOutcome(
            strategy=name,
            mean_pick_time=float(np.mean(times)),
            time_vs_optimal=float(np.mean(times)) / optimal,
            repeats=repeats,
        )
        for name, times in (
            ("MassColocation", mass),
            ("SoloExposure", solo),
            ("DarwinGame", darwin),
        )
    ]
    result = ColocationStudyResult(app_name=app_name, outcomes=outcomes)
    _CACHE[key] = result
    return result
