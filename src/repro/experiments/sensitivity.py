"""Sec. 3.2/3.3 hyper-parameter robustness claims.

* Varying the work-done deviation ``d`` between 5% and 15% changes
  DarwinGame's execution-time outcome by less than 2.7%.
* Varying the region count ``n_r`` between 0.5x and 1.5x the default changes
  the outcome by less than 3.7%.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.registry import make_application
from repro.cloud.environment import CloudEnvironment
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.core.config import DarwinGameConfig, auto_regions
from repro.core.tournament import DarwinGame


@dataclass(frozen=True)
class SweepPoint:
    parameter: str
    value: float
    mean_time: float


@dataclass(frozen=True)
class SensitivityResult:
    app_name: str
    points: List[SweepPoint]

    def max_spread_percent(self, parameter: str) -> float:
        """Largest relative outcome difference across the swept values."""
        times = [p.mean_time for p in self.points if p.parameter == parameter]
        if not times:
            raise KeyError(parameter)
        return 100.0 * (max(times) - min(times)) / min(times)


def _outcome(app, vm: VMSpec, config: DarwinGameConfig, seed: int) -> float:
    env = CloudEnvironment(vm, seed=seed)
    result = DarwinGame(dataclasses.replace(config, seed=seed)).tune(app, env)
    return env.measure_choice(app, result.best_index).mean_time


def run_sensitivity(
    app_name: str = "redis",
    *,
    scale: str = "bench",
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
    deviations: Tuple[float, ...] = (0.05, 0.10, 0.15),
    region_factors: Tuple[float, ...] = (0.5, 1.0, 1.5),
) -> SensitivityResult:
    """Sweep ``d`` and ``n_r`` around their defaults."""
    app = make_application(app_name, scale=scale)
    points: List[SweepPoint] = []
    for d in deviations:
        config = DarwinGameConfig(work_deviation=d)
        points.append(
            SweepPoint("work_deviation", d, _outcome(app, vm, config, seed))
        )
    default_regions = auto_regions(app.space.size)
    for factor in region_factors:
        n_regions: Optional[int] = max(4, int(default_regions * factor))
        config = DarwinGameConfig(n_regions=n_regions)
        points.append(
            SweepPoint("n_regions", float(n_regions), _outcome(app, vm, config, seed))
        )
    return SensitivityResult(app_name=app_name, points=points)
