"""Headline evaluation: Figs. 10, 11 and 12, plus the pick-stability claim.

One *headline run* tunes every application with every strategy several times
(fresh interference realisation and campaign start per repeat) and collects,
per (application, strategy):

* Fig. 10 — mean execution time of the chosen configuration (and its range
  across repeats, the error bars);
* Fig. 11 — coefficient of variation of the chosen configuration across 100
  cloud executions;
* Fig. 12 — core-hours spent tuning, as a percentage of exhaustive search.

The Sec. 5 stability claim (DarwinGame picks the same configuration 93/100
repeats while the next-best tuner picks 42 different ones) is computed from
the same repeats.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import repeat_specs, vm_to_field
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.experiments.protocol import STRATEGY_NAMES, StrategyRun

_CACHE: Dict[tuple, "HeadlineResult"] = {}


@dataclass(frozen=True)
class HeadlineRow:
    """One (application, strategy) aggregate."""

    app_name: str
    strategy: str
    mean_time: float
    time_low: float       # error-bar bottom across repeats
    time_high: float      # error-bar top across repeats
    cov_percent: float    # mean CoV across repeats
    core_hours: float
    core_hours_pct_of_exhaustive: float
    distinct_picks: int
    modal_pick_fraction: float
    repeats: int


@dataclass(frozen=True)
class HeadlineResult:
    rows: List[HeadlineRow]
    scale: str
    repeats: int

    def row(self, app_name: str, strategy: str) -> HeadlineRow:
        for r in self.rows:
            if r.app_name == app_name and r.strategy == strategy:
                return r
        raise KeyError((app_name, strategy))

    def apps(self) -> List[str]:
        return list(dict.fromkeys(r.app_name for r in self.rows))


def _aggregate(
    app_name: str,
    strategy: str,
    runs: Sequence[StrategyRun],
    exhaustive_core_hours: float,
) -> HeadlineRow:
    times = np.array([r.mean_time for r in runs])
    covs = np.array([r.cov_percent for r in runs])
    hours = float(np.mean([r.core_hours for r in runs]))
    picks = Counter(r.best_index for r in runs)
    modal = picks.most_common(1)[0][1] / len(runs)
    pct = 100.0 * hours / exhaustive_core_hours if exhaustive_core_hours else 0.0
    return HeadlineRow(
        app_name=app_name,
        strategy=strategy,
        mean_time=float(times.mean()),
        time_low=float(times.min()),
        time_high=float(times.max()),
        cov_percent=float(covs.mean()),
        core_hours=hours,
        core_hours_pct_of_exhaustive=pct,
        distinct_picks=len(picks),
        modal_pick_fraction=float(modal),
        repeats=len(runs),
    )


def run_headline(
    app_names: Tuple[str, ...] = ("redis", "gromacs", "ffmpeg", "lammps"),
    *,
    scale: str = "bench",
    repeats: int = 3,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
    strategies: Tuple[str, ...] = STRATEGY_NAMES,
    jobs: int = 1,
) -> HeadlineResult:
    """Produce the Figs. 10-12 grid (cached: the three figures share it).

    The grid — every (application, strategy, repeat) cell — is enumerated
    declaratively and submitted to the campaign runner, so ``jobs > 1``
    spreads it over worker processes while reproducing serial results
    exactly (the cache key therefore ignores ``jobs``).
    """
    key = (tuple(app_names), scale, repeats, vm.name, seed, tuple(strategies))
    if key in _CACHE:
        return _CACHE[key]

    specs = []
    for app_name in app_names:
        for strategy in strategies:
            # Optimal is the noise-free oracle; one run suffices.  Exhaustive
            # is deterministic *given* a realisation but its pick varies
            # across realisations, so it is repeated like every tuner.
            n = 1 if strategy == "Optimal" else repeats
            specs.extend(
                repeat_specs(
                    app_name, strategy, repeats=n, scale=scale,
                    vm=vm_to_field(vm), seed=seed,
                )
            )
    report = CampaignRunner(jobs=jobs).run(specs)

    runs_by_cell: Dict[tuple, List[StrategyRun]] = {}
    for record in report.strategy_runs():
        runs_by_cell.setdefault((record.app_name, record.strategy), []).append(record)

    rows: List[HeadlineRow] = []
    for app_name in app_names:
        exhaustive_hours = (
            runs_by_cell[(app_name, "Exhaustive")][0].core_hours
            if (app_name, "Exhaustive") in runs_by_cell
            else 0.0
        )
        for strategy in strategies:
            rows.append(
                _aggregate(
                    app_name,
                    strategy,
                    runs_by_cell[(app_name, strategy)],
                    exhaustive_hours,
                )
            )
    result = HeadlineResult(rows=rows, scale=scale, repeats=repeats)
    _CACHE[key] = result
    return result


@dataclass(frozen=True)
class StabilityResult:
    """Sec. 5: how often a tuner picks the same configuration across repeats."""

    app_name: str
    strategy: str
    repeats: int
    distinct_picks: int
    modal_pick_fraction: float


def run_stability(
    app_name: str = "redis",
    *,
    strategy: str = "DarwinGame",
    scale: str = "bench",
    repeats: int = 10,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
    jobs: int = 1,
) -> StabilityResult:
    """Repeat one tuner many times; report pick agreement.

    The tuner's internal seed is held fixed across repeats while the
    environment's interference realisation and the campaign start time vary
    — the paper's "tuning repeated at different periods of time in the
    cloud" (the same tool re-run, under different noise).
    """
    specs = repeat_specs(
        app_name, strategy, repeats=repeats, scale=scale, vm=vm_to_field(vm),
        seed=seed, vary_tuner_seed=False,
    )
    runs = CampaignRunner(jobs=jobs).run(specs).strategy_runs()
    picks = Counter(r.best_index for r in runs)
    return StabilityResult(
        app_name=app_name,
        strategy=strategy,
        repeats=repeats,
        distinct_picks=len(picks),
        modal_pick_fraction=picks.most_common(1)[0][1] / repeats,
    )
