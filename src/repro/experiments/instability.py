"""Fig. 3: existing tuners are suboptimal *and* inconsistent over time.

The same tuner is run at three different times (T1, T2, T3 — different
phases of the cloud's interference realisation).  Each campaign returns a
configuration; we record the execution time of that configuration and check
(a) how far each lands from the optimal configuration's dedicated-environment
time and (b) whether the three campaigns even agree with each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps.model import ApplicationModel
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.experiments.protocol import run_strategy

#: Campaign start times: day 0, day 20, day 40 of the realisation.
DEFAULT_EPOCHS: Tuple[float, float, float] = (0.0, 20 * 86400.0, 40 * 86400.0)

#: The tuners Fig. 3 shows (plus the two reference strategies).
FIG3_STRATEGIES = ("Optimal", "Exhaustive", "BLISS", "OpenTuner", "ActiveHarmony")


@dataclass(frozen=True)
class InstabilityCell:
    """One tuner at one campaign epoch."""

    strategy: str
    epoch_label: str
    mean_time: float
    best_index: int


@dataclass(frozen=True)
class InstabilityResult:
    app_name: str
    cells: List[InstabilityCell]
    #: strategy -> number of distinct configurations chosen across epochs
    distinct_choices: Dict[str, int]
    optimal_time: float

    def times_of(self, strategy: str) -> List[float]:
        return [c.mean_time for c in self.cells if c.strategy == strategy]


def run_fig3(
    app: ApplicationModel,
    *,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
    epochs: Tuple[float, ...] = DEFAULT_EPOCHS,
    strategies: Tuple[str, ...] = FIG3_STRATEGIES,
) -> InstabilityResult:
    """Run every strategy once per epoch and collect the Fig. 3 grid."""
    cells: List[InstabilityCell] = []
    choices: Dict[str, set] = {s: set() for s in strategies}
    for e_num, start in enumerate(epochs, start=1):
        for strategy in strategies:
            run = run_strategy(
                app, strategy, vm=vm, seed=seed + e_num, start_time=start
            )
            cells.append(
                InstabilityCell(
                    strategy=strategy,
                    epoch_label=f"T{e_num}",
                    mean_time=run.mean_time,
                    best_index=run.best_index,
                )
            )
            choices[strategy].add(run.best_index)
    return InstabilityResult(
        app_name=app.name,
        cells=cells,
        distinct_choices={s: len(v) for s, v in choices.items()},
        optimal_time=app.optimal.true_time,
    )
