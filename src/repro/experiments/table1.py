"""Table 1: tunable parameters and search-space sizes per application.

Also home of :func:`table1_grid` — the canonical campaign grid over the
Table 1 applications that ``python -m repro sweep`` runs by default and the
campaign subsystem's acceptance tests execute at test scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.apps.registry import APPLICATION_NAMES, make_application
from repro.campaigns.runner import parallel_map
from repro.campaigns.spec import CampaignGrid, Scale

#: The sizes Table 1 reports (paper rounds to 0.1 million).
PAPER_SIZES = {
    "redis": 7.8e6,
    "gromacs": 3.8e6,
    "ffmpeg": 6.1e6,
    "lammps": 4.4e6,
}


@dataclass(frozen=True)
class Table1Row:
    app_name: str
    app_parameters: Tuple[str, ...]
    system_parameters: Tuple[str, ...]
    space_size: int
    paper_size: float

    @property
    def size_ratio(self) -> float:
        """Measured / paper size (1.0 = exact match)."""
        return self.space_size / self.paper_size


def _build_row(name: str) -> Table1Row:
    app = make_application(name, scale="full")
    app_params = tuple(
        p.name for p in app.space.parameters if p.kind == "app"
    )
    sys_params = tuple(
        p.name for p in app.space.parameters if p.kind == "system"
    )
    return Table1Row(
        app_name=name,
        app_parameters=app_params,
        system_parameters=sys_params,
        space_size=app.space.size,
        paper_size=PAPER_SIZES[name],
    )


def run_table1(*, jobs: int = 1) -> List[Table1Row]:
    """Build every application at full scale and report its Table 1 row.

    The per-application grid goes through the campaign subsystem's worker
    map, so ``jobs > 1`` constructs the paper-sized spaces in parallel.
    """
    return parallel_map(_build_row, APPLICATION_NAMES, jobs=jobs)


def table1_grid(
    *,
    scale: Scale = "test",
    strategies: Tuple[str, ...] = ("DarwinGame",),
    vms: Tuple[str, ...] = ("m5.8xlarge",),
    seeds: Tuple[int, ...] = (0,),
    eval_runs: int = 100,
) -> CampaignGrid:
    """The Table 1 fleet: every evaluated application, one cell per seed.

    At ``scale="test"`` this is the campaign runner's acceptance workload —
    small enough for CI, wide enough to exercise every application surface.
    """
    return CampaignGrid(
        apps=APPLICATION_NAMES,
        strategies=strategies,
        vms=vms,
        seeds=seeds,
        scale=scale,
        eval_runs=eval_runs,
    )
