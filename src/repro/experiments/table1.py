"""Table 1: tunable parameters and search-space sizes per application."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.apps.registry import APPLICATION_NAMES, make_application

#: The sizes Table 1 reports (paper rounds to 0.1 million).
PAPER_SIZES = {
    "redis": 7.8e6,
    "gromacs": 3.8e6,
    "ffmpeg": 6.1e6,
    "lammps": 4.4e6,
}


@dataclass(frozen=True)
class Table1Row:
    app_name: str
    app_parameters: Tuple[str, ...]
    system_parameters: Tuple[str, ...]
    space_size: int
    paper_size: float

    @property
    def size_ratio(self) -> float:
        """Measured / paper size (1.0 = exact match)."""
        return self.space_size / self.paper_size


def run_table1() -> List[Table1Row]:
    """Build every application at full scale and report its Table 1 row."""
    rows: List[Table1Row] = []
    for name in APPLICATION_NAMES:
        app = make_application(name, scale="full")
        app_params = tuple(
            p.name for p in app.space.parameters if p.kind == "app"
        )
        sys_params = tuple(
            p.name for p in app.space.parameters if p.kind == "system"
        )
        rows.append(
            Table1Row(
                app_name=name,
                app_parameters=app_params,
                system_parameters=sys_params,
                space_size=app.space.size,
                paper_size=PAPER_SIZES[name],
            )
        )
    return rows
