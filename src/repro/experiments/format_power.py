"""Predictive power of tournament formats under noise (Sec. 3's rationale).

The paper motivates each phase's playing style with properties from the
tournament-design literature (its refs. [26, 32, 35, 47, 64]): Swiss
surfaces the strongest of a large pool cheaply, double elimination protects
good players from "one bad day", and knockouts are cheap but fragile.  This
study reproduces the standard analysis of that literature — the
*predictive power* of a format is the probability that its winner is the
ground-truth strongest player, measured under increasing observation noise.

Every trial drives the *same* :mod:`repro.formats` scheduler state machines
the real DarwinGame tuner plays (there is no separate study-only
implementation), just through a noisy-strength match oracle instead of the
batched cloud executor — so what this study measures is exactly the
scheduling behaviour the tuner ships with.  It is the quantitative backing
for DarwinGame's phase choices: the bench asserts the orderings the paper's
design relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.campaigns.runner import parallel_map
from repro.errors import ReproError
from repro.formats.double_elimination import DoubleElimination
from repro.formats.match import NoisyStrengthOracle
from repro.formats.round_robin import RoundRobin
from repro.formats.single_elimination import SingleElimination
from repro.formats.swiss import SwissSystem
from repro.rng import SeedLike, ensure_rng

FORMAT_NAMES = ("SingleElim", "DoubleElim", "Swiss", "RoundRobin")


@dataclass(frozen=True)
class FormatPowerRow:
    """Predictive power of one format at one noise level."""

    format_name: str
    noise_std: float
    predictive_power: float   # P(winner is the true strongest player)
    top2_power: float         # P(winner is among the true top two)
    mean_games: float
    trials: int


@dataclass(frozen=True)
class FormatPowerResult:
    """The full format x noise grid."""

    rows: List[FormatPowerRow]
    n_players: int
    trials: int

    def row(self, format_name: str, noise_std: float) -> FormatPowerRow:
        for r in self.rows:
            if r.format_name == format_name and abs(r.noise_std - noise_std) < 1e-12:
                return r
        raise KeyError((format_name, noise_std))

    def noise_levels(self) -> List[float]:
        return sorted({r.noise_std for r in self.rows})


def _run_format(name: str, players: Sequence[int], oracle: NoisyStrengthOracle) -> int:
    if name == "SingleElim":
        return SingleElimination().run(players, oracle).winner
    if name == "DoubleElim":
        return DoubleElimination().run(players, oracle).winner
    if name == "Swiss":
        return SwissSystem().run(players, oracle).winner
    if name == "RoundRobin":
        return RoundRobin().run(players, oracle).winner
    raise ReproError(f"unknown format {name!r}; available: {FORMAT_NAMES}")


def _run_trial_chunk(args: tuple) -> Dict[tuple, Tuple[int, int, int]]:
    """Accumulate (hits, top2-hits, games) per (format, noise) over trials.

    One worker's share of the Monte-Carlo grid.  Every trial is seeded
    independently, so any partition of the trial list over any number of
    workers sums to the same counts — parallelism cannot change results.
    """
    trial_seeds, n_players, noise_levels, formats, strength_spread = args
    counts: Dict[tuple, Tuple[int, int, int]] = {
        (fmt, noise): (0, 0, 0) for fmt in formats for noise in noise_levels
    }
    for trial_seed in trial_seeds:
        rng = np.random.default_rng(trial_seed)
        strengths = rng.uniform(0.0, strength_spread, size=n_players)
        entry_order = rng.permutation(n_players)
        best = int(np.argmax(strengths))
        second = int(np.argsort(-strengths)[1])
        for noise in noise_levels:
            for fmt in formats:
                oracle = NoisyStrengthOracle(
                    strengths, noise, seed=rng.integers(0, 2**31)
                )
                winner = _run_format(fmt, entry_order, oracle)
                key = (fmt, noise)
                hit, t2, games = counts[key]
                counts[key] = (
                    hit + (winner == best),
                    t2 + (winner in (best, second)),
                    games + oracle.games_played,
                )
    return counts


def run_format_power(
    *,
    n_players: int = 16,
    noise_levels: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0),
    trials: int = 200,
    strength_spread: float = 1.0,
    seed: SeedLike = 0,
    formats: Tuple[str, ...] = FORMAT_NAMES,
    jobs: int = 1,
) -> FormatPowerResult:
    """Monte-Carlo the format x noise grid.

    Per trial, player strengths are drawn uniformly over
    ``[0, strength_spread]`` with the entry order shuffled (formats must not
    benefit from accidental seeding); every format replays the *same* field
    at the same noise level with its own oracle noise stream.

    Trials are independently seeded up front and submitted to the campaign
    subsystem's worker map in chunks, so ``jobs > 1`` splits the grid
    across processes without changing a single count.
    """
    if n_players < 2:
        raise ReproError(f"need at least two players, got {n_players}")
    if trials < 1:
        raise ReproError(f"trials must be >= 1, got {trials}")
    master = ensure_rng(seed)
    trial_seeds = [int(s) for s in master.integers(0, 2**31, size=trials)]

    n_chunks = max(1, min(jobs, trials))
    chunks = [
        (list(part), n_players, tuple(noise_levels), tuple(formats),
         strength_spread)
        for part in np.array_split(trial_seeds, n_chunks)
    ]
    merged: Dict[tuple, Tuple[int, int, int]] = {
        (fmt, noise): (0, 0, 0) for fmt in formats for noise in noise_levels
    }
    for counts in parallel_map(_run_trial_chunk, chunks, jobs=jobs):
        for key, (hit, t2, games) in counts.items():
            old = merged[key]
            merged[key] = (old[0] + hit, old[1] + t2, old[2] + games)

    rows = [
        FormatPowerRow(
            format_name=fmt,
            noise_std=noise,
            predictive_power=merged[(fmt, noise)][0] / trials,
            top2_power=merged[(fmt, noise)][1] / trials,
            mean_games=merged[(fmt, noise)][2] / trials,
            trials=trials,
        )
        for fmt in formats
        for noise in noise_levels
    ]
    return FormatPowerResult(rows=rows, n_players=n_players, trials=trials)
