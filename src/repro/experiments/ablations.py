"""Fig. 16: how each element of the tournament design contributes.

Every ablation flips one :class:`DarwinGameConfig` flag and re-runs the full
tournament; we report the percentage increase — relative to full DarwinGame —
in (a) the chosen configuration's execution time, (b) its CoV across cloud
executions, and (c) tuning core-hours.  Positive numbers mean the ablated
variant is worse, i.e. the design element earns its keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.registry import make_application
from repro.cloud.environment import CloudEnvironment
from repro.cloud.vm import DEFAULT_VM, VMSpec
from repro.core.config import ABLATION_NAMES, DarwinGameConfig
from repro.core.tournament import DarwinGame


@dataclass(frozen=True)
class AblationRow:
    app_name: str
    ablation: str
    time_increase_percent: float
    cov_increase_percent: float
    core_hours_increase_percent: float


@dataclass(frozen=True)
class AblationResult:
    rows: List[AblationRow]

    def row(self, app_name: str, ablation: str) -> AblationRow:
        for r in self.rows:
            if r.app_name == app_name and r.ablation == ablation:
                return r
        raise KeyError((app_name, ablation))


def _run_variant(
    app, vm: VMSpec, config: DarwinGameConfig, seed: int, repeats: int
) -> Tuple[float, float, float]:
    """Mean (exec time, CoV, core-hours) of a DarwinGame variant."""
    times, covs, hours = [], [], []
    rng = np.random.default_rng(seed)
    for k in range(repeats):
        run_seed = int(rng.integers(0, 2**31))
        env = CloudEnvironment(vm, seed=run_seed, start_time=k * 86400.0 * 3.0)
        import dataclasses

        result = DarwinGame(dataclasses.replace(config, seed=run_seed)).tune(app, env)
        evaluation = env.measure_choice(app, result.best_index)
        times.append(evaluation.mean_time)
        covs.append(evaluation.cov_percent)
        hours.append(result.core_hours)
    return float(np.mean(times)), float(np.mean(covs)), float(np.mean(hours))


def run_ablations(
    app_names: Tuple[str, ...] = ("redis", "gromacs", "ffmpeg", "lammps"),
    *,
    scale: str = "bench",
    repeats: int = 1,
    vm: VMSpec = DEFAULT_VM,
    seed: int = 0,
    ablations: Tuple[str, ...] = ABLATION_NAMES,
) -> AblationResult:
    """Produce the Fig. 16 grid."""
    rows: List[AblationRow] = []
    base_config = DarwinGameConfig()
    for app_name in app_names:
        app = make_application(app_name, scale=scale)
        full = _run_variant(app, vm, base_config, seed, repeats)
        for name in ablations:
            variant = _run_variant(
                app, vm, base_config.with_ablation(name), seed, repeats
            )
            rows.append(
                AblationRow(
                    app_name=app_name,
                    ablation=name,
                    time_increase_percent=100.0 * (variant[0] - full[0]) / full[0],
                    cov_increase_percent=100.0 * (variant[1] - full[1]) / max(full[1], 1e-9),
                    core_hours_increase_percent=100.0 * (variant[2] - full[2]) / full[2],
                )
            )
    return AblationResult(rows=rows)
