"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` from bad call signatures, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpaceError(ReproError):
    """A search-space definition or index operation is invalid."""


class IndexOutOfSpaceError(SpaceError):
    """A configuration index falls outside ``[0, space.size)``."""

    def __init__(self, index: int, size: int) -> None:
        super().__init__(f"index {index} outside search space of size {size}")
        self.index = index
        self.size = size


class CloudError(ReproError):
    """The cloud simulator was asked to do something impossible."""


class TournamentError(ReproError):
    """The tournament was configured or driven inconsistently."""


class TunerError(ReproError):
    """A tuner was configured or driven inconsistently."""


class CalibrationError(ReproError):
    """An application model failed to meet its calibration targets."""


class CampaignError(ReproError):
    """A campaign fleet could not be dispatched or executed as asked."""


class CampaignTimeout(CampaignError):
    """A leased campaign outlived its task timeout (presumed hung)."""


class WorkerLost(CampaignError):
    """A worker process died (hard kill, OOM, interpreter crash) mid-lease."""


class RetryExhausted(CampaignError):
    """A campaign failed on every attempt of its retry budget (quarantined)."""


class FaultInjected(ReproError):
    """An injected chaos fault fired (see :mod:`repro.faults`)."""
