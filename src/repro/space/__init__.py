"""Search-space substrate: parameters, index codec, regions, subspaces."""

from repro.space.constraints import (
    Constraint,
    requires,
    sample_valid,
    valid_fraction,
    valid_mask,
)
from repro.space.parameters import (
    Parameter,
    boolean,
    categorical,
    integer_range,
    value_grid,
)
from repro.space.regions import Region, partition_regions, region_of
from repro.space.space import SearchSpace, log_size
from repro.space.subspaces import Subspace, split_subspaces, subspace_of

__all__ = [
    "Constraint",
    "Parameter",
    "Region",
    "SearchSpace",
    "Subspace",
    "boolean",
    "categorical",
    "integer_range",
    "log_size",
    "partition_regions",
    "requires",
    "sample_valid",
    "region_of",
    "split_subspaces",
    "subspace_of",
    "valid_fraction",
    "valid_mask",
    "value_grid",
]
