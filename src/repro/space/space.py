"""Search spaces as lazy mixed-radix codecs.

The paper maps every point of an n-dimensional space to a one-dimensional
index (Sec. 3.3).  We implement exactly that: a :class:`SearchSpace` never
materialises its configurations; it converts between integer indices and
per-parameter *levels* with mixed-radix arithmetic, so the full 7.8-million
point Redis space costs a few hundred bytes.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import IndexOutOfSpaceError, SpaceError
from repro.rng import SeedLike, ensure_rng
from repro.space.parameters import Parameter
from repro.types import ConfigValues


class SearchSpace:
    """The cross product of a sequence of :class:`Parameter` value sets.

    Indexing convention: the *last* parameter is the fastest-varying digit,
    i.e. ``index = ((l0 * a1 + l1) * a2 + l2) ...`` for levels ``l_j`` and
    cardinalities ``a_j``.  Contiguous index ranges therefore correspond to
    fixing the leading parameters — which is what both region partitioning
    (Sec. 3.3) and subspace integration (Sec. 3.6) rely on.
    """

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        if len(parameters) == 0:
            raise SpaceError("a search space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate parameter names in {names}")
        self._parameters: Tuple[Parameter, ...] = tuple(parameters)
        self._cards = np.array([p.cardinality for p in parameters], dtype=np.int64)
        # Mixed-radix place values: strides[j] = product of cardinalities of
        # all parameters after j.
        strides = np.ones(len(parameters), dtype=np.int64)
        for j in range(len(parameters) - 2, -1, -1):
            strides[j] = strides[j + 1] * self._cards[j + 1]
        self._strides = strides
        self._size = int(self._cards[0] * strides[0])

    # -- introspection -----------------------------------------------------

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        return self._parameters

    @property
    def dimension(self) -> int:
        """Number of tunable parameters."""
        return len(self._parameters)

    @property
    def size(self) -> int:
        """Number of points in the space (product of cardinalities)."""
        return self._size

    @property
    def cardinalities(self) -> np.ndarray:
        """Per-parameter level counts (read-only copy)."""
        return self._cards.copy()

    def parameter(self, name: str) -> Parameter:
        """Look up a parameter by name."""
        for p in self._parameters:
            if p.name == name:
                return p
        raise SpaceError(f"no parameter named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SearchSpace(dimension={self.dimension}, size={self.size})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SearchSpace):
            return NotImplemented
        return self._parameters == other._parameters

    def __hash__(self) -> int:
        return hash(self._parameters)

    # -- codec ---------------------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise IndexOutOfSpaceError(int(index), self._size)

    def levels_of(self, index: int) -> Tuple[int, ...]:
        """Decode ``index`` to a tuple of per-parameter levels."""
        self._check_index(index)
        out: List[int] = []
        remaining = int(index)
        for stride in self._strides:
            digit, remaining = divmod(remaining, int(stride))
            out.append(digit)
        return tuple(out)

    def index_of_levels(self, levels: Sequence[int]) -> int:
        """Encode per-parameter levels to an index."""
        if len(levels) != self.dimension:
            raise SpaceError(
                f"expected {self.dimension} levels, got {len(levels)}"
            )
        index = 0
        for level, card, stride in zip(levels, self._cards, self._strides):
            if not 0 <= level < card:
                raise SpaceError(f"level {level} out of range [0, {card})")
            index += int(level) * int(stride)
        return index

    def values_of(self, index: int) -> ConfigValues:
        """Decode ``index`` to the concrete parameter values."""
        return tuple(
            p.value_of(level)
            for p, level in zip(self._parameters, self.levels_of(index))
        )

    def index_of_values(self, values: Sequence[Any]) -> int:
        """Encode concrete parameter values to an index."""
        if len(values) != self.dimension:
            raise SpaceError(
                f"expected {self.dimension} values, got {len(values)}"
            )
        levels = [p.level_of(v) for p, v in zip(self._parameters, values)]
        return self.index_of_levels(levels)

    def config_dict(self, index: int) -> Dict[str, Any]:
        """Decode ``index`` to a ``{parameter name: value}`` mapping."""
        return {
            p.name: v for p, v in zip(self._parameters, self.values_of(index))
        }

    # -- vectorised codec ----------------------------------------------------

    def levels_matrix(self, indices: np.ndarray) -> np.ndarray:
        """Decode an array of indices to an ``(n, dimension)`` level matrix.

        This is the hot path for application-surface evaluation; it is pure
        numpy integer arithmetic.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self._size):
            bad = int(idx.min()) if idx.min() < 0 else int(idx.max())
            raise IndexOutOfSpaceError(bad, self._size)
        return (idx[..., None] // self._strides) % self._cards

    def indices_of_levels_matrix(self, levels: np.ndarray) -> np.ndarray:
        """Encode an ``(n, dimension)`` level matrix back to indices."""
        lv = np.asarray(levels, dtype=np.int64)
        if lv.shape[-1] != self.dimension:
            raise SpaceError(
                f"level matrix has {lv.shape[-1]} columns, expected {self.dimension}"
            )
        if lv.size and (np.any(lv < 0) or np.any(lv >= self._cards)):
            raise SpaceError("level out of range in level matrix")
        return (lv * self._strides).sum(axis=-1)

    # -- sampling --------------------------------------------------------

    def sample_indices(
        self, n: int, seed: SeedLike = None, *, replace: bool = True
    ) -> np.ndarray:
        """Draw ``n`` configuration indices uniformly at random.

        With ``replace=False`` and ``n`` close to ``size`` this falls back to
        a permutation, which requires the space to fit in memory; callers
        sampling without replacement from huge spaces should keep ``n`` small
        (rejection sampling is used when ``n << size``).
        """
        if n < 0:
            raise SpaceError(f"cannot sample {n} indices")
        rng = ensure_rng(seed)
        if replace:
            return rng.integers(0, self._size, size=n, dtype=np.int64)
        if n > self._size:
            raise SpaceError(
                f"cannot sample {n} distinct indices from a space of {self._size}"
            )
        if n > self._size // 2:
            return rng.permutation(self._size)[:n].astype(np.int64)
        seen: set = set()
        out = np.empty(n, dtype=np.int64)
        filled = 0
        while filled < n:
            batch = rng.integers(0, self._size, size=max(16, (n - filled) * 2))
            for v in batch:
                iv = int(v)
                if iv not in seen:
                    seen.add(iv)
                    out[filled] = iv
                    filled += 1
                    if filled == n:
                        break
        return out

    def neighbors(self, index: int, seed: SeedLike = None, *, radius: int = 1) -> np.ndarray:
        """Return indices reachable by perturbing one parameter by ``<= radius`` levels.

        Used by local-search baselines (pattern search, greedy mutation).
        """
        levels = np.array(self.levels_of(index), dtype=np.int64)
        out: List[int] = []
        for j in range(self.dimension):
            for delta in range(-radius, radius + 1):
                if delta == 0:
                    continue
                new = int(levels[j]) + delta
                if 0 <= new < int(self._cards[j]):
                    moved = levels.copy()
                    moved[j] = new
                    out.append(int(self.indices_of_levels_matrix(moved[None, :])[0]))
        arr = np.array(sorted(set(out)), dtype=np.int64)
        if seed is not None:
            ensure_rng(seed).shuffle(arr)
        return arr

    # -- derived spaces ----------------------------------------------------

    def truncated(self, max_levels: int) -> "SearchSpace":
        """Scale the space down by truncating every parameter to ``max_levels``."""
        return SearchSpace([p.truncated(max_levels) for p in self._parameters])

    def iter_chunks(self, chunk: int = 1 << 18) -> Iterable[np.ndarray]:
        """Yield all indices of the space in contiguous chunks (for scans)."""
        if chunk <= 0:
            raise SpaceError(f"chunk must be positive, got {chunk}")
        for start in range(0, self._size, chunk):
            stop = min(start + chunk, self._size)
            yield np.arange(start, stop, dtype=np.int64)


def log_size(space: SearchSpace) -> float:
    """Natural log of the space size (safe for astronomically large spaces)."""
    return float(sum(math.log(p.cardinality) for p in space.parameters))
