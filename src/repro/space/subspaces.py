"""Subspace views for integrating DarwinGame with existing tuners (Sec. 3.6).

The integration divides the full search space into subspaces; the *outer*
tuner treats each subspace as a single tuning configuration, while DarwinGame
plays a full tournament inside every subspace the outer tuner visits.  A
:class:`Subspace` is a contiguous index block that behaves like a miniature
search space: DarwinGame partitions it into regions and runs unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import SpaceError
from repro.rng import SeedLike, ensure_rng
from repro.space.space import SearchSpace


@dataclass(frozen=True)
class Subspace:
    """A contiguous block ``[start, stop)`` of the full space's index range."""

    subspace_id: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise SpaceError(
                f"subspace {self.subspace_id} is empty: [{self.start}, {self.stop})"
            )

    @property
    def size(self) -> int:
        return self.stop - self.start

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.stop

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        rng = ensure_rng(seed)
        return rng.integers(self.start, self.stop, size=n, dtype=np.int64)


def split_subspaces(space: SearchSpace, n_subspaces: int) -> List[Subspace]:
    """Split ``space`` into ``n_subspaces`` near-equal contiguous blocks.

    Because the index codec puts the leading parameters in the high-order
    digits, contiguous blocks correspond to fixing (ranges of) the leading
    parameters — the "subspace" notion of Fig. 9.
    """
    if n_subspaces <= 0:
        raise SpaceError(f"n_subspaces must be positive, got {n_subspaces}")
    n_subspaces = min(n_subspaces, space.size)
    base, extra = divmod(space.size, n_subspaces)
    out: List[Subspace] = []
    start = 0
    for sid in range(n_subspaces):
        size = base + (1 if sid < extra else 0)
        out.append(Subspace(sid, start, start + size))
        start += size
    return out


def subspace_of(subspaces: List[Subspace], index: int) -> Subspace:
    """Return the subspace containing ``index`` (subspaces must be sorted)."""
    lo, hi = 0, len(subspaces) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        sub = subspaces[mid]
        if index < sub.start:
            hi = mid - 1
        elif index >= sub.stop:
            lo = mid + 1
        else:
            return sub
    raise SpaceError(f"index {index} not covered by the given subspaces")
