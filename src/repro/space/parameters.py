"""Tunable-parameter definitions.

A :class:`Parameter` is an ordered, finite set of candidate values for one
application- or systems-level knob (Table 1 of the paper).  Continuous knobs
are represented by explicit grids, matching how the paper's artifact samples
them; the tournament only ever needs level *indices*, the concrete values are
for humans and for applying configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence, Tuple

import numpy as np

from repro.errors import SpaceError


@dataclass(frozen=True)
class Parameter:
    """One tunable knob with a finite, ordered list of candidate values.

    Attributes:
        name: knob name as it appears in the application's configuration
            surface (e.g. ``"tcp-backlog"`` or ``"vm.swappiness"``).
        values: candidate values in a fixed order; the position of a value is
            its *level*.
        kind: free-form tag (``"app"`` or ``"system"``) used only for
            reporting which side of Table 1 the knob came from.
    """

    name: str
    values: Tuple[Any, ...]
    kind: str = "app"

    def __post_init__(self) -> None:
        if not self.name:
            raise SpaceError("parameter name must be non-empty")
        if len(self.values) == 0:
            raise SpaceError(f"parameter {self.name!r} has no candidate values")
        if len(set(map(repr, self.values))) != len(self.values):
            raise SpaceError(f"parameter {self.name!r} has duplicate values")

    @property
    def cardinality(self) -> int:
        """Number of candidate values (levels)."""
        return len(self.values)

    def level_of(self, value: Any) -> int:
        """Return the level of ``value``; raise :class:`SpaceError` if absent."""
        try:
            return self.values.index(value)
        except ValueError:
            raise SpaceError(
                f"{value!r} is not a candidate value of parameter {self.name!r}"
            ) from None

    def value_of(self, level: int) -> Any:
        """Return the value at ``level``; raise :class:`SpaceError` if out of range."""
        if not 0 <= level < len(self.values):
            raise SpaceError(
                f"level {level} out of range for parameter {self.name!r} "
                f"with {len(self.values)} values"
            )
        return self.values[level]

    def truncated(self, max_levels: int) -> "Parameter":
        """Return a copy keeping at most ``max_levels`` evenly spread values.

        Used to build scaled-down spaces for tests and benchmarks while
        preserving each knob's value range (first and last values are kept).
        """
        if max_levels < 1:
            raise SpaceError(f"max_levels must be >= 1, got {max_levels}")
        if max_levels >= self.cardinality:
            return self
        if max_levels == 1:
            keep = [0]
        else:
            positions = np.linspace(0, self.cardinality - 1, max_levels)
            keep = sorted(set(int(round(p)) for p in positions))
        return Parameter(self.name, tuple(self.values[i] for i in keep), self.kind)


def categorical(name: str, values: Iterable[Any], *, kind: str = "app") -> Parameter:
    """A knob taking one of an explicit list of values."""
    return Parameter(name, tuple(values), kind)


def boolean(name: str, *, kind: str = "app") -> Parameter:
    """An on/off knob (``False``/``True``)."""
    return Parameter(name, (False, True), kind)


def integer_range(
    name: str, low: int, high: int, *, step: int = 1, kind: str = "app"
) -> Parameter:
    """An integer knob over ``low..high`` inclusive with the given step."""
    if step <= 0:
        raise SpaceError(f"step must be positive, got {step}")
    if high < low:
        raise SpaceError(f"empty integer range [{low}, {high}] for {name!r}")
    return Parameter(name, tuple(range(low, high + 1, step)), kind)


def value_grid(
    name: str, low: float, high: float, count: int, *, kind: str = "app"
) -> Parameter:
    """A continuous knob discretised to ``count`` evenly spaced grid points."""
    if count < 1:
        raise SpaceError(f"grid needs at least one point, got {count}")
    if count == 1:
        points: Sequence[float] = (float(low),)
    else:
        points = tuple(round(float(v), 10) for v in np.linspace(low, high, count))
    return Parameter(name, tuple(points), kind)
