"""Configuration-validity constraints over a search space.

Real tuning spaces carry dependencies the cross-product ignores: Redis's
``appendfsync`` policy only matters when ``appendonly`` is on; a
vectorisation-cost flag is meaningless without vectorisation.  This module
adds constraint support without touching the index codec:

* a :class:`Constraint` is a named, vectorised predicate over level
  matrices;
* :func:`valid_mask` evaluates a set of constraints over configuration
  indices;
* :func:`sample_valid` draws uniformly from the valid subset by rejection;
* :func:`repro.apps.constrained.penalised_application` (in the apps layer)
  derives an application whose invalid configurations run at a penalty
  time above the surface's worst — the standard "death penalty"
  encoding, which every tuner then avoids organically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.errors import SpaceError
from repro.rng import SeedLike, ensure_rng
from repro.space.space import SearchSpace

#: A vectorised predicate: (n, dimension) level matrix -> (n,) bool mask.
LevelPredicate = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class Constraint:
    """One named validity rule over parameter levels."""

    name: str
    predicate: LevelPredicate

    def holds(self, space: SearchSpace, indices) -> np.ndarray:
        """Evaluate the rule on configuration indices (vectorised)."""
        idx = np.asarray(indices, dtype=np.int64)
        mask = np.asarray(self.predicate(space.levels_matrix(idx)), dtype=bool)
        if mask.shape != idx.shape:
            raise SpaceError(
                f"constraint {self.name!r} returned shape {mask.shape} "
                f"for {idx.shape} indices"
            )
        return mask


def requires(
    space: SearchSpace, if_param: str, if_level: int, then_param: str,
    then_levels: Sequence[int],
) -> Constraint:
    """Convenience rule: when ``if_param`` is at ``if_level``, ``then_param``
    must be at one of ``then_levels`` (other ``if_param`` levels are free)."""
    if_dim = space.parameters.index(space.parameter(if_param))
    then_dim = space.parameters.index(space.parameter(then_param))
    allowed = np.zeros(space.parameter(then_param).cardinality, dtype=bool)
    for level in then_levels:
        allowed[level] = True

    def predicate(levels: np.ndarray) -> np.ndarray:
        triggered = levels[:, if_dim] == if_level
        return ~triggered | allowed[levels[:, then_dim]]

    return Constraint(
        name=f"{if_param}={if_level} -> {then_param} in {list(then_levels)}",
        predicate=predicate,
    )


def valid_mask(
    space: SearchSpace, constraints: Sequence[Constraint], indices
) -> np.ndarray:
    """True where every constraint holds."""
    idx = np.asarray(indices, dtype=np.int64)
    mask = np.ones(idx.shape, dtype=bool)
    for constraint in constraints:
        mask &= constraint.holds(space, idx)
    return mask


def valid_fraction(
    space: SearchSpace,
    constraints: Sequence[Constraint],
    *,
    n: int = 4000,
    seed: SeedLike = 0,
) -> float:
    """Estimated fraction of the space satisfying all constraints."""
    indices = space.sample_indices(min(n, space.size), ensure_rng(seed))
    return float(valid_mask(space, constraints, indices).mean())


def sample_valid(
    space: SearchSpace,
    constraints: Sequence[Constraint],
    n: int,
    seed: SeedLike = None,
    *,
    max_attempts: int = 200,
) -> np.ndarray:
    """Draw ``n`` valid configuration indices by rejection sampling.

    Raises if the valid region is too sparse to hit within
    ``max_attempts`` batches (guard against contradictory constraints).
    """
    if n < 0:
        raise SpaceError(f"cannot sample {n} indices")
    rng = ensure_rng(seed)
    out: List[int] = []
    for _ in range(max_attempts):
        batch = space.sample_indices(max(2 * n, 64), rng)
        good = batch[valid_mask(space, constraints, batch)]
        out.extend(int(i) for i in good)
        if len(out) >= n:
            return np.asarray(out[:n], dtype=np.int64)
    raise SpaceError(
        f"could not draw {n} valid configurations in {max_attempts} batches; "
        "are the constraints satisfiable?"
    )
