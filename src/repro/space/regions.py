"""Region partitioning for the regional phase (Sec. 3.3).

The paper maps all points of the n-dimensional space to a one-dimensional
index and splits that index range into ``n_r`` regions of (near-)equal size.
A :class:`Region` is an arithmetic progression of indices — ``start``,
``start + stride``, ... below ``stop`` — which covers both partitioning
styles without ever materialising members:

* **interleaved** (default): region ``r`` of ``n`` holds every ``n``-th
  index starting at ``r``.  Because the index codec makes the *last*
  parameter the fastest-varying digit, an interleaved region spans the whole
  lattice and its members are diverse — games inside a region then compare
  genuinely different configurations, which is what lets early termination
  fire and strong champions emerge.
* **contiguous**: region ``r`` is a consecutive index block.  Contiguous
  blocks fix the leading (major) parameter digits, so a region's members are
  near-clones of each other; kept as an ablation
  (``DarwinGameConfig(interleaved_regions=False)``) and for the Sec. 3.6
  subspace integration, whose subspaces must be contiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.errors import SpaceError
from repro.rng import SeedLike, ensure_rng
from repro.space.space import SearchSpace


@dataclass(frozen=True)
class Region:
    """Indices ``start, start + stride, ...`` strictly below ``stop``."""

    region_id: int
    start: int
    stop: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise SpaceError(
                f"region {self.region_id} stride must be >= 1, got {self.stride}"
            )
        if self.stop <= self.start:
            raise SpaceError(
                f"region {self.region_id} is empty: [{self.start}, {self.stop})"
            )

    @property
    def size(self) -> int:
        return (self.stop - self.start + self.stride - 1) // self.stride

    def __contains__(self, index: int) -> bool:
        return (
            self.start <= index < self.stop
            and (index - self.start) % self.stride == 0
        )

    def indices(self) -> np.ndarray:
        """All member indices — only safe for small regions."""
        return np.arange(self.start, self.stop, self.stride, dtype=np.int64)

    def sample(self, n: int, seed: SeedLike = None, *, replace: bool = True) -> np.ndarray:
        """Draw ``n`` member indices uniformly at random."""
        rng = ensure_rng(seed)
        if replace:
            offsets = rng.integers(0, self.size, size=n, dtype=np.int64)
        else:
            if n > self.size:
                raise SpaceError(
                    f"cannot draw {n} distinct indices from region of size {self.size}"
                )
            offsets = rng.choice(self.size, size=n, replace=False).astype(np.int64)
        return self.start + offsets * self.stride


def partition_regions(
    space: SearchSpace, n_regions: int, *, interleaved: bool = True
) -> List[Region]:
    """Split ``space`` into ``n_regions`` near-equal regions.

    Sizes differ by at most one point.  If the space is smaller than the
    requested region count, one single-point region per configuration is
    returned (the tournament then degenerates gracefully).
    """
    return partition_range(0, space.size, n_regions, interleaved=interleaved)


def partition_range(
    start: int, stop: int, n_regions: int, *, interleaved: bool = True
) -> List[Region]:
    """Split the index range ``[start, stop)`` into near-equal regions."""
    if n_regions <= 0:
        raise SpaceError(f"n_regions must be positive, got {n_regions}")
    if stop <= start:
        raise SpaceError(f"cannot partition empty range [{start}, {stop})")
    span = stop - start
    n_regions = min(n_regions, span)
    if interleaved:
        return [
            Region(rid, start + rid, stop, stride=n_regions)
            for rid in range(n_regions)
        ]
    base, extra = divmod(span, n_regions)
    regions: List[Region] = []
    cursor = start
    for rid in range(n_regions):
        size = base + (1 if rid < extra else 0)
        regions.append(Region(rid, cursor, cursor + size))
        cursor += size
    return regions


def region_of(regions: List[Region], index: int) -> Region:
    """Return the region containing ``index``.

    Uses arithmetic lookup for the two partition layouts produced by
    :func:`partition_range`, with a linear scan as the general fallback.
    """
    if not regions:
        raise SpaceError("no regions given")
    first = regions[0]
    if first.stride == len(regions):  # interleaved layout
        rid = (index - first.start) % first.stride
        if 0 <= rid < len(regions) and index in regions[rid]:
            return regions[rid]
    elif first.stride == 1:  # contiguous layout: binary search
        lo, hi = 0, len(regions) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            region = regions[mid]
            if index < region.start:
                hi = mid - 1
            elif index >= region.stop:
                lo = mid + 1
            else:
                return region
    for region in regions:
        if index in region:
            return region
    raise SpaceError(f"index {index} not covered by the given regions")


def iter_region_ids(regions: List[Region]) -> Iterator[int]:
    """Yield the ids of ``regions`` in order (convenience for reports)."""
    for region in regions:
        yield region.region_id
