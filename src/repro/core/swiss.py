"""Phase I: the regional phase, played in Swiss style (Sec. 3.3, Fig. 6).

Within each region, rounds of multi-player games are played.  Round one picks
players at random; every later round fills half its seats with players that
have never played (new players) and half with previously scored players,
selected probabilistically — a higher execution score means a higher chance
of being re-selected, so the most promising configurations keep contending
with each other (the Swiss property).

A region terminates when one player has won consecutively "more than one
time" (the champion), when the pool of new players is exhausted, or when the
round cap is hit.  Everyone whose mean execution score is within the work
deviation ``d`` of the champion's advances — so regions with several strong
candidates send several winners to the global phase.

Regions play on parallel VMs, so :meth:`SwissRegionalPhase.run_all` advances
*all* regions in lockstep: each iteration collects one lineup per still-open
region and submits the whole round through :func:`~repro.core.game.play_round`
as a single batched simulation.  :meth:`SwissRegionalPhase.run_region` runs
one region to termination on its own (the sequential special case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.game import GameReport, play_round
from repro.core.records import RecordBook
from repro.errors import TournamentError
from repro.space.regions import Region


@dataclass(frozen=True)
class RegionalResult:
    """Outcome of one region's Swiss tournament."""

    region_id: int
    winners: tuple
    champion: int
    rounds: int
    games: int
    elapsed: float  # simulated seconds this region's (sequential) rounds took

    def __post_init__(self) -> None:
        if self.champion not in self.winners:
            raise TournamentError("champion must be among the region winners")


# Exponent sharpening score-proportional selection: strong players meet often.
_SELECTION_SHARPNESS = 4.0


class _RegionRun:
    """Stepwise state machine of one region: one lineup per round.

    ``next_lineup`` returns the lineup the region wants to play this round
    (or ``None`` once the region has terminated); ``observe`` books the
    played game's report back into the state.  The driver decides whether
    rounds from many regions are simulated together (lockstep batches) or
    one region at a time — the machine is oblivious.
    """

    def __init__(
        self, phase: "SwissRegionalPhase", region: Region, rng: np.random.Generator
    ) -> None:
        self.phase = phase
        self.region = region
        self.rng = rng
        self.games = 0
        self.elapsed = 0.0
        self.champion = -1
        self.streak = 0
        self.round_no = 0
        self.done = False
        # Ordered set of everyone who has played (and so carries a score):
        # position map plus the matching list, maintained incrementally.
        self._played: Dict[int, int] = {}
        self._played_list: List[int] = []
        self._assigned: set = set()
        self._lineup: Optional[List[int]] = None
        self._lone: Optional[int] = None
        self._swiss = phase.config.swiss_style

        cfg = phase.config
        self.players_per_game = phase._players_per_game(region)
        if region.size == 1:
            # Degenerate single-point region: the lone config advances unplayed.
            self._lone = region.start
            phase.records.assign_region(self._lone, region.region_id)
            self.done = True
            return

        if self._swiss:
            self._fresh: Optional[List[int]] = (
                [int(i) for i in region.sample(region.size, rng, replace=False)]
                if region.size <= 4 * self.players_per_game else None
            )
            # Large regions draw new players lazily instead of materialising all.
            self._drawn: set = set()
            max_rounds = cfg.max_regional_rounds
            if max_rounds is None:
                newcomers = max(1, self.players_per_game // 2)
                max_rounds = min(64, math.ceil(region.size / newcomers) + 2)
            self.max_rounds = max_rounds
        else:
            self.max_rounds = 1

    # -- drawing newcomers -------------------------------------------------

    def _draw_new(self, n: int) -> List[int]:
        if self._fresh is not None:
            out = self._fresh[:n]
            del self._fresh[:n]
            return [int(i) for i in out]
        out: List[int] = []
        attempts = 0
        while len(out) < n and attempts < 20:
            batch = self.region.sample(max(2 * n, 8), self.rng)
            for i in batch:
                iv = int(i)
                if iv not in self._drawn:
                    self._drawn.add(iv)
                    out.append(iv)
                    if len(out) == n:
                        break
            attempts += 1
        return out

    # -- the round protocol ------------------------------------------------

    def next_lineup(self) -> Optional[List[int]]:
        """Lineup this region wants to play now; ``None`` once terminated."""
        if self.done:
            return None
        if not self._swiss:
            lineup = [int(i) for i in self.region.sample(
                min(self.players_per_game, self.region.size), self.rng,
                replace=False,
            )]
        elif self.round_no >= self.max_rounds:
            self.done = True
            return None
        elif self.round_no == 0:
            lineup = self._draw_new(self.players_per_game)
        else:
            n_new = self.players_per_game // 2
            newcomers = self._draw_new(n_new)
            veterans = self.phase._select_veterans(
                self._played_list, self._played, self.champion,
                self.players_per_game - len(newcomers), self.rng,
            )
            lineup = veterans + newcomers
        lineup = list(dict.fromkeys(lineup))
        if len(lineup) < 2:
            self.done = True
            return None
        for idx in lineup:
            if idx not in self._assigned:
                self._assigned.add(idx)
                self.phase.records.assign_region(idx, self.region.region_id)
        self._lineup = lineup
        return lineup

    def observe(self, report: GameReport) -> None:
        """Book one played round back into the region's state."""
        self.games += 1
        self.elapsed += report.elapsed
        played = self._played
        for idx in self._lineup or ():
            if idx not in played:
                played[idx] = len(played)
                self._played_list.append(idx)
        self._lineup = None
        self.round_no += 1

        if not self._swiss:
            self.champion = report.winner_index
            self.done = True
            return
        if report.winner_index == self.champion:
            self.streak += 1
        else:
            self.champion = report.winner_index
            self.streak = 1
        if self.streak >= self.phase.config.regional_win_streak:
            self.done = True
        elif self._fresh is not None and not self._fresh:
            self.done = True

    def result(self) -> RegionalResult:
        """The region's final :class:`RegionalResult` (after termination)."""
        region = self.region
        if self._lone is not None:
            return RegionalResult(
                region_id=region.region_id, winners=(self._lone,),
                champion=self._lone, rounds=0, games=0, elapsed=0.0,
            )
        if self.champion < 0:
            raise TournamentError(
                f"region {region.region_id} terminated without playing a game"
            )
        winners = self.phase._winner_band(self._played_list, self.champion)
        return RegionalResult(
            region_id=region.region_id,
            winners=tuple(winners),
            champion=self.champion,
            rounds=self.games if not self._swiss else min(self.max_rounds, self.games),
            games=self.games,
            elapsed=self.elapsed,
        )


class SwissRegionalPhase:
    """Runs the Swiss-style tournaments of the regions."""

    def __init__(
        self,
        env: CloudEnvironment,
        app: ApplicationModel,
        config: DarwinGameConfig,
        records: RecordBook,
    ) -> None:
        self.env = env
        self.app = app
        self.config = config
        self.records = records

    # -- player selection ------------------------------------------------

    def _select_veterans(
        self,
        members: List[int],
        positions: Dict[int, int],
        champion: int,
        n: int,
        rng: np.random.Generator,
    ) -> List[int]:
        """Pick ``n`` previously scored players, champion always included.

        ``members`` is the ordered list of scored players and ``positions``
        its index map, both maintained incrementally by the caller — so the
        membership test is O(1) and the selection weights come from one
        vectorised score gather instead of a per-player pool rebuild.
        """
        if n <= 0:
            return []
        champion_pos = positions.get(champion)
        chosen: List[int] = [champion] if champion_pos is not None else []
        want = n - len(chosen)
        if want > 0 and len(members) > len(chosen):
            scores = self.records.mean_execution_scores(members)
            weights = np.power(np.maximum(scores, 1e-6), _SELECTION_SHARPNESS)
            if champion_pos is not None:
                weights[champion_pos] = 0.0
            total = weights.sum()
            if total > 0:
                take = min(want, len(members) - len(chosen))
                picks = rng.choice(
                    len(members), size=take, replace=False, p=weights / total
                )
                chosen.extend(members[int(p)] for p in picks)
        return chosen[:n]

    # -- the phase ---------------------------------------------------------

    def run_region(self, region: Region, rng: np.random.Generator) -> RegionalResult:
        """Play the Swiss tournament of one region to termination.

        The one-region lockstep: identical drive protocol (and RNG
        consumption) to :meth:`run_all`, because a one-game round is exactly
        a single game.
        """
        return self.run_all([region], [rng])[0]

    def run_all(
        self, regions: Sequence[Region], rngs: Sequence[np.random.Generator]
    ) -> List[RegionalResult]:
        """Play all regions in lockstep, one batched round per iteration.

        Regions run on parallel VMs, so round ``r`` of every still-open
        region forms one batch submitted through
        :func:`~repro.core.game.play_round`; regions drop out of the
        lockstep as they terminate.  The simulated clock is *not* advanced
        here — per-region elapsed times are reported in the results so the
        caller advances once by the slowest region, as before.
        """
        if len(regions) != len(rngs):
            raise TournamentError(
                f"need one rng per region, got {len(rngs)} for {len(regions)}"
            )
        runs = [_RegionRun(self, r, g) for r, g in zip(regions, rngs)]
        open_runs = [run for run in runs if not run.done]
        while open_runs:
            pending = []
            lineups = []
            for run in open_runs:
                lineup = run.next_lineup()
                if lineup is not None:
                    pending.append(run)
                    lineups.append(lineup)
            if not pending:
                break
            reports = play_round(
                self.env, self.app, lineups, self.config, self.records,
                label="regional", advance_clock=False,
            )
            for run, report in zip(pending, reports):
                run.observe(report)
            open_runs = [run for run in pending if not run.done]
        return [run.result() for run in runs]

    # -- helpers -----------------------------------------------------------

    def _players_per_game(self, region: Region) -> int:
        cfg = self.config
        if cfg.two_player_games_only:
            return 2
        configured = cfg.players_per_game or min(32, self.env.vm.vcpus)
        return max(2, min(configured, self.env.vm.vcpus, region.size))

    def _winner_band(self, played: List[int], champion: int) -> List[int]:
        """All players within deviation ``d`` of the champion's mean score."""
        if self.config.one_winner_per_region:
            return [champion]
        champ_score = self.records.get(champion).mean_execution_score
        threshold = (1.0 - self.config.work_deviation) * champ_score
        scores = self.records.mean_execution_scores(played)
        band = [p for p, s in zip(played, scores) if s >= threshold]
        if champion not in band:
            band.insert(0, champion)
        return band
