"""Phase I: the regional phase, played in Swiss style (Sec. 3.3, Fig. 6).

The playing style itself — score-proportional re-selection, newcomer seats,
champion-streak termination — is the :class:`repro.formats.swiss.StreakSwiss`
scheduler; this module is the thin adapter binding it to the cloud: each
region is a drawable player pool, scores come from the shared
:class:`~repro.core.records.RecordBook`, and every lockstep round is played
through the batched :class:`~repro.core.executor.MatchExecutor`.

A region terminates when one player has won consecutively "more than one
time" (the champion), when the pool of new players is exhausted, or when the
round cap is hit.  Everyone whose mean execution score is within the work
deviation ``d`` of the champion's advances — so regions with several strong
candidates send several winners to the global phase.

Regions play on parallel VMs, so :meth:`SwissRegionalPhase.run_all` advances
*all* regions in lockstep: each iteration collects one lineup per still-open
region and submits the whole round as a single batched simulation.
:meth:`SwissRegionalPhase.run_region` runs one region to termination on its
own (the sequential special case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.executor import MatchExecutor
from repro.core.records import RecordBook
from repro.errors import TournamentError
from repro.formats.swiss import StreakSwiss, StreakSwissRun
from repro.space.regions import Region


@dataclass(frozen=True)
class RegionalResult:
    """Outcome of one region's Swiss tournament."""

    region_id: int
    winners: tuple
    champion: int
    rounds: int
    games: int
    elapsed: float  # simulated seconds this region's (sequential) rounds took

    def __post_init__(self) -> None:
        if self.champion not in self.winners:
            raise TournamentError("champion must be among the region winners")


class _RegionDrive:
    """One region's scheduler run plus the adapter-side accounting."""

    def __init__(
        self, phase: "SwissRegionalPhase", region: Region, rng: np.random.Generator
    ) -> None:
        self.region = region
        self.elapsed = 0.0
        self.run: StreakSwissRun = phase._format_for(region).schedule(
            region,
            rng,
            scores=phase.records.mean_execution_scores,
            on_assign=lambda idx: phase.records.assign_region(
                idx, region.region_id
            ),
        )

    @property
    def done(self) -> bool:
        return self.run.done

    def result(self, phase: "SwissRegionalPhase") -> RegionalResult:
        run = self.run
        region = self.region
        if run.lone is not None:
            return RegionalResult(
                region_id=region.region_id, winners=(run.lone,),
                champion=run.lone, rounds=0, games=0, elapsed=0.0,
            )
        if run.champion < 0:
            raise TournamentError(
                f"region {region.region_id} terminated without playing a game"
            )
        winners = phase._winner_band(run.played_players, run.champion)
        swiss = phase.config.swiss_style
        return RegionalResult(
            region_id=region.region_id,
            winners=tuple(winners),
            champion=run.champion,
            rounds=run.games if not swiss else min(run.max_rounds, run.games),
            games=run.games,
            elapsed=self.elapsed,
        )


class SwissRegionalPhase:
    """Runs the Swiss-style tournaments of the regions."""

    def __init__(
        self,
        env: CloudEnvironment,
        app: ApplicationModel,
        config: DarwinGameConfig,
        records: RecordBook,
        executor: Optional[MatchExecutor] = None,
    ) -> None:
        self.env = env
        self.app = app
        self.config = config
        self.records = records
        self.executor = executor or MatchExecutor(env, app, config, records)

    # -- the phase ---------------------------------------------------------

    def run_region(self, region: Region, rng: np.random.Generator) -> RegionalResult:
        """Play the Swiss tournament of one region to termination.

        The one-region lockstep: identical drive protocol (and RNG
        consumption) to :meth:`run_all`, because a one-game round is exactly
        a single game.
        """
        return self.run_all([region], [rng])[0]

    def run_all(
        self, regions: Sequence[Region], rngs: Sequence[np.random.Generator]
    ) -> List[RegionalResult]:
        """Play all regions in lockstep, one batched round per iteration.

        Regions run on parallel VMs, so round ``r`` of every still-open
        region forms one batch played through the executor; regions drop out
        of the lockstep as they terminate.  The simulated clock is *not*
        advanced here — per-region elapsed times are reported in the results
        so the caller advances once by the slowest region, as before.
        """
        if len(regions) != len(rngs):
            raise TournamentError(
                f"need one rng per region, got {len(rngs)} for {len(regions)}"
            )
        drives = [_RegionDrive(self, r, g) for r, g in zip(regions, rngs)]
        open_drives = [d for d in drives if not d.done]
        while open_drives:
            pending = []
            lineups = []
            for drive in open_drives:
                lineup = drive.run.next_lineup()
                if lineup is not None:
                    pending.append(drive)
                    lineups.append(lineup)
            if not pending:
                break
            reports = self.executor.play(
                lineups, label="regional", advance_clock=False
            )
            for drive, report in zip(pending, reports):
                drive.elapsed += report.elapsed
                drive.run.advance([self.executor.recorded(report)])
            open_drives = [d for d in pending if not d.done]
        return [d.result(self) for d in drives]

    # -- helpers -----------------------------------------------------------

    def _format_for(self, region: Region) -> StreakSwiss:
        """The regional playing style, sized to the VM (the scheduler clamps
        seats to the region itself)."""
        cfg = self.config
        return StreakSwiss(
            players_per_game=self._players_per_game(region),
            win_streak=cfg.regional_win_streak,
            max_rounds=cfg.max_regional_rounds,
            swiss_style=cfg.swiss_style,
        )

    def _players_per_game(self, region: Region) -> int:
        cfg = self.config
        if cfg.two_player_games_only:
            return 2
        configured = cfg.players_per_game or min(32, self.env.vm.vcpus)
        return max(2, min(configured, self.env.vm.vcpus, region.size))

    def _winner_band(self, played: List[int], champion: int) -> List[int]:
        """All players within deviation ``d`` of the champion's mean score."""
        if self.config.one_winner_per_region:
            return [champion]
        champ_score = self.records.get(champion).mean_execution_score
        threshold = (1.0 - self.config.work_deviation) * champ_score
        scores = self.records.mean_execution_scores(played)
        band = [p for p, s in zip(played, scores) if s >= threshold]
        if champion not in band:
            band.insert(0, champion)
        return band
