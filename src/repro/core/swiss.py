"""Phase I: the regional phase, played in Swiss style (Sec. 3.3, Fig. 6).

Within each region, rounds of multi-player games are played.  Round one picks
players at random; every later round fills half its seats with players that
have never played (new players) and half with previously scored players,
selected probabilistically — a higher execution score means a higher chance
of being re-selected, so the most promising configurations keep contending
with each other (the Swiss property).

A region terminates when one player has won consecutively "more than one
time" (the champion), when the pool of new players is exhausted, or when the
round cap is hit.  Everyone whose mean execution score is within the work
deviation ``d`` of the champion's advances — so regions with several strong
candidates send several winners to the global phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.game import play_game
from repro.core.records import RecordBook
from repro.errors import TournamentError
from repro.space.regions import Region


@dataclass(frozen=True)
class RegionalResult:
    """Outcome of one region's Swiss tournament."""

    region_id: int
    winners: tuple
    champion: int
    rounds: int
    games: int
    elapsed: float  # simulated seconds this region's (sequential) rounds took

    def __post_init__(self) -> None:
        if self.champion not in self.winners:
            raise TournamentError("champion must be among the region winners")


# Exponent sharpening score-proportional selection: strong players meet often.
_SELECTION_SHARPNESS = 4.0


class SwissRegionalPhase:
    """Runs the Swiss-style tournament inside one region at a time."""

    def __init__(
        self,
        env: CloudEnvironment,
        app: ApplicationModel,
        config: DarwinGameConfig,
        records: RecordBook,
    ) -> None:
        self.env = env
        self.app = app
        self.config = config
        self.records = records

    # -- player selection ------------------------------------------------

    def _select_veterans(
        self, played: List[int], champion: int, n: int, rng: np.random.Generator
    ) -> List[int]:
        """Pick ``n`` previously scored players, champion always included."""
        if n <= 0:
            return []
        chosen: List[int] = [champion] if champion in played else []
        pool = [p for p in played if p not in chosen]
        want = n - len(chosen)
        if want > 0 and pool:
            scores = self.records.mean_execution_scores(pool)
            weights = np.power(np.maximum(scores, 1e-6), _SELECTION_SHARPNESS)
            weights = weights / weights.sum()
            take = min(want, len(pool))
            picks = rng.choice(len(pool), size=take, replace=False, p=weights)
            chosen.extend(pool[int(p)] for p in picks)
        return chosen[:n]

    # -- the phase ---------------------------------------------------------

    def run_region(self, region: Region, rng: np.random.Generator) -> RegionalResult:
        """Play the Swiss tournament of one region to termination."""
        cfg = self.config
        players_per_game = self._players_per_game(region)

        if region.size == 1:
            # Degenerate single-point region: the lone config advances unplayed.
            lone = region.start
            self.records.assign_region(lone, region.region_id)
            return RegionalResult(
                region_id=region.region_id, winners=(lone,), champion=lone,
                rounds=0, games=0, elapsed=0.0,
            )

        if not cfg.swiss_style:
            return self._single_game_region(region, players_per_game, rng)

        fresh = list(region.sample(region.size, rng, replace=False)) \
            if region.size <= 4 * players_per_game else None
        # Large regions draw new players lazily instead of materialising all.
        drawn: set = set()

        def draw_new(n: int) -> List[int]:
            if fresh is not None:
                out = fresh[:n]
                del fresh[:n]
                return [int(i) for i in out]
            out = []
            attempts = 0
            while len(out) < n and attempts < 20:
                batch = region.sample(max(2 * n, 8), rng)
                for i in batch:
                    iv = int(i)
                    if iv not in drawn:
                        drawn.add(iv)
                        out.append(iv)
                        if len(out) == n:
                            break
                attempts += 1
            return out

        max_rounds = cfg.max_regional_rounds
        if max_rounds is None:
            newcomers = max(1, players_per_game // 2)
            max_rounds = min(64, math.ceil(region.size / newcomers) + 2)

        played: List[int] = []
        champion = -1
        streak = 0
        games = 0
        elapsed = 0.0

        for round_no in range(max_rounds):
            if round_no == 0:
                lineup = draw_new(players_per_game)
            else:
                n_new = players_per_game // 2
                newcomers = draw_new(n_new)
                veterans = self._select_veterans(
                    played, champion, players_per_game - len(newcomers), rng
                )
                lineup = veterans + newcomers
            lineup = list(dict.fromkeys(lineup))
            if len(lineup) < 2:
                break
            for idx in lineup:
                self.records.assign_region(idx, region.region_id)

            report = play_game(
                self.env, self.app, lineup, cfg, self.records,
                label="regional", advance_clock=False,
            )
            games += 1
            elapsed += report.elapsed
            for idx in lineup:
                if idx not in played:
                    played.append(idx)

            if report.winner_index == champion:
                streak += 1
            else:
                champion = report.winner_index
                streak = 1
            if streak >= cfg.regional_win_streak:
                break
            if fresh is not None and not fresh:
                break

        if champion < 0:
            raise TournamentError(
                f"region {region.region_id} terminated without playing a game"
            )
        winners = self._winner_band(played, champion)
        return RegionalResult(
            region_id=region.region_id,
            winners=tuple(winners),
            champion=champion,
            rounds=games if not cfg.swiss_style else min(max_rounds, games),
            games=games,
            elapsed=elapsed,
        )

    # -- helpers -----------------------------------------------------------

    def _players_per_game(self, region: Region) -> int:
        cfg = self.config
        if cfg.two_player_games_only:
            return 2
        configured = cfg.players_per_game or min(32, self.env.vm.vcpus)
        return max(2, min(configured, self.env.vm.vcpus, region.size))

    def _single_game_region(
        self, region: Region, players_per_game: int, rng: np.random.Generator
    ) -> RegionalResult:
        """Ablation "w/o Swiss": one game among randomly chosen players."""
        lineup = [int(i) for i in region.sample(
            min(players_per_game, region.size), rng, replace=False
        )]
        if len(lineup) == 1:
            # Degenerate single-point region: the lone config advances unplayed.
            self.records.assign_region(lineup[0], region.region_id)
            return RegionalResult(
                region_id=region.region_id, winners=(lineup[0],),
                champion=lineup[0], rounds=0, games=0, elapsed=0.0,
            )
        for idx in lineup:
            self.records.assign_region(idx, region.region_id)
        report = play_game(
            self.env, self.app, lineup, self.config, self.records,
            label="regional", advance_clock=False,
        )
        winners = self._winner_band(lineup, report.winner_index)
        return RegionalResult(
            region_id=region.region_id,
            winners=tuple(winners),
            champion=report.winner_index,
            rounds=1,
            games=1,
            elapsed=report.elapsed,
        )

    def _winner_band(self, played: List[int], champion: int) -> List[int]:
        """All players within deviation ``d`` of the champion's mean score."""
        if self.config.one_winner_per_region:
            return [champion]
        champ_score = self.records.get(champion).mean_execution_score
        threshold = (1.0 - self.config.work_deviation) * champ_score
        band = [
            p for p in played
            if self.records.get(p).mean_execution_score >= threshold
        ]
        if champion not in band:
            band.insert(0, champion)
        return band
