"""Dynamic-parameter feedback extension (Sec. 5 discussion).

The paper notes DarwinGame *could* tune dynamically adjustable parameters
(e.g. thread counts) "by tweaking the tournament structure to introduce
feedback loops in later phases ..., where the system dynamically re-ranks
configurations based on their performance after adjustments during
application execution" — but reports that doing so raised tuning time and
resources by over 10% for less than 5% improvement, so the shipped system
leaves it off.

:class:`DynamicFeedbackDarwinGame` implements that extension so the trade-off
can be measured: after the regular tournament picks a winner, a feedback
loop perturbs the designated *dynamic* parameters of the winner one level at
a time and re-ranks winner-vs-adjustment in head-to-head games played to
completion.  Whenever an adjustment wins consistently, it becomes the new
incumbent and the loop continues from there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.game import play_game
from repro.core.records import RecordBook
from repro.core.tournament import DarwinGame
from repro.errors import TournamentError
from repro.rng import ensure_rng
from repro.types import TuningResult


@dataclass(frozen=True)
class FeedbackConfig:
    """Knobs of the dynamic feedback loop.

    The loop applies to *every* configuration that reached the playoffs
    ("feedback loops in the global, playoffs, and final phases"), so its
    cost scales with the late-phase field, not just the single winner —
    which is exactly why the paper measured it at over 10% extra tuning
    resources.

    Attributes:
        dynamic_dims: indices of the parameters treated as dynamically
            adjustable (``None`` = the trailing four dimensions, where the
            systems-level knobs live).
        rounds: maximum feedback rounds per late-phase player.
        duels_per_adjustment: head-to-head games an adjustment must win
            to replace the incumbent (re-ranking under different noise).
        radius: how many levels away from the incumbent each dynamic
            parameter may be adjusted per round.
    """

    dynamic_dims: Optional[Tuple[int, ...]] = None
    rounds: int = 3
    duels_per_adjustment: int = 3
    radius: int = 2

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise TournamentError(f"rounds must be >= 1, got {self.rounds}")
        if self.duels_per_adjustment < 1:
            raise TournamentError(
                f"duels_per_adjustment must be >= 1, got {self.duels_per_adjustment}"
            )
        if self.radius < 1:
            raise TournamentError(f"radius must be >= 1, got {self.radius}")


class DynamicFeedbackDarwinGame:
    """DarwinGame plus a post-tournament dynamic re-ranking loop."""

    name = "DarwinGame+feedback"

    def __init__(
        self,
        config: Optional[DarwinGameConfig] = None,
        feedback: Optional[FeedbackConfig] = None,
    ) -> None:
        self.config = config or DarwinGameConfig()
        self.feedback = feedback or FeedbackConfig()

    def _dynamic_dims(self, app: ApplicationModel) -> Tuple[int, ...]:
        dims = self.feedback.dynamic_dims
        if dims is None:
            dims = tuple(range(max(0, app.space.dimension - 4), app.space.dimension))
        for d in dims:
            if not 0 <= d < app.space.dimension:
                raise TournamentError(f"dynamic dimension {d} out of range")
        return dims

    def _adjustments(
        self, app: ApplicationModel, index: int, dims: Sequence[int]
    ) -> List[int]:
        """Nearby moves of the incumbent along the dynamic dimensions."""
        levels = np.array(app.space.levels_of(index), dtype=np.int64)
        cards = app.space.cardinalities
        out: List[int] = []
        radius = self.feedback.radius
        for dim in dims:
            for delta in range(-radius, radius + 1):
                if delta == 0:
                    continue
                new = int(levels[dim]) + delta
                if 0 <= new < int(cards[dim]):
                    moved = levels.copy()
                    moved[dim] = new
                    out.append(int(app.space.indices_of_levels_matrix(moved[None, :])[0]))
        return out

    def _feedback_loop(
        self,
        app: ApplicationModel,
        env: CloudEnvironment,
        start: int,
        dims: Sequence[int],
        records: RecordBook,
        stats: dict,
    ) -> int:
        """Re-rank one late-phase player against its dynamic adjustments."""
        incumbent = int(start)
        for _ in range(self.feedback.rounds):
            improved = False
            for candidate in self._adjustments(app, incumbent, dims):
                wins = 0
                for _duel in range(self.feedback.duels_per_adjustment):
                    report = play_game(
                        env, app, [incumbent, candidate], self.config, records,
                        allow_early_termination=False, label="feedback",
                        advance_clock=True,
                    )
                    stats["games"] += 1
                    wins += report.winner_index == candidate
                if wins == self.feedback.duels_per_adjustment:
                    incumbent = candidate
                    stats["replacements"] += 1
                    improved = True
            if not improved:
                break
        return incumbent

    def tune(self, app: ApplicationModel, env: CloudEnvironment) -> TuningResult:
        """Run the tournament, then feedback loops over the late-phase field."""
        base = DarwinGame(self.config).tune(app, env)
        dims = self._dynamic_dims(app)
        records = RecordBook()
        _ = ensure_rng(self.config.seed)  # reserved for tie-breaking policies

        # Every configuration that survived into the playoffs is re-ranked
        # through its own feedback loop; the tournament winner always takes
        # part even when the playoffs were skipped (degenerate small spaces).
        field = list(
            dict.fromkeys(
                [int(p) for p in base.details.get("playoffs", {}).get("players", [])]
                + [int(base.best_index)]
            )
        )
        stats = {"games": 0, "replacements": 0}
        incumbents = list(
            dict.fromkeys(
                self._feedback_loop(app, env, p, dims, records, stats)
                for p in field
            )
        )

        # Knockout among the adjusted incumbents (2-player games played to
        # completion, like the playoffs) decides the final dynamic winner.
        pool = incumbents
        while len(pool) > 1:
            nxt: List[int] = []
            if len(pool) % 2 == 1:
                nxt.append(pool[-1])
            for k in range(0, len(pool) - len(pool) % 2, 2):
                report = play_game(
                    env, app, [pool[k], pool[k + 1]], self.config, records,
                    allow_early_termination=False, label="feedback",
                    advance_clock=True,
                )
                stats["games"] += 1
                nxt.append(report.winner_index)
            pool = nxt
        winner = pool[0]

        details = dict(base.details)
        details["feedback"] = {
            "dynamic_dims": list(dims),
            "field": field,
            "games": stats["games"],
            "replacements": stats["replacements"],
            "tournament_winner": base.best_index,
        }
        return TuningResult(
            tuner_name=self.name,
            best_index=int(winner),
            best_values=app.space.values_of(int(winner)),
            evaluations=base.evaluations + records.total_evaluations,
            core_hours=env.ledger.snapshot(),  # includes the base tournament
            tuning_seconds=base.tuning_seconds,
            details=details,
        )
