"""Cross-campaign mega-batching: the stacked executor (ROADMAP item 2).

A sweep runs many tuning campaigns whose tournament rounds are individually
modest tensor jobs — a few games of a few players over a few hundred
segments.  On a 1-core machine the process pool cannot help, and each
campaign pays the fixed per-kernel overhead of every numpy call on its own.
The :class:`StackedExecutor` removes that overhead by *fusing*: campaigns of
the same stack key run in lockstep, and their concurrent rounds are
simulated as one stacked ``(campaigns x games, segments, players)`` tensor
pass through :func:`repro.cloud.colocation.simulate_colocated_rounds`.

The mechanism is a baton, not a scheduler rewrite.  Each campaign runs its
ordinary, deeply imperative tournament loop on its own thread, but only one
thread executes at any moment: when a campaign reaches
``simulate_colocated_batch`` it *parks* its validated round on its channel
and hands the baton back; when every live campaign is parked, the
coordinator simulates all parked rounds in one fused pass, distributes the
outcomes, and passes the baton around again.  Because execution is fully
serialized, shared process state (application caches, telemetry, fault
plans) needs no locking and event order stays deterministic.

Bit-identity with the per-campaign path is by construction: every request
carries its own interference process, start time, RNG children, and
termination thresholds, and the fused kernel keeps per-game draws on
per-game generators (see ``colocation.py``).  ``tests/test_stacked_executor``
pins this with golden-store diffs and a hypothesis property over stack
widths.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cloud import colocation
from repro.errors import ReproError
from repro.telemetry.events import (
    counter as _telemetry_counter,
    emit_event,
    histogram as _telemetry_histogram,
    telemetry_enabled,
)


def stack_key(spec) -> Tuple:
    """The fusion group of a campaign: same app surface, VM, and format.

    Campaigns sharing a key advance in lockstep and fuse their rounds.  Any
    grouping is *correct* (requests are self-contained); this key maximises
    tensor-shape homogeneity so fused chunks carry little padding.
    """
    return (spec.app, spec.scale, spec.vm, spec.scenario, spec.format)


class _CampaignChannel:
    """Baton-passing handshake between one campaign thread and the coordinator.

    ``resume`` (coordinator -> thread) grants the baton; ``parked`` (thread ->
    coordinator) returns it.  While parked, ``request`` holds the round the
    campaign wants simulated; the coordinator answers through ``result`` or
    ``error``.  ``done``/``record`` report campaign completion.

    The batons are raw locks, not events: the two sides strictly alternate
    (release is always answered by exactly one acquire), and a lock handoff
    costs a fraction of an ``Event`` round-trip — which matters, because the
    handshake fires twice per tournament round per campaign.
    """

    __slots__ = (
        "index", "spec", "resume", "parked", "request", "result", "error",
        "done", "record", "failure", "thread",
    )

    def __init__(self, index: int, spec) -> None:
        self.index = index
        self.spec = spec
        self.resume = threading.Lock()
        self.resume.acquire()  # baton starts with the coordinator
        self.parked = threading.Lock()
        self.parked.acquire()
        self.request = None
        self.result = None
        self.error: Optional[BaseException] = None
        self.done = False
        self.record = None
        self.failure: Optional[BaseException] = None
        self.thread: Optional[threading.Thread] = None

    def simulate(self, request) -> List:
        """Park ``request`` for fusion; block until the coordinator answers.

        Called on the campaign thread from ``simulate_colocated_batch`` (via
        the thread-local stack channel).  Raising the coordinator's error
        here puts a fused-kernel failure on the campaign's ordinary
        exception path — it becomes a failed attempt with the usual retry
        budget, exactly as an inline simulation error would.
        """
        self.request = request
        self.result = None
        self.error = None
        self.parked.release()
        self.resume.acquire()
        if self.error is not None:
            error, self.error = self.error, None
            raise error
        result, self.result = self.result, None
        return result


def _campaign_worker(channel: _CampaignChannel, max_retries: int, backoff: float) -> None:
    """Thread body: one campaign under inline retry/quarantine semantics.

    Mirrors ``CampaignRunner._execute_inline`` exactly — same attempt
    numbering, same backoff schedule, same quarantine — so a stacked sweep's
    records match a serial sweep's byte for byte.
    """
    from repro.campaigns.dispatch import quarantine_record
    from repro.campaigns.runner import execute_campaign

    colocation.install_stack_channel(channel)
    try:
        channel.resume.acquire()  # the baton: run only when granted
        spec = channel.spec
        attempt = 0
        while True:
            attempt += 1
            record = execute_campaign(spec, attempt=attempt)
            if record.ok:
                break
            if attempt > max_retries:
                record = quarantine_record(record)
                break
            if backoff > 0:
                time.sleep(backoff * (2 ** (attempt - 1)))
        channel.record = record
    except BaseException as exc:  # pragma: no cover - defensive; see _finish
        channel.failure = exc
    finally:
        colocation.install_stack_channel(None)
        channel.done = True
        channel.parked.release()


class StackedExecutor:
    """Runs a sweep's campaigns in lockstep, fusing their concurrent rounds.

    In-process (``--exec-mode stacked``): no worker pool, no ledger — the
    sibling of the runner's inline path, with the same retry, quarantine,
    fault-injection, and checkpoint-order semantics.  Campaigns are grouped
    by :func:`stack_key`; groups run one after another; within a group,
    records are yielded the moment their campaign finishes, so store
    checkpointing and resume behave as on the other paths.
    """

    def __init__(self, *, max_retries: int = 2, backoff: float = 0.1) -> None:
        self.max_retries = max_retries
        self.backoff = backoff

    def run(self, pending: Sequence[Tuple[int, object]]) -> Iterator[Tuple[int, object]]:
        groups: Dict[Tuple, List[Tuple[int, object]]] = {}
        for index, spec in pending:
            groups.setdefault(stack_key(spec), []).append((index, spec))
        for group in groups.values():
            yield from self._run_group(group)

    def _run_group(self, group: Sequence[Tuple[int, object]]) -> Iterator[Tuple[int, object]]:
        channels = [_CampaignChannel(index, spec) for index, spec in group]
        for channel in channels:
            thread = threading.Thread(
                target=_campaign_worker,
                args=(channel, self.max_retries, self.backoff),
                name=f"stacked-{channel.spec.campaign_id[:12]}",
                daemon=True,
            )
            channel.thread = thread
            thread.start()

        live: List[_CampaignChannel] = []
        # First baton round: each campaign runs to its first parked round —
        # or straight to completion (strategies that never co-locate).
        for channel in channels:
            self._step(channel)
            if channel.done:
                yield self._finish(channel)
            else:
                live.append(channel)

        while live:
            requests = [channel.request for channel in live]
            width = len(requests)
            t0 = time.perf_counter()
            try:
                rounds = colocation.simulate_colocated_rounds(requests)
            except Exception as exc:  # noqa: BLE001 - refused per campaign
                # Every parked campaign sees the failure on its own thread
                # and spends its own retry budget on it; the group goes on.
                for channel in live:
                    channel.error = exc
            else:
                for channel, outcomes in zip(live, rounds):
                    channel.result = outcomes
            if telemetry_enabled():
                emit_event(
                    "stack.simulate",
                    type="span",
                    value=time.perf_counter() - t0,
                    width=width,
                    games=sum(len(request.games) for request in requests),
                )
                _telemetry_histogram("stack.width", float(width))
                _telemetry_counter("stacked.rounds")
            for channel in list(live):
                self._step(channel)
                if channel.done:
                    yield self._finish(channel)
                    live.remove(channel)

    @staticmethod
    def _step(channel: _CampaignChannel) -> None:
        """Grant the baton and block until it comes back (park or finish)."""
        channel.resume.release()
        channel.parked.acquire()

    @staticmethod
    def _finish(channel: _CampaignChannel) -> Tuple[int, object]:
        channel.thread.join()
        if channel.record is None:  # pragma: no cover - worker never raises
            raise ReproError(
                f"stacked campaign thread for {channel.spec.campaign_id} "
                f"died without a record: {channel.failure!r}"
            ) from channel.failure
        return channel.index, channel.record
