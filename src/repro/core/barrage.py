"""Phases III & IV: barrage playoffs and the final (Sec. 3.5).

Playoffs and the final are played between two players at a time with *no*
early termination — near-winner configurations are too close for truncated
games to separate reliably.  In the barrage format with four players:

* game 1: the two players with the highest average execution score; the
  winner goes straight to the final;
* game 2: the remaining two players; the loser is eliminated;
* game 3: the loser of game 1 against the winner of game 2; the winner
  becomes the second finalist.

The final is a single two-player game; whoever finishes first wins the
tournament.  The ablation "w/o barrage" replaces the repechage (game 3)
with a plain knockout, denying game 1's loser its second chance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.game import GameReport, play_game, play_round
from repro.core.records import RecordBook
from repro.errors import TournamentError


@dataclass(frozen=True)
class PlayoffResult:
    """The two finalists and how many games the playoffs took."""

    finalists: Tuple[int, int]
    games: int


@dataclass(frozen=True)
class FinalResult:
    """The tournament's winner, runner-up, and the final game's report."""

    winner: int
    runner_up: int
    report: GameReport


class BarragePlayoffs:
    """Runs the playoffs (and final) among the global-phase qualifiers."""

    def __init__(
        self,
        env: CloudEnvironment,
        app: ApplicationModel,
        config: DarwinGameConfig,
        records: RecordBook,
    ) -> None:
        self.env = env
        self.app = app
        self.config = config
        self.records = records

    def _duel(self, a: int, b: int, label: str) -> GameReport:
        """A two-player game, played to completion (no early termination)."""
        return play_game(
            self.env, self.app, [a, b], self.config, self.records,
            allow_early_termination=False, label=label, advance_clock=True,
        )

    def run(self, players: Sequence[int]) -> PlayoffResult:
        """Determine the two finalists among up to four playoff players."""
        pool = list(dict.fromkeys(int(p) for p in players))
        if len(pool) < 2:
            raise TournamentError(
                f"playoffs need at least two distinct players, got {pool}"
            )
        # Seed by average execution score, highest first (Sec. 3.5).
        order = self.records.combined_rank_order(
            pool, use_execution=True, use_consistency=False
        )
        seeded: List[int] = [pool[int(p)] for p in order]

        if len(seeded) == 2:
            return PlayoffResult(finalists=(seeded[0], seeded[1]), games=0)

        if len(seeded) == 3:
            game1 = self._duel(seeded[0], seeded[1], "playoffs")
            finalist1 = game1.winner_index
            loser1 = seeded[1] if finalist1 == seeded[0] else seeded[0]
            if self.config.barrage_playoffs:
                game2 = self._duel(loser1, seeded[2], "playoffs")
                return PlayoffResult((finalist1, game2.winner_index), games=2)
            return PlayoffResult((finalist1, seeded[2]), games=1)

        top, bottom = seeded[:2], seeded[2:4]
        # Games 1 and 2 are independent, so they run as one round on
        # parallel VMs; the clock advances by the longer of the two.
        game1, game2 = play_round(
            self.env, self.app, [top, bottom], self.config, self.records,
            allow_early_termination=False, label="playoffs", advance_clock=True,
        )
        finalist1 = game1.winner_index
        loser1 = top[1] if finalist1 == top[0] else top[0]
        winner2 = game2.winner_index
        if self.config.barrage_playoffs:
            # Barrage repechage: loser of game 1 gets a second chance.
            game3 = self._duel(loser1, winner2, "playoffs")
            return PlayoffResult((finalist1, game3.winner_index), games=3)
        # Plain knockout ablation: winners of games 1 and 2 meet in the final.
        return PlayoffResult((finalist1, winner2), games=2)

    def final(self, finalists: Tuple[int, int]) -> FinalResult:
        """Play the final; the faster configuration wins the tournament."""
        a, b = finalists
        if a == b:
            raise TournamentError("the final needs two distinct players")
        report = self._duel(a, b, "final")
        winner = report.winner_index
        runner_up = b if winner == a else a
        return FinalResult(winner=winner, runner_up=runner_up, report=report)
