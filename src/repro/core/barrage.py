"""Phases III & IV: the playoffs and the final (Sec. 3.5).

Playoff games are played two players at a time with *no* early termination —
near-winner configurations are too close for truncated games to separate
reliably — and games of one playoff round run on parallel VMs.  Which
scheduler produces the two finalists is the config's
:class:`~repro.formats.recipes.TournamentRecipe`:

* ``barrage`` (the paper's choice): seeds 1-2 play for a direct final spot,
  seeds 3-4 for a barrage berth, and the loser of the top game gets one
  brief second chance.  The ablation "w/o barrage" is the same scheduler
  with the repechage off — a plain knockout.
* ``single_elimination`` / ``double_elimination`` / ``round_robin``:
  alternate recipes drive those :mod:`repro.formats` schedulers over the
  same seeded field until two finalists remain.

The final is a single two-player game; whoever finishes first wins the
tournament.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.executor import MatchExecutor
from repro.core.game import GameReport
from repro.core.records import RecordBook
from repro.errors import TournamentError
from repro.formats.barrage import Barrage
from repro.formats.double_elimination import DoubleElimination
from repro.formats.round_robin import RoundRobin
from repro.formats.single_elimination import SingleElimination


@dataclass(frozen=True)
class PlayoffResult:
    """The two finalists and how many games the playoffs took."""

    finalists: Tuple[int, int]
    games: int


@dataclass(frozen=True)
class FinalResult:
    """The tournament's winner, runner-up, and the final game's report."""

    winner: int
    runner_up: int
    report: GameReport


class BarragePlayoffs:
    """Runs the playoffs (and final) among the global-phase qualifiers.

    Named for the paper's default playoff format; the scheduler actually
    driven is the config recipe's ``playoffs`` choice.
    """

    def __init__(
        self,
        env: CloudEnvironment,
        app: ApplicationModel,
        config: DarwinGameConfig,
        records: RecordBook,
        executor: Optional[MatchExecutor] = None,
    ) -> None:
        self.env = env
        self.app = app
        self.config = config
        self.records = records
        self.executor = executor or MatchExecutor(env, app, config, records)

    def _play(self, round_) -> list:
        """One playoff round: parallel VMs, full games, clock by the slowest."""
        results, _ = self.executor.play_scheduled(
            round_,
            label="playoffs",
            allow_early_termination=False,
            advance_clock=True,
        )
        return results

    def run(self, players: Sequence[int]) -> PlayoffResult:
        """Determine the two finalists among the playoff qualifiers."""
        pool = list(dict.fromkeys(int(p) for p in players))
        if len(pool) < 2:
            raise TournamentError(
                f"playoffs need at least two distinct players, got {pool}"
            )
        # Seed by average execution score, highest first (Sec. 3.5).
        order = self.records.combined_rank_order(
            pool, use_execution=True, use_consistency=False
        )
        seeded: List[int] = [pool[int(p)] for p in order]
        if len(seeded) == 2:
            return PlayoffResult(finalists=(seeded[0], seeded[1]), games=0)

        fmt = self.config.recipe().playoffs
        if fmt == "barrage":
            # The paper's playoffs seat at most four qualifiers (Sec. 3.5);
            # "w/o barrage" runs the same bracket without the repechage.
            run = Barrage(
                repechage=self.config.barrage_playoffs
            ).schedule(seeded[:4])
            while (round_ := run.pairings()) is not None:
                run.advance(self._play(round_))
            outcome = run.result()
            finalists = outcome.finalists
        elif fmt == "single_elimination":
            run = SingleElimination().schedule(seeded)
            while len(run.alive) > 2:
                run.advance(self._play(run.pairings()))
            finalists = tuple(run.alive)
        elif fmt == "double_elimination":
            run = DoubleElimination().schedule(seeded)
            while run.in_brackets:
                run.advance(self._play(run.pairings()))
            finalists = run.finalists
        elif fmt == "round_robin":
            run = RoundRobin().schedule(seeded)
            while (round_ := run.pairings()) is not None:
                run.advance(self._play(round_))
            finalists = run.result().standings[:2]
        else:  # pragma: no cover - recipes validate at registration
            raise TournamentError(f"unknown playoff format {fmt!r}")

        if len(finalists) < 2:
            raise TournamentError(
                f"playoff format {fmt!r} produced {len(finalists)} finalist(s)"
            )
        return PlayoffResult(
            finalists=(int(finalists[0]), int(finalists[1])),
            games=run.log.games,
        )

    def final(self, finalists: Tuple[int, int]) -> FinalResult:
        """Play the final; the faster configuration wins the tournament."""
        a, b = finalists
        if a == b:
            raise TournamentError("the final needs two distinct players")
        report = self.executor.duel(a, b, label="final")
        winner = report.winner_index
        runner_up = b if winner == a else a
        return FinalResult(winner=winner, runner_up=runner_up, report=report)
