"""Phase II: the global phase, played in double elimination style (Sec. 3.4).

The bracket mechanics — dealing mixed-region groups, the loser pool, the
wild-card game — are the :class:`repro.formats.double_elimination.
GroupedDoubleElimination` scheduler; this module is the thin adapter that
binds them to the cloud.  Each scheduled round is played as one batched
simulation through the :class:`~repro.core.executor.MatchExecutor` (groups
play on parallel VMs, the clock advances by the slowest game), and each
group is judged by the *sum* of its execution-score rank and consistency
rank — the joint criterion that selects configurations that are both fast
and stable under noise (Fig. 7).  Group winners stay in the main bracket;
everyone else moves to the loser bracket instead of being eliminated, and
once the main bracket holds the target number of players the best
loser-bracket players play one game whose winner receives a wild-card entry
into the playoffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.executor import MatchExecutor
from repro.core.game import GameReport
from repro.core.records import RecordBook
from repro.errors import TournamentError
from repro.formats.double_elimination import GroupedDoubleElimination, form_groups


@dataclass(frozen=True)
class GlobalResult:
    """Outcome of the global phase."""

    main_bracket: Tuple[int, ...]
    wildcard: int  # -1 when double elimination (and thus the wild card) is off
    rounds: int
    games: int
    loser_bracket_size: int

    @property
    def playoff_players(self) -> Tuple[int, ...]:
        players = list(self.main_bracket)
        if self.wildcard >= 0 and self.wildcard not in players:
            players.append(self.wildcard)
        return tuple(players)


class DoubleEliminationGlobalPhase:
    """Runs the global phase over the regional winners."""

    def __init__(
        self,
        env: CloudEnvironment,
        app: ApplicationModel,
        config: DarwinGameConfig,
        records: RecordBook,
        executor: Optional[MatchExecutor] = None,
    ) -> None:
        self.env = env
        self.app = app
        self.config = config
        self.records = records
        self.executor = executor or MatchExecutor(env, app, config, records)

    # -- scheduling hooks ----------------------------------------------------

    def _players_per_game(self) -> int:
        cfg = self.config
        if cfg.two_player_games_only:
            return 2
        configured = cfg.players_per_game or min(32, self.env.vm.vcpus)
        return max(2, min(configured, self.env.vm.vcpus))

    def _form_groups(
        self, players: Sequence[int], n_games: int, rng: np.random.Generator
    ) -> List[List[int]]:
        """Deal players into region-diverse groups (the scheduler's rule)."""
        return form_groups(
            players, n_games, rng,
            group_key=lambda p: self.records.get(p).region_id,
        )

    def _format(self) -> GroupedDoubleElimination:
        cfg = self.config
        return GroupedDoubleElimination(
            players_per_game=self._players_per_game(),
            target=cfg.main_bracket_target,
            double_elimination=cfg.double_elimination,
            group_key=lambda p: self.records.get(p).region_id,
            seed_order=lambda players: self.records.combined_rank_order(
                players,
                use_execution=cfg.use_execution_score,
                use_consistency=cfg.use_consistency_score,
            ),
        )

    def _judge_game(self, lineup: Sequence[int], game_scores: Sequence[float]) -> int:
        """Winner = lowest sum of execution-score rank and consistency rank.

        Ranks within the game use the *current game's* execution scores and
        the accumulated consistency scores, per Fig. 7; the ablation flags
        drop one of the two criteria.
        """
        from repro.analysis.stats import rank_with_ties

        cfg = self.config
        total = np.zeros(len(lineup), dtype=float)
        if cfg.use_execution_score:
            total += rank_with_ties(np.asarray(game_scores), descending=True)
        if cfg.use_consistency_score:
            total += rank_with_ties(
                self.records.consistency_scores(list(lineup)), descending=True
            )
        best = int(np.argmin(total))
        # Deterministic tie-break on the game's execution score.
        ties = np.nonzero(total == total[best])[0]
        if ties.size > 1:
            best = int(ties[np.argmax(np.asarray(game_scores)[ties])])
        return best

    def _judge(self, lineup: Sequence[int], report: GameReport) -> int:
        return self._judge_game(lineup, report.execution_scores)

    # -- the phase ---------------------------------------------------------

    def run(self, entrants: Sequence[int], rng: np.random.Generator) -> GlobalResult:
        """Play the global phase and return the playoff qualifiers."""
        if not list(entrants):
            raise TournamentError("global phase needs at least one entrant")
        run = self._format().schedule(entrants, rng)
        while (round_ := run.pairings()) is not None:
            in_groups = run.stage == "groups"
            results, reports = self.executor.play_scheduled(
                round_,
                label="global",
                judge=self._judge,
                # The wild-card game advances the clock inline (a one-game
                # round); group rounds advance once by the slowest game.
                advance_clock=not in_groups,
            )
            run.advance(results)
            if in_groups:
                self.executor.advance_clock(
                    self.executor.round_elapsed(reports)
                )
        outcome = run.result()
        return GlobalResult(
            main_bracket=outcome.main_bracket,
            wildcard=outcome.wildcard,
            rounds=outcome.rounds,
            games=outcome.games,
            loser_bracket_size=outcome.loser_bracket_size,
        )
