"""Phase II: the global phase, played in double elimination style (Sec. 3.4).

Regional winners enter the main bracket.  Each round groups players (groups
are mixed across source regions for diversity), plays one game per group,
and judges players by the *sum* of their execution-score rank and their
consistency-score rank — the joint criterion that selects configurations
that are both fast and stable under noise (Fig. 7).  Group winners stay in
the main bracket; everyone else moves to the loser bracket instead of being
eliminated.  Rounds continue until the main bracket holds the target number
of players (three in the paper).  Finally, the best loser-bracket players
play one game whose winner receives a wild-card entry into the playoffs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.game import play_game, play_round
from repro.core.records import RecordBook
from repro.errors import TournamentError


@dataclass(frozen=True)
class GlobalResult:
    """Outcome of the global phase."""

    main_bracket: Tuple[int, ...]
    wildcard: int  # -1 when double elimination (and thus the wild card) is off
    rounds: int
    games: int
    loser_bracket_size: int

    @property
    def playoff_players(self) -> Tuple[int, ...]:
        players = list(self.main_bracket)
        if self.wildcard >= 0 and self.wildcard not in players:
            players.append(self.wildcard)
        return tuple(players)


class DoubleEliminationGlobalPhase:
    """Runs the global phase over the regional winners."""

    def __init__(
        self,
        env: CloudEnvironment,
        app: ApplicationModel,
        config: DarwinGameConfig,
        records: RecordBook,
    ) -> None:
        self.env = env
        self.app = app
        self.config = config
        self.records = records

    # -- group formation ---------------------------------------------------

    def _players_per_game(self) -> int:
        cfg = self.config
        if cfg.two_player_games_only:
            return 2
        configured = cfg.players_per_game or min(32, self.env.vm.vcpus)
        return max(2, min(configured, self.env.vm.vcpus))

    def _form_groups(
        self, players: Sequence[int], n_games: int, rng: np.random.Generator
    ) -> List[List[int]]:
        """Deal players into groups, spreading source regions across groups.

        Sorting by region id and dealing round-robin guarantees that two
        players from the same region land in the same group only when there
        are more of them than groups — the paper's diversity requirement.
        """
        ordered = sorted(players, key=lambda p: (self.records.get(p).region_id, p))
        # Random rotation so the deal is not biased by region numbering.
        offset = int(rng.integers(0, len(ordered))) if len(ordered) > 1 else 0
        ordered = ordered[offset:] + ordered[:offset]
        groups: List[List[int]] = [[] for _ in range(n_games)]
        for pos, player in enumerate(ordered):
            groups[pos % n_games].append(player)
        return [g for g in groups if g]

    def _judge_game(self, lineup: List[int], game_scores: Sequence[float]) -> int:
        """Winner = lowest sum of execution-score rank and consistency rank.

        Ranks within the game use the *current game's* execution scores and
        the accumulated consistency scores, per Fig. 7; the ablation flags
        drop one of the two criteria.
        """
        from repro.analysis.stats import rank_with_ties

        cfg = self.config
        total = np.zeros(len(lineup), dtype=float)
        if cfg.use_execution_score:
            total += rank_with_ties(np.asarray(game_scores), descending=True)
        if cfg.use_consistency_score:
            total += rank_with_ties(
                self.records.consistency_scores(lineup), descending=True
            )
        best = int(np.argmin(total))
        # Deterministic tie-break on the game's execution score.
        ties = np.nonzero(total == total[best])[0]
        if ties.size > 1:
            best = int(ties[np.argmax(np.asarray(game_scores)[ties])])
        return best

    # -- the phase ---------------------------------------------------------

    def run(self, entrants: Sequence[int], rng: np.random.Generator) -> GlobalResult:
        """Play the global phase and return the playoff qualifiers."""
        main = list(dict.fromkeys(int(p) for p in entrants))
        if not main:
            raise TournamentError("global phase needs at least one entrant")
        cfg = self.config
        target = cfg.main_bracket_target
        per_game = self._players_per_game()
        losers: List[int] = []
        rounds = 0
        games = 0

        while len(main) > target:
            # Aim for at least `target` winners per round (so the bracket
            # shrinks gradually) while never exceeding the per-game player
            # cap; single-player groups are byes.
            n_games = max(
                math.ceil(len(main) / per_game), min(target, len(main) // 2), 1
            )
            groups = self._form_groups(main, n_games, rng)
            # Groups play on parallel VMs: submit the whole round as one
            # batched simulation, then judge each group.
            playable = [group for group in groups if len(group) > 1]
            reports = iter(play_round(
                self.env, self.app, playable, cfg, self.records,
                label="global", advance_clock=False,
            ))
            round_winners: List[int] = []
            round_elapsed = 0.0
            for group in groups:
                if len(group) == 1:
                    round_winners.extend(group)  # bye
                    continue
                report = next(reports)
                games += 1
                round_elapsed = max(round_elapsed, report.elapsed)
                winner_pos = self._judge_game(group, report.execution_scores)
                round_winners.append(group[winner_pos])
                for pos, player in enumerate(group):
                    if pos != winner_pos:
                        losers.append(player)
            self.env.advance(round_elapsed)
            rounds += 1
            if len(round_winners) >= len(main):
                break  # no reduction possible (all byes)
            main = round_winners

        wildcard = -1
        if cfg.double_elimination and losers:
            wildcard = self._loser_bracket_game(losers, per_game)
            games += 1 if len(losers) > 1 else 0
        elif not cfg.double_elimination:
            losers = []  # losers were eliminated outright

        return GlobalResult(
            main_bracket=tuple(main),
            wildcard=wildcard,
            rounds=rounds,
            games=games,
            loser_bracket_size=len(set(losers)),
        )

    def _loser_bracket_game(self, losers: List[int], per_game: int) -> int:
        """One game among the best loser-bracket players; winner = wild card."""
        unique = list(dict.fromkeys(losers))
        if len(unique) == 1:
            return unique[0]
        order = self.records.combined_rank_order(
            unique,
            use_execution=self.config.use_execution_score,
            use_consistency=self.config.use_consistency_score,
        )
        lineup = [unique[int(p)] for p in order[:per_game]]
        report = play_game(
            self.env, self.app, lineup, self.config, self.records,
            label="global", advance_clock=True,
        )
        winner_pos = self._judge_game(lineup, report.execution_scores)
        return lineup[winner_pos]
