"""DarwinGame's tournament core: games, phases, orchestration."""

from repro.core.barrage import BarragePlayoffs, FinalResult, PlayoffResult
from repro.core.config import ABLATION_NAMES, DarwinGameConfig, auto_regions
from repro.core.double_elimination import DoubleEliminationGlobalPhase, GlobalResult
from repro.core.dynamic import DynamicFeedbackDarwinGame, FeedbackConfig
from repro.core.executor import MatchExecutor
from repro.core.game import (
    GameReport,
    execution_scores_from_work,
    play_game,
    play_round,
)
from repro.core.records import PlayerRecord, RecordBook
from repro.core.swiss import RegionalResult, SwissRegionalPhase
from repro.core.tournament import DarwinGame
from repro.core.trace import format_tournament_report

__all__ = [
    "ABLATION_NAMES",
    "BarragePlayoffs",
    "DarwinGame",
    "DarwinGameConfig",
    "DynamicFeedbackDarwinGame",
    "FeedbackConfig",
    "format_tournament_report",
    "DoubleEliminationGlobalPhase",
    "FinalResult",
    "GameReport",
    "GlobalResult",
    "MatchExecutor",
    "PlayerRecord",
    "PlayoffResult",
    "RecordBook",
    "RegionalResult",
    "SwissRegionalPhase",
    "auto_regions",
    "execution_scores_from_work",
    "play_game",
    "play_round",
]
