"""Human-readable tournament reports.

:func:`format_tournament_report` turns a :class:`~repro.types.TuningResult`
produced by :class:`~repro.core.tournament.DarwinGame` into a plain-text
summary of the four phases — how many regions and games were played, who
reached the main bracket, who got the wild card, and what each phase cost.
"""

from __future__ import annotations

from typing import List

from repro.types import TuningResult


def format_tournament_report(result: TuningResult) -> str:
    """Render a phase-by-phase report of one DarwinGame run."""
    lines: List[str] = [f"DarwinGame tournament report — winner {result.best_index}"]
    lines.append(
        f"  total: {result.evaluations} evaluations, "
        f"{result.core_hours:,.0f} core-hours, "
        f"{result.tuning_seconds / 3600.0:,.1f} simulated hours"
    )

    regional = result.details.get("regional")
    if regional:
        lines.append(
            f"  phase I  (regional, Swiss): {regional['regions']} regions, "
            f"{regional['games']} games -> {regional['winners']} winners"
        )

    global_phase = result.details.get("global")
    if global_phase:
        main = global_phase.get("main_bracket")
        wildcard = global_phase.get("wildcard", -1)
        lines.append(
            f"  phase II (global, double elimination): "
            f"{global_phase.get('entrants', 0)} entrants, "
            f"{global_phase.get('rounds', 0)} rounds, "
            f"{global_phase.get('games', 0)} games"
        )
        if main is not None:
            lines.append(f"           main bracket: {main}")
        if wildcard is not None and wildcard >= 0:
            lines.append(
                f"           wild card (from loser bracket of "
                f"{global_phase.get('loser_bracket_size', 0)}): {wildcard}"
            )

    playoffs = result.details.get("playoffs")
    if playoffs:
        lines.append(
            f"  phase III (playoffs, barrage): {playoffs.get('games', 0)} games"
        )
        if "finalists" in playoffs:
            lines.append(f"           finalists: {playoffs['finalists']}")
        if "runner_up" in playoffs:
            lines.append(
                f"  phase IV (final): {result.best_index} beat "
                f"{playoffs['runner_up']}"
            )

    per_phase = result.details.get("phase_core_hours")
    if per_phase:
        cost = ", ".join(f"{k}={v:,.0f}" for k, v in sorted(per_phase.items()))
        lines.append(f"  core-hours by phase: {cost}")

    feedback = result.details.get("feedback")
    if feedback:
        lines.append(
            f"  feedback loop: {feedback['games']} games, "
            f"{feedback['replacements']} adjustments adopted "
            f"(dynamic dims {feedback['dynamic_dims']})"
        )
    return "\n".join(lines)
