"""Per-player score bookkeeping across the whole tournament.

Two scores drive DarwinGame's decisions (Figs. 5 and 7):

* **execution score** — within one game, the fraction of work a player
  completed relative to the fastest player of that game;
* **consistency score** — the average of ``1 / rank`` over *all* games the
  player has played so far, where rank is the player's execution-score rank
  within each game.  High consistency means the configuration performs well
  repeatedly, under different noise and different opponents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.stats import rank_with_ties
from repro.errors import TournamentError


@dataclass
class PlayerRecord:
    """Everything the tournament remembers about one configuration."""

    index: int
    region_id: int = -1
    execution_scores: List[float] = field(default_factory=list)
    inverse_ranks: List[float] = field(default_factory=list)
    wins: int = 0

    @property
    def games_played(self) -> int:
        return len(self.execution_scores)

    @property
    def mean_execution_score(self) -> float:
        """Average execution score; 0.0 before the first game."""
        if not self.execution_scores:
            return 0.0
        return float(np.mean(self.execution_scores))

    @property
    def consistency_score(self) -> float:
        """Mean of 1/rank over all games (Fig. 7); 0.0 before the first game."""
        if not self.inverse_ranks:
            return 0.0
        return float(np.mean(self.inverse_ranks))


class RecordBook:
    """Registry of :class:`PlayerRecord` keyed by configuration index."""

    def __init__(self) -> None:
        self._records: Dict[int, PlayerRecord] = {}
        self._total_evaluations = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, index: int) -> bool:
        return int(index) in self._records

    def get(self, index: int) -> PlayerRecord:
        """Fetch (creating if needed) the record of a configuration."""
        key = int(index)
        record = self._records.get(key)
        if record is None:
            record = PlayerRecord(index=key)
            self._records[key] = record
        return record

    def assign_region(self, index: int, region_id: int) -> None:
        self.get(index).region_id = region_id

    def record_game(
        self, indices: Sequence[int], execution_scores: Sequence[float]
    ) -> int:
        """Book one game's scores and ranks; returns the winner's position.

        The winner of a *game* (before consistency enters the picture) is the
        player with the highest execution score.
        """
        if len(indices) != len(execution_scores):
            raise TournamentError("indices and execution_scores length mismatch")
        if len(indices) == 0:
            raise TournamentError("cannot record an empty game")
        scores = np.asarray(execution_scores, dtype=float)
        ranks = rank_with_ties(scores, descending=True)
        winner_pos = int(np.argmax(scores))
        for pos, index in enumerate(indices):
            record = self.get(int(index))
            record.execution_scores.append(float(scores[pos]))
            record.inverse_ranks.append(1.0 / float(ranks[pos]))
        self.get(int(indices[winner_pos])).wins += 1
        self._total_evaluations += len(indices)
        return winner_pos

    @property
    def total_evaluations(self) -> int:
        """Application executions paid for (a k-player game counts k)."""
        return self._total_evaluations

    def mean_execution_scores(self, indices: Sequence[int]) -> np.ndarray:
        return np.array([self.get(int(i)).mean_execution_score for i in indices])

    def consistency_scores(self, indices: Sequence[int]) -> np.ndarray:
        return np.array([self.get(int(i)).consistency_score for i in indices])

    def combined_rank_order(
        self,
        indices: Sequence[int],
        *,
        use_execution: bool = True,
        use_consistency: bool = True,
    ) -> np.ndarray:
        """Order positions by summed execution- and consistency-score ranks.

        The paper ranks global-phase players by the *summation* of their
        execution-score ranking and consistency-score ranking; the lowest sum
        wins (Sec. 3.4).  Returns positions into ``indices``, best first.
        """
        if not use_execution and not use_consistency:
            raise TournamentError("at least one score must be used for ranking")
        total = np.zeros(len(indices), dtype=float)
        if use_execution:
            total += rank_with_ties(self.mean_execution_scores(indices), descending=True)
        if use_consistency:
            total += rank_with_ties(self.consistency_scores(indices), descending=True)
        # Tie-break deterministically on execution score, then index.
        exec_scores = self.mean_execution_scores(indices)
        keys = list(zip(total, -exec_scores, [int(i) for i in indices]))
        return np.array(sorted(range(len(indices)), key=lambda p: keys[p]), dtype=np.int64)
