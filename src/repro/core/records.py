"""Per-player score bookkeeping across the whole tournament.

Two scores drive DarwinGame's decisions (Figs. 5 and 7):

* **execution score** — within one game, the fraction of work a player
  completed relative to the fastest player of that game;
* **consistency score** — the average of ``1 / rank`` over *all* games the
  player has played so far, where rank is the player's execution-score rank
  within each game.  High consistency means the configuration performs well
  repeatedly, under different noise and different opponents.

Bookkeeping is incremental: :meth:`RecordBook.record_game` maintains flat
running-sum arrays, so the vectorised score queries the selection loops
issue on every draw are O(1) array gathers instead of re-averaging the full
history, no matter how many games have been played.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

import repro.xp as xp
from repro.analysis.stats import rank_with_ties
from repro.errors import TournamentError


class PlayerRecord:
    """Everything the tournament remembers about one configuration.

    The per-game history lists are the record's only state; the score
    properties derive from them on read.  (Bulk reads go through the
    :class:`RecordBook` flat arrays instead — per-record property reads are
    off the hot path.  A plain ``__slots__`` class, because the tournament
    creates one record per player it ever touches.)
    """

    __slots__ = (
        "index", "region_id", "execution_scores", "inverse_ranks", "wins",
    )

    def __init__(
        self,
        index: int,
        region_id: int = -1,
        execution_scores: Optional[List[float]] = None,
        inverse_ranks: Optional[List[float]] = None,
        wins: int = 0,
    ) -> None:
        self.index = index
        self.region_id = region_id
        self.execution_scores = execution_scores if execution_scores is not None else []
        self.inverse_ranks = inverse_ranks if inverse_ranks is not None else []
        self.wins = wins

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlayerRecord(index={self.index!r}, region_id={self.region_id!r}, "
            f"execution_scores={self.execution_scores!r}, "
            f"inverse_ranks={self.inverse_ranks!r}, wins={self.wins!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlayerRecord):
            return NotImplemented
        return (
            self.index == other.index
            and self.region_id == other.region_id
            and self.execution_scores == other.execution_scores
            and self.inverse_ranks == other.inverse_ranks
            and self.wins == other.wins
        )

    def add_result(self, execution_score: float, inverse_rank: float) -> None:
        """Book one game's score and inverse rank."""
        self.execution_scores.append(execution_score)
        self.inverse_ranks.append(inverse_rank)

    @property
    def games_played(self) -> int:
        return len(self.execution_scores)

    @property
    def mean_execution_score(self) -> float:
        """Average execution score; 0.0 before the first game."""
        if not self.execution_scores:
            return 0.0
        return sum(self.execution_scores) / len(self.execution_scores)

    @property
    def consistency_score(self) -> float:
        """Mean of 1/rank over all games (Fig. 7); 0.0 before the first game."""
        if not self.inverse_ranks:
            return 0.0
        return sum(self.inverse_ranks) / len(self.inverse_ranks)


class RecordBook:
    """Registry of :class:`PlayerRecord` keyed by configuration index.

    Beside the per-player records, the book maintains flat score-sum /
    game-count arrays indexed by insertion slot, which turn
    :meth:`mean_execution_scores` and :meth:`consistency_scores` into pure
    array gathers — the hot path of veteran selection and winner banding.
    """

    _INITIAL_CAPACITY = 64

    def __init__(self) -> None:
        self._records: Dict[int, PlayerRecord] = {}
        self._slots: Dict[int, int] = {}
        cap = self._INITIAL_CAPACITY
        self._score_sums = xp.zeros(cap)
        self._rank_sums = xp.zeros(cap)
        self._games = xp.zeros(cap, dtype=np.int64)
        self._total_evaluations = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, index: int) -> bool:
        return int(index) in self._records

    def _grow(self) -> None:
        cap = 2 * len(self._score_sums)
        for name in ("_score_sums", "_rank_sums", "_games"):
            old = getattr(self, name)
            new = xp.zeros(cap, dtype=old.dtype)
            new[: len(old)] = old
            setattr(self, name, new)

    def _slot_of(self, key: int) -> int:
        """Slot of (creating, like :meth:`get`) the record of ``key``."""
        slot = self._slots.get(key)
        if slot is None:
            self.get(key)
            slot = self._slots[key]
        return slot

    def get(self, index: int) -> PlayerRecord:
        """Fetch (creating if needed) the record of a configuration."""
        key = int(index)
        record = self._records.get(key)
        if record is None:
            record = PlayerRecord(index=key)
            self._records[key] = record
            slot = len(self._slots)
            if slot >= len(self._score_sums):
                self._grow()
            self._slots[key] = slot
        return record

    def assign_region(self, index: int, region_id: int) -> None:
        # Inlined fast path of get(): region assignment fires once for every
        # player ever drawn into a lineup, which is most of the pool.
        record = self._records.get(int(index))
        if record is None:
            record = self.get(index)
        record.region_id = region_id

    def record_game(
        self, indices: Sequence[int], execution_scores: Sequence[float]
    ) -> int:
        """Book one game's scores and ranks; returns the winner's position.

        The winner of a *game* (before consistency enters the picture) is the
        player with the highest execution score.
        """
        if len(indices) != len(execution_scores):
            raise TournamentError("indices and execution_scores length mismatch")
        if len(indices) == 0:
            raise TournamentError("cannot record an empty game")
        scores = np.asarray(execution_scores, dtype=float)
        ranks = rank_with_ties(scores, descending=True)
        winner_pos = int(np.argmax(scores))
        inverse = 1.0 / np.asarray(ranks, dtype=float)
        score_list = scores.tolist()
        inverse_list = inverse.tolist()
        records = self._records
        keys = [int(i) for i in indices]
        for pos, key in enumerate(keys):
            record = records.get(key)
            if record is None:
                record = self.get(key)
            record.execution_scores.append(score_list[pos])
            record.inverse_ranks.append(inverse_list[pos])
        # One scatter-add per flat array instead of three scalar updates per
        # player.  ``np.add.at`` is unbuffered and applies duplicates in
        # positional order — bit-for-bit the accumulation the scalar loop did.
        slots = self._slots
        slot_arr = np.fromiter(
            map(slots.__getitem__, keys), dtype=np.int64, count=len(keys)
        )
        xp.add.at(self._score_sums, slot_arr, scores)
        xp.add.at(self._rank_sums, slot_arr, inverse)
        xp.add.at(self._games, slot_arr, 1)
        records[keys[winner_pos]].wins += 1
        self._total_evaluations += len(keys)
        return winner_pos

    @property
    def total_evaluations(self) -> int:
        """Application executions paid for (a k-player game counts k)."""
        return self._total_evaluations

    def _gather_slots(self, indices: Sequence[int]) -> np.ndarray:
        table = self._slots
        try:
            # C-level gather: the selection loops re-issue this for the whole
            # played list every round, so the per-element cost matters.  No
            # int() per key — numpy integers hash like the plain-int keys.
            return np.fromiter(
                map(table.__getitem__, indices),
                dtype=np.int64,
                count=len(indices),
            )
        except KeyError:
            # Rare: some records do not exist yet — create them (like get()).
            return np.array(
                [self._slot_of(int(i)) for i in indices], dtype=np.int64
            )

    def mean_execution_scores(self, indices: Sequence[int]) -> np.ndarray:
        slots = self._gather_slots(indices)
        return self._score_sums[slots] / xp.maximum(self._games[slots], 1)

    def consistency_scores(self, indices: Sequence[int]) -> np.ndarray:
        slots = self._gather_slots(indices)
        return self._rank_sums[slots] / xp.maximum(self._games[slots], 1)

    def combined_rank_order(
        self,
        indices: Sequence[int],
        *,
        use_execution: bool = True,
        use_consistency: bool = True,
    ) -> np.ndarray:
        """Order positions by summed execution- and consistency-score ranks.

        The paper ranks global-phase players by the *summation* of their
        execution-score ranking and consistency-score ranking; the lowest sum
        wins (Sec. 3.4).  Returns positions into ``indices``, best first.
        """
        if not use_execution and not use_consistency:
            raise TournamentError("at least one score must be used for ranking")
        total = np.zeros(len(indices), dtype=float)
        exec_scores = self.mean_execution_scores(indices)
        if use_execution:
            total += rank_with_ties(exec_scores, descending=True)
        if use_consistency:
            total += rank_with_ties(self.consistency_scores(indices), descending=True)
        # Tie-break deterministically on execution score, then index.
        keys = list(zip(total, -exec_scores, [int(i) for i in indices]))
        return np.array(sorted(range(len(indices)), key=lambda p: keys[p]), dtype=np.int64)
