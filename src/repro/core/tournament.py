"""The DarwinGame tuner: the four-phase tournament orchestrator (Alg. 1).

Phases: regional (Swiss) -> global (double elimination) -> playoffs
(barrage) -> final.  Games within a phase round execute on parallel VMs, so
the simulated campaign clock advances by the *longest* game of a round, while
the core-hour ledger bills every game in full — matching how the paper
reports tuning time versus tuning cost.

The orchestrator composes the scheduler/executor engine: each phase adapter
drives a :mod:`repro.formats` scheduler through one shared
:class:`~repro.core.executor.MatchExecutor`, and the config's
:class:`~repro.formats.recipes.TournamentRecipe` (``tournament_format``)
selects which schedulers — the paper's Alg. 1 is the default ``darwin``
recipe, alternates swap the playoff bracket or drop the loser bracket.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.barrage import BarragePlayoffs
from repro.core.config import DarwinGameConfig, auto_regions
from repro.core.double_elimination import DoubleEliminationGlobalPhase
from repro.core.executor import MatchExecutor
from repro.core.records import RecordBook
from repro.core.swiss import SwissRegionalPhase
from repro.errors import TournamentError
from repro.rng import child, ensure_rng, spawn
from repro.space.regions import Region, partition_range
from repro.types import TuningResult

logger = logging.getLogger(__name__)


class DarwinGame:
    """Tournament-based tuner for shared, interference-prone environments.

    Usage::

        app = make_application("redis")
        env = CloudEnvironment(VMSpec.preset("m5.8xlarge"), seed=7)
        result = DarwinGame(DarwinGameConfig(seed=1)).tune(app, env)
        print(result.best_values, result.core_hours)
    """

    name = "DarwinGame"

    def __init__(self, config: Optional[DarwinGameConfig] = None) -> None:
        # Fold the named recipe's phase choices into the flags up front, so
        # every phase below sees one consistent config (a no-op for the
        # default ``darwin`` format).
        self.config = (config or DarwinGameConfig()).apply_recipe()

    # -- phases --------------------------------------------------------------

    def _regional_phase(
        self,
        executor: MatchExecutor,
        rng: np.random.Generator,
        details: dict,
        index_range: Tuple[int, int],
    ) -> List[int]:
        cfg = self.config
        env = executor.env
        start, stop = index_range
        # Region sizing follows the VM's nominal game width, *not* the
        # "all 2-player games" ablation — so that ablation isolates the
        # effect of game width on tuning cost with the region structure
        # held fixed (the paper keeps n_r at 10,000 throughout).
        game_width = max(
            2, min(cfg.players_per_game or min(32, env.vm.vcpus), env.vm.vcpus)
        )
        n_regions = max(1, cfg.n_regions or auto_regions(stop - start, game_width))
        regions = partition_range(
            start, stop, n_regions, interleaved=cfg.interleaved_regions
        )
        swiss = SwissRegionalPhase(
            env, executor.app, cfg, executor.records, executor=executor
        )
        region_rngs = spawn(rng, len(regions))

        entrants: List[int] = []
        durations: List[float] = []
        games = 0
        rounds = 0
        # Regions advance in lockstep: round r of every open region is
        # simulated as one batch (regions play on parallel VMs).
        for result in swiss.run_all(regions, region_rngs):
            entrants.extend(result.winners)
            durations.append(result.elapsed)
            games += result.games
            rounds += result.rounds
        # Regions play in parallel on separate VMs (unbounded fleet); the
        # per-region durations are exposed so users can re-schedule the
        # phase onto a finite fleet with repro.cloud.fleet.
        env.advance(max(durations) if durations else 0.0)
        details["regional"] = {
            "regions": len(regions),
            "games": games,
            "rounds": rounds,
            "winners": len(set(entrants)),
            "region_durations": durations,
        }
        logger.info(
            "regional phase: %d regions, %d games -> %d winners",
            len(regions), games, len(set(entrants)),
        )
        return list(dict.fromkeys(entrants))

    def _direct_entrants(
        self,
        app: ApplicationModel,
        records: RecordBook,
        rng: np.random.Generator,
        details: dict,
        index_range: Tuple[int, int],
    ) -> List[int]:
        """Ablation "w/o regional": sample players straight into the global phase."""
        start, stop = index_range
        n = min(stop - start, self.config.no_regional_entrant_cap)
        block = Region(0, start, stop)
        entrants = [int(i) for i in block.sample(n, child(rng), replace=False)]
        for index in entrants:
            records.get(index)
        details["regional"] = {"regions": 0, "games": 0, "rounds": 0, "winners": n}
        return entrants

    def _global_phase(
        self,
        executor: MatchExecutor,
        entrants: Sequence[int],
        rng: np.random.Generator,
        details: dict,
    ) -> List[int]:
        cfg = self.config
        env, app, records = executor.env, executor.app, executor.records
        if cfg.global_phase:
            phase = DoubleEliminationGlobalPhase(
                env, app, cfg, records, executor=executor
            )
            result = phase.run(entrants, child(rng))
            details["global"] = {
                "entrants": len(entrants),
                "rounds": result.rounds,
                "games": result.games,
                "main_bracket": list(result.main_bracket),
                "wildcard": result.wildcard,
                "loser_bracket_size": result.loser_bracket_size,
            }
            logger.info(
                "global phase: %d entrants -> main bracket %s, wildcard %s",
                len(entrants), list(result.main_bracket), result.wildcard,
            )
            return list(result.playoff_players)

        # Ablation "w/o global": one game among the best regional winners
        # picks the playoff players directly.
        per_game = 2 if cfg.two_player_games_only else max(
            2, min(cfg.players_per_game or min(32, env.vm.vcpus), env.vm.vcpus)
        )
        pool = list(dict.fromkeys(int(p) for p in entrants))
        if len(pool) > per_game:
            order = records.combined_rank_order(
                pool, use_execution=True, use_consistency=False
            )
            pool = [pool[int(p)] for p in order[:per_game]]
        if len(pool) < 2:
            details["global"] = {"entrants": len(entrants), "games": 0}
            return pool
        report = executor.play([pool], label="global", advance_clock=True)[0]
        order = np.argsort(-np.asarray(report.execution_scores), kind="stable")
        qualifiers = [pool[int(p)] for p in order[: cfg.main_bracket_target + 1]]
        details["global"] = {"entrants": len(entrants), "games": 1}
        return qualifiers

    # -- the public API -----------------------------------------------------

    def tune(
        self,
        app: ApplicationModel,
        env: CloudEnvironment,
        *,
        index_range: Optional[Tuple[int, int]] = None,
    ) -> TuningResult:
        """Run the full tournament and return the winning configuration.

        ``index_range`` restricts the tournament to a contiguous slice of the
        search space — how the Sec. 3.6 integration plays a full tournament
        inside each subspace an existing tuner selects.
        """
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        records = RecordBook()
        # One executor runs every phase: one batched play path, one score
        # book, one clock/core-hour accounting point.
        executor = MatchExecutor(env, app, cfg, records)
        details: dict = {}
        if cfg.tournament_format != "darwin":
            details["format"] = cfg.tournament_format
        hours_before = env.ledger.snapshot()
        time_before = env.now
        span = index_range or (0, app.space.size)
        if not 0 <= span[0] < span[1] <= app.space.size:
            raise TournamentError(f"invalid index range {span}")

        if cfg.regional_phase:
            entrants = self._regional_phase(executor, rng, details, span)
        else:
            entrants = self._direct_entrants(app, records, rng, details, span)
        if not entrants:
            raise TournamentError("the regional phase produced no winners")

        if len(entrants) == 1:
            winner = entrants[0]
            details["playoffs"] = {"games": 0}
        else:
            playoff_players = self._global_phase(
                executor, entrants, rng, details
            )
            if len(playoff_players) == 1:
                winner = playoff_players[0]
                details["playoffs"] = {"games": 0}
            else:
                playoffs = BarragePlayoffs(
                    env, app, cfg, records, executor=executor
                )
                playoff_result = playoffs.run(playoff_players)
                final_result = playoffs.final(playoff_result.finalists)
                winner = final_result.winner
                details["playoffs"] = {
                    "players": list(playoff_players),
                    "games": playoff_result.games,
                    "finalists": list(playoff_result.finalists),
                    "runner_up": final_result.runner_up,
                }

        details["phase_core_hours"] = env.ledger.core_hours_by_label()
        logger.info(
            "tournament winner: %d (%d evaluations, %.0f core-hours)",
            int(winner), records.total_evaluations,
            env.ledger.snapshot() - hours_before,
        )
        return TuningResult(
            tuner_name=self.name,
            best_index=int(winner),
            best_values=app.space.values_of(int(winner)),
            evaluations=records.total_evaluations,
            core_hours=env.ledger.snapshot() - hours_before,
            tuning_seconds=env.now - time_before,
            details=details,
        )
