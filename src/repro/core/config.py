"""DarwinGame configuration, including every ablation switch of Fig. 16.

The defaults mirror the paper: work-done deviation ``d = 10%``, early
termination armed after 25% of the work, multi-player games in the early
phases sized to the VM's vCPU count, a Swiss regional phase, a double
elimination global phase judged on execution *and* consistency scores,
barrage playoffs, and a two-player final.

Every "w/o X" variant of Fig. 16 is obtained by flipping one flag here, so
the ablations exercise the same code path as the full system.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import TournamentError
from repro.formats.recipes import TournamentRecipe
from repro.formats.recipes import tournament_format as resolve_tournament_format
from repro.rng import SeedLike


@dataclass(frozen=True)
class DarwinGameConfig:
    """All knobs of the tournament.

    Attributes:
        n_regions: number of regions for the regional phase (the paper's
            ``n_r``; 10,000 at full scale).  ``None`` auto-sizes to roughly
            one region per 256 configurations, capped at 10,000.
        players_per_game: the paper's ``P`` — players co-located per game in
            the regional and global phases.  ``None`` uses the VM vCPU count
            (capped at 32, the paper's main setting).
        work_deviation: the early-termination / winner-band deviation ``d``.
        min_work_for_termination: fraction of work the leader must complete
            before a game may terminate early.
        regional_win_streak: consecutive wins after which a region declares
            its champion ("consistently winning for more than one time").
        max_regional_rounds: hard cap on rounds per region (``None`` derives
            one from the region size).
        main_bracket_target: global phase runs until the main bracket holds
            this many players (paper: three).
        no_regional_entrant_cap: when the regional phase is ablated away,
            at most this many randomly sampled configurations enter the
            global phase directly.
        interleaved_regions: assign every ``n_r``-th index to the same
            region (True, default) instead of contiguous index blocks.
            Contiguous blocks fix the leading parameter digits, making a
            region's members near-clones — kept as an extra ablation.
        early_termination / regional_phase / swiss_style /
        one_winner_per_region / global_phase / double_elimination /
        barrage_playoffs / use_execution_score / use_consistency_score /
        two_player_games_only: the Fig. 16 ablation switches.
        tournament_format: named phase-format recipe from the
            :mod:`repro.formats.recipes` registry.  ``"darwin"`` (default)
            is the paper's Alg. 1; alternates swap the playoff scheduler
            and/or drop the loser bracket, making the tournament's *shape*
            a sweepable axis.  Non-default recipes are applied on top of
            the flags above (see :meth:`apply_recipe`).
        seed: master seed of the tournament's own randomness (player
            selection, pairings); independent of the environment's noise.
    """

    n_regions: Optional[int] = None
    players_per_game: Optional[int] = None
    work_deviation: float = 0.10
    min_work_for_termination: float = 0.25
    regional_win_streak: int = 3
    max_regional_rounds: Optional[int] = None
    main_bracket_target: int = 3
    no_regional_entrant_cap: int = 4096
    interleaved_regions: bool = True
    early_termination: bool = True
    regional_phase: bool = True
    swiss_style: bool = True
    one_winner_per_region: bool = False
    global_phase: bool = True
    double_elimination: bool = True
    barrage_playoffs: bool = True
    use_execution_score: bool = True
    use_consistency_score: bool = True
    two_player_games_only: bool = False
    tournament_format: str = "darwin"
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        resolve_tournament_format(self.tournament_format)  # fail fast on typos
        if not 0.0 < self.work_deviation < 1.0:
            raise TournamentError(
                f"work_deviation must be in (0, 1), got {self.work_deviation}"
            )
        if not 0.0 <= self.min_work_for_termination < 1.0:
            raise TournamentError(
                "min_work_for_termination must be in [0, 1), got "
                f"{self.min_work_for_termination}"
            )
        if self.regional_win_streak < 2:
            raise TournamentError(
                "regional_win_streak must be >= 2 (the champion must win "
                f"'more than one time'), got {self.regional_win_streak}"
            )
        if self.main_bracket_target < 1:
            raise TournamentError(
                f"main_bracket_target must be >= 1, got {self.main_bracket_target}"
            )
        if self.n_regions is not None and self.n_regions < 1:
            raise TournamentError(f"n_regions must be >= 1, got {self.n_regions}")
        if self.players_per_game is not None and self.players_per_game < 2:
            raise TournamentError(
                f"players_per_game must be >= 2, got {self.players_per_game}"
            )
        if not self.use_execution_score and not self.use_consistency_score:
            raise TournamentError(
                "at least one of execution score and consistency score must be used"
            )

    def recipe(self) -> TournamentRecipe:
        """The registered phase-format recipe this config runs under."""
        return resolve_tournament_format(self.tournament_format)

    def with_format(self, name: str) -> "DarwinGameConfig":
        """Return a copy running under the named tournament format."""
        return replace(self, tournament_format=name)

    def apply_recipe(self) -> "DarwinGameConfig":
        """Fold the recipe's phase choices into the ablation flags.

        The ``darwin`` recipe changes nothing — flags (and therefore every
        Fig. 16 ablation, and bit-for-bit results) are exactly the
        pre-recipe behaviour.  Alternate recipes only ever *restrict*
        (e.g. dropping the loser bracket); the playoff scheduler choice is
        read from :meth:`recipe` by the playoff phase directly.
        """
        recipe = self.recipe()
        changes = {}
        if not recipe.swiss_regional and self.swiss_style:
            changes["swiss_style"] = False
        if not recipe.double_elimination_global and self.double_elimination:
            changes["double_elimination"] = False
        return replace(self, **changes) if changes else self

    def with_ablation(self, name: str) -> "DarwinGameConfig":
        """Return a copy with one named Fig. 16 ablation applied."""
        ablations = {
            "full": {},
            "w/o regional": {"regional_phase": False},
            "one-win regional": {"one_winner_per_region": True},
            "w/o Swiss": {"swiss_style": False},
            "w/o global": {"global_phase": False},
            "w/o double eli.": {"double_elimination": False},
            "w/o barrage": {"barrage_playoffs": False},
            "w/o consistency score": {"use_consistency_score": False},
            "w/o exe. score": {"use_execution_score": False},
            "all 2-player games": {"two_player_games_only": True},
            "w/o early termination": {"early_termination": False},
            # Extra ablation (not part of Fig. 16): contiguous index-block
            # regions, whose members share their leading parameter digits.
            "contiguous regions": {"interleaved_regions": False},
        }
        try:
            changes = ablations[name]
        except KeyError:
            raise TournamentError(
                f"unknown ablation {name!r}; available: {sorted(ablations)}"
            ) from None
        return replace(self, **changes)


ABLATION_NAMES = (
    "w/o regional",
    "one-win regional",
    "w/o Swiss",
    "w/o global",
    "w/o double eli.",
    "w/o barrage",
    "w/o consistency score",
    "w/o exe. score",
    "all 2-player games",
    "w/o early termination",
)


def auto_regions(space_size: int, players_per_game: int = 32) -> int:
    """Default region count: ~8 games' worth of players per region, capped at 10k.

    Sizing regions to the game width keeps per-region coverage comparable
    across VM sizes: a 2-vCPU VM plays 2-player games, so its regions hold
    ~16 configurations instead of the ~256 a 32-vCPU VM gets.
    """
    if space_size < 16:
        return space_size
    target = max(16, 8 * players_per_game)
    return max(16, min(10_000, space_size // target))
