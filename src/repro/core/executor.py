"""The executor half of the tournament engine's scheduler/executor split.

Format schedulers (:mod:`repro.formats`) decide *who meets whom*; the
:class:`MatchExecutor` decides *what happens when they do*: every scheduled
round is simulated through the batched ``(games, segments, players)`` tensor
path (:func:`repro.core.game.play_round`), scores are booked into the one
:class:`~repro.core.records.RecordBook`, early termination follows the
config, and the core-hour ledger and simulated campaign clock advance in
one place — games within a round run on parallel VMs, so the clock moves by
the round's *longest* game while the ledger bills every game in full.

Phase adapters hand the executor a :class:`~repro.formats.scheduler.Round`
plus a per-phase judging rule and get back the
:class:`~repro.formats.match.RecordedMatch` es their scheduler consumes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

import repro.xp as xp
from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.game import GameReport, play_round
from repro.core.records import RecordBook
from repro.formats.match import RecordedMatch
from repro.formats.scheduler import Round
from repro.telemetry.events import emit_event, telemetry_enabled

#: Judging rule: (lineup, report) -> position of the game's winner.
Judge = Callable[[Sequence[int], GameReport], int]


class MatchExecutor:
    """Plays scheduler-emitted rounds as batched co-located cloud games."""

    def __init__(
        self,
        env: CloudEnvironment,
        app: ApplicationModel,
        config: DarwinGameConfig,
        records: RecordBook,
    ) -> None:
        self.env = env
        self.app = app
        self.config = config
        self.records = records

    # -- raw lineup rounds ---------------------------------------------------

    def play(
        self,
        lineups: Sequence[Sequence[int]],
        *,
        label: str,
        allow_early_termination: bool = True,
        advance_clock: bool = False,
    ) -> List[GameReport]:
        """One batched round of co-located games; scores booked per game.

        With telemetry on, each round emits a ``round.play`` span: host
        wall time as the span value, plus the round's shape (label, game
        count, early terminations, simulated seconds) as fields.  Off, the
        cost is one flag check.
        """
        if not telemetry_enabled():
            return play_round(
                self.env,
                self.app,
                lineups,
                self.config,
                self.records,
                allow_early_termination=allow_early_termination,
                label=label,
                advance_clock=advance_clock,
            )
        import time as _time

        t0 = _time.perf_counter()
        reports = play_round(
            self.env,
            self.app,
            lineups,
            self.config,
            self.records,
            allow_early_termination=allow_early_termination,
            label=label,
            advance_clock=advance_clock,
        )
        emit_event(
            "round.play",
            type="span",
            value=_time.perf_counter() - t0,
            label=label,
            games=len(reports),
            early_terminated=sum(
                1 for r in reports if r.outcome.early_terminated
            ),
            sim_seconds=round(self.round_elapsed(reports), 6),
        )
        return reports

    def duel(
        self, a: int, b: int, *, label: str, advance_clock: bool = True
    ) -> GameReport:
        """A two-player game played to completion (playoffs and the final)."""
        return self.play(
            [[a, b]],
            label=label,
            allow_early_termination=False,
            advance_clock=advance_clock,
        )[0]

    # -- scheduler rounds ----------------------------------------------------

    def play_scheduled(
        self,
        round_: Round,
        *,
        label: str,
        judge: Optional[Judge] = None,
        allow_early_termination: bool = True,
        advance_clock: bool = False,
    ) -> Tuple[List[RecordedMatch], List[GameReport]]:
        """Play one scheduler round and judge each game into a result.

        Without a ``judge`` the winner is the game's execution-score leader
        (what :class:`~repro.core.records.RecordBook` booked); phases with a
        richer criterion (the global phase's joint execution/consistency
        rank, Fig. 7) pass their own.
        """
        reports = self.play(
            round_.lineups,
            label=label,
            allow_early_termination=allow_early_termination,
            advance_clock=advance_clock,
        )
        results = []
        for match, report in zip(round_.matches, reports):
            winner_pos = (
                judge(match.players, report) if judge is not None
                else report.winner_position
            )
            results.append(self.recorded(report, winner_pos))
        return results, reports

    @staticmethod
    def recorded(report: GameReport, winner_pos: Optional[int] = None) -> RecordedMatch:
        """A game report as the finishing order schedulers consume.

        The judged winner ranks first; everyone else follows in
        execution-score order (stable, deterministic).
        """
        if winner_pos is None:
            winner_pos = report.winner_position
        # The round already computed scores as an ndarray; sorting it directly
        # skips the tuple->array re-copy this used to pay on every game, which
        # multiplies under the stacked executor.
        scores = report.scores
        if scores is None:
            scores = np.asarray(report.execution_scores)
        order = xp.argsort(-scores, kind="stable").tolist()
        ranking = (winner_pos,) + tuple(i for i in order if i != winner_pos)
        return RecordedMatch(players=report.indices, ranking=ranking)

    # -- accounting ----------------------------------------------------------

    def advance_clock(self, seconds: float) -> None:
        """Advance the simulated campaign clock (once per parallel round)."""
        self.env.advance(seconds)

    @staticmethod
    def round_elapsed(reports: Sequence[GameReport]) -> float:
        """A parallel round lasts as long as its longest game."""
        return max((r.elapsed for r in reports), default=0.0)
