"""Playing one game of the tournament.

A game co-locates several configurations on one VM (Sec. 3.2), reads back
the physics-level :class:`~repro.types.GameOutcome`, converts work fractions
into execution scores (work done relative to the fastest player, Fig. 5),
and books the result into the :class:`~repro.core.records.RecordBook`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.records import RecordBook
from repro.errors import TournamentError
from repro.types import GameOutcome


@dataclass(frozen=True)
class GameReport:
    """One played game: who took part, their scores, and the raw outcome."""

    indices: Tuple[int, ...]
    execution_scores: Tuple[float, ...]
    winner_position: int
    outcome: GameOutcome

    @property
    def winner_index(self) -> int:
        return self.indices[self.winner_position]

    @property
    def elapsed(self) -> float:
        return self.outcome.elapsed


def execution_scores_from_work(work: Sequence[float]) -> np.ndarray:
    """Execution score: work done relative to the fastest player (Fig. 5)."""
    arr = np.asarray(work, dtype=float)
    if arr.size == 0:
        raise TournamentError("cannot score an empty game")
    best = float(arr.max())
    if best <= 0:
        raise TournamentError("no player made progress in the game")
    return arr / best


def play_game(
    env: CloudEnvironment,
    app: ApplicationModel,
    indices: Sequence[int],
    config: DarwinGameConfig,
    records: RecordBook,
    *,
    allow_early_termination: bool = True,
    label: str = "game",
    advance_clock: bool = False,
) -> GameReport:
    """Run one co-located game and book its scores.

    ``allow_early_termination`` is overridden to False for playoffs and the
    final, which the paper always plays to completion.  With
    ``advance_clock=False`` (default) the caller advances simulated time once
    per round, because games within a round run on parallel VMs.
    """
    players = [int(i) for i in indices]
    if len(players) < 1:
        raise TournamentError("a game needs at least one player")
    if len(set(players)) != len(players):
        raise TournamentError(f"duplicate players in game: {players}")

    early = allow_early_termination and config.early_termination
    outcome = env.run_colocated(
        app,
        players,
        work_deviation=config.work_deviation if early else None,
        min_work_for_termination=config.min_work_for_termination,
        label=label,
        advance_clock=advance_clock,
    )
    scores = execution_scores_from_work(outcome.work)
    winner_pos = records.record_game(players, scores)
    return GameReport(
        indices=tuple(players),
        execution_scores=tuple(float(s) for s in scores),
        winner_position=winner_pos,
        outcome=outcome,
    )
