"""Playing games of the tournament, one parallel round at a time.

A game co-locates several configurations on one VM (Sec. 3.2), reads back
the physics-level :class:`~repro.types.GameOutcome`, converts work fractions
into execution scores (work done relative to the fastest player, Fig. 5),
and books the result into the :class:`~repro.core.records.RecordBook`.

Games within a round run on parallel VMs, so phase drivers build all of a
round's lineups first and submit them through :func:`play_round`, which
simulates the whole round as one batched tensor computation;
:func:`play_game` is the single-game round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.core.config import DarwinGameConfig
from repro.core.records import RecordBook
from repro.errors import TournamentError
from repro.types import GameOutcome


@dataclass(frozen=True)
class GameReport:
    """One played game: who took part, their scores, and the raw outcome.

    ``scores`` is the ndarray the execution scores were computed as; rankers
    use it to sort without re-building an array from the float tuple.  It is
    excluded from equality so reports still compare by value.
    """

    indices: Tuple[int, ...]
    execution_scores: Tuple[float, ...]
    winner_position: int
    outcome: GameOutcome
    scores: Optional[np.ndarray] = field(default=None, compare=False, repr=False)

    @property
    def winner_index(self) -> int:
        return self.indices[self.winner_position]

    @property
    def elapsed(self) -> float:
        return self.outcome.elapsed


def execution_scores_from_work(work: Sequence[float]) -> np.ndarray:
    """Execution score: work done relative to the fastest player (Fig. 5)."""
    arr = np.asarray(work, dtype=float)
    if arr.size == 0:
        raise TournamentError("cannot score an empty game")
    best = float(arr.max())
    if best <= 0:
        raise TournamentError("no player made progress in the game")
    return arr / best


def play_round(
    env: CloudEnvironment,
    app: ApplicationModel,
    lineups: Sequence[Sequence[int]],
    config: DarwinGameConfig,
    records: RecordBook,
    *,
    allow_early_termination: bool = True,
    label: str = "game",
    advance_clock: bool = False,
) -> List[GameReport]:
    """Run one round of co-located games (one parallel VM each), book scores.

    The whole round is simulated as a single batched tensor computation
    (:meth:`~repro.cloud.environment.CloudEnvironment.run_colocated_batch`);
    scores and records are booked per game in lineup order.  With
    ``advance_clock`` True the clock advances by the round's longest game.

    ``allow_early_termination`` is overridden to False for playoffs and the
    final, which the paper always plays to completion.
    """
    validated: List[List[int]] = []
    for indices in lineups:
        players = [int(i) for i in indices]
        if len(players) < 1:
            raise TournamentError("a game needs at least one player")
        if len(set(players)) != len(players):
            raise TournamentError(f"duplicate players in game: {players}")
        validated.append(players)
    if not validated:
        return []

    early = allow_early_termination and config.early_termination
    outcomes = env.run_colocated_batch(
        app,
        validated,
        work_deviation=config.work_deviation if early else None,
        min_work_for_termination=config.min_work_for_termination,
        label=label,
        advance_clock=advance_clock,
    )
    reports: List[GameReport] = []
    for players, outcome in zip(validated, outcomes):
        scores = execution_scores_from_work(outcome.work)
        winner_pos = records.record_game(players, scores)
        reports.append(
            GameReport(
                indices=tuple(players),
                execution_scores=tuple(scores.tolist()),
                winner_position=winner_pos,
                outcome=outcome,
                scores=scores,
            )
        )
    return reports


def play_game(
    env: CloudEnvironment,
    app: ApplicationModel,
    indices: Sequence[int],
    config: DarwinGameConfig,
    records: RecordBook,
    *,
    allow_early_termination: bool = True,
    label: str = "game",
    advance_clock: bool = False,
) -> GameReport:
    """Run one co-located game and book its scores (a one-game round).

    With ``advance_clock=False`` (default) the caller advances simulated
    time once per round, because games within a round run on parallel VMs.
    """
    return play_round(
        env,
        app,
        [indices],
        config,
        records,
        allow_early_termination=allow_early_termination,
        label=label,
        advance_clock=advance_clock,
    )[0]
