"""Tuning as a service: the ``repro serve`` daemon over :mod:`repro.api`.

The service is a thin HTTP/JSON shell (stdlib ``http.server``) around the
same facade the CLI and library users call — one warm engine per daemon,
per-tenant stores and quotas, Prometheus ``/metrics``.  See
:mod:`repro.service.server` for the route table.
"""

from repro.service.jobs import JobManager, ServiceJob, validate_tenant
from repro.service.server import (
    DEFAULT_TENANT,
    ReproService,
    ServiceConfig,
    TENANT_HEADER,
    serve,
)
from repro.service.tenancy import QuotaExceeded, QuotaLedger, TenantQuota

__all__ = [
    "DEFAULT_TENANT",
    "JobManager",
    "QuotaExceeded",
    "QuotaLedger",
    "ReproService",
    "ServiceConfig",
    "ServiceJob",
    "TENANT_HEADER",
    "TenantQuota",
    "serve",
    "validate_tenant",
]
