"""The ``repro serve`` HTTP/JSON daemon: tuning as a service.

A long-lived :class:`http.server.ThreadingHTTPServer` front end over one
:class:`~repro.service.jobs.JobManager` — stdlib only, no new
dependencies.  Request threads do admission, reads, and rendering; sweeps
execute on the manager's single executor thread against the shared warm
engine (see :mod:`repro.service.jobs` for why that is the design).

Routes (all JSON unless noted)::

    POST   /v1/sweeps              submit {"grid": {...}, "options": {...}}
    GET    /v1/sweeps              list this tenant's jobs
    GET    /v1/sweeps/{id}         job + live status snapshot
    GET    /v1/sweeps/{id}/results paginated records (?offset=&limit=&ok=1)
    GET    /v1/sweeps/{id}/report  summaries (?view=summary|by-scenario|
                                   by-format|failures)
    DELETE /v1/sweeps/{id}         cancel (finished campaigns stay stored)
    GET    /metrics                Prometheus text exposition
    GET    /healthz                liveness probe

Tenancy rides an ``X-Repro-Tenant`` header (default tenant ``public``);
error mapping is uniform: schema violations and unregistered axis entries
are 400 with the reason, quota violations are 429, foreign or unknown job
IDs are 404, and every error body is ``{"error": "..."}``.
"""

from __future__ import annotations

import json
import signal
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro import api
from repro.errors import ReproError
from repro.service.jobs import JobManager
from repro.service.tenancy import QuotaExceeded, TenantQuota
from repro.telemetry import get_logger

_LOG = get_logger("service")

PathLike = Union[str, Path]

#: Header a client names its tenant with; absent = the shared default.
TENANT_HEADER = "X-Repro-Tenant"
DEFAULT_TENANT = "public"

#: Submission bodies above this are refused outright (a grid is a few
#: hundred bytes; megabytes means a confused or hostile client).
MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one daemon instance is configured with."""

    host: str = "127.0.0.1"
    port: int = 8765
    data_root: PathLike = "repro-serve.d"
    options: api.SweepOptions = field(
        default_factory=lambda: api.SweepOptions(telemetry=True)
    )
    quota: TenantQuota = field(default_factory=TenantQuota)


class _HttpError(Exception):
    """Internal route error carrying its HTTP status."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code


def _int_param(params: dict, name: str, default: Optional[int]) -> Optional[int]:
    values = params.get(name)
    if not values:
        return default
    try:
        return int(values[0])
    except ValueError:
        raise _HttpError(400, f"query parameter {name} must be an integer")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning :class:`ReproService`."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass carries the service reference.
    @property
    def service(self) -> "ReproService":
        return self.server.service  # type: ignore[attr-defined]

    @property
    def tenant(self) -> str:
        return self.headers.get(TENANT_HEADER, DEFAULT_TENANT).strip() or (
            DEFAULT_TENANT
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _LOG.debug("%s %s", self.address_string(), format % args)

    # -- plumbing --------------------------------------------------------

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(code, body, "application/json")

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"request body over {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _HttpError(400, "empty request body; expected JSON")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        params = parse_qs(parsed.query)
        route = "/".join(parts[:2]) or "/"
        try:
            self._route(method, parts, params)
            self.service.count_request(method, route, 200)
        except _HttpError as exc:
            self.service.count_request(method, route, exc.code)
            self._send_error_json(exc.code, str(exc))
        except QuotaExceeded as exc:
            self.service.count_request(method, route, 429)
            self._send_error_json(429, str(exc))
        except (api.SchemaError, ReproError) as exc:
            self.service.count_request(method, route, 400)
            self._send_error_json(400, str(exc))
        except KeyError:
            self.service.count_request(method, route, 404)
            self._send_error_json(404, "no such job for this tenant")
        except Exception as exc:  # noqa: BLE001 - the daemon must not die
            _LOG.exception("unhandled error serving %s %s", method, self.path)
            self.service.count_request(method, route, 500)
            self._send_error_json(500, f"internal error: {type(exc).__name__}")

    # -- routing ---------------------------------------------------------

    def _route(self, method: str, parts: list, params: dict) -> None:
        manager = self.service.manager
        if method == "GET" and parts == ["healthz"]:
            self._send_json(200, {"status": "ok"})
            return
        if method == "GET" and parts == ["metrics"]:
            self._send(
                200, manager.render_metrics().encode("utf-8"),
                "text/plain; version=0.0.4",
            )
            return
        if parts[:2] != ["v1", "sweeps"]:
            raise _HttpError(404, f"no route {method} {self.path}")

        if len(parts) == 2:
            if method == "POST":
                job = manager.submit(self.tenant, self._read_json_body())
                self._send_json(202, {"job": job.to_payload()})
                return
            if method == "GET":
                self._send_json(200, {
                    "jobs": [j.to_payload() for j in manager.list(self.tenant)],
                })
                return
            raise _HttpError(405, f"{method} not allowed on /v1/sweeps")

        job_id = parts[2]
        if len(parts) == 3:
            if method == "GET":
                job = manager.get(self.tenant, job_id)
                self._send_json(200, {"job": job.to_payload(status=True)})
                return
            if method == "DELETE":
                job = manager.cancel(self.tenant, job_id)
                self._send_json(200, {"job": job.to_payload()})
                return
            raise _HttpError(405, f"{method} not allowed on a job")

        if len(parts) == 4 and method == "GET" and parts[3] == "results":
            job = manager.get(self.tenant, job_id)
            offset = _int_param(params, "offset", 0) or 0
            limit = _int_param(params, "limit", None)
            only_ok = bool(_int_param(params, "ok", 0))
            records = list(api.iter_results(
                job.handle, offset=offset, limit=limit, only_ok=only_ok,
            ))
            total = len(list(api.iter_results(job.handle, only_ok=only_ok)))
            next_offset = offset + len(records)
            self._send_json(200, {
                "job": job.job_id,
                "total": total,
                "offset": offset,
                "count": len(records),
                "next_offset": next_offset if next_offset < total else None,
                "records": [r.to_payload() for r in records],
            })
            return

        if len(parts) == 4 and method == "GET" and parts[3] == "report":
            job = manager.get(self.tenant, job_id)
            view = params.get("view", ["summary"])[0]
            summary = api.fetch_report(job.handle, view=view)
            self._send_json(200, {
                "job": job.job_id,
                "view": view,
                "report": summary.to_payload(),
            })
            return

        raise _HttpError(404, f"no route {method} {self.path}")

    # -- verb entry points ----------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ReproService:
    """One daemon: an HTTP server bound to a port plus its job manager.

    Usable embedded (tests run it in-process on an ephemeral port via
    ``with ReproService(config) as service: ...``) or as a process through
    :func:`serve` (the ``repro serve`` subcommand).
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        self.manager = JobManager(
            self.config.data_root,
            defaults=self.config.options,
            quota=self.config.quota,
        )
        self._httpd = _Server(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._request_counts: dict = {}
        self._counts_lock = threading.Lock()

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port) — port 0 resolves here."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def count_request(self, method: str, route: str, code: int) -> None:
        """Tally one served request for the ``/metrics`` exposition."""
        key = (method, route, code)
        with self._counts_lock:
            self._request_counts[key] = self._request_counts.get(key, 0) + 1

    def request_counts(self) -> dict:
        with self._counts_lock:
            return dict(self._request_counts)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ReproService":
        """Serve in the background (returns once the port is accepting)."""
        self.manager.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        _LOG.info(
            "repro service listening on %s (data root %s)",
            self.url, self.config.data_root,
        )
        return self

    def close(self, timeout: float = 30.0) -> None:
        """Clean shutdown: stop the listener, then drain the executor."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout)
        self.manager.close(timeout)
        _LOG.info("repro service on %s stopped", self.url)

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(config: Optional[ServiceConfig] = None) -> int:
    """Run a daemon until SIGTERM/SIGINT; the ``repro serve`` entry point.

    Installs signal handlers so an orchestrator's SIGTERM (or a ^C) shuts
    the service down cleanly — listener closed, executor drained, every
    finished campaign checkpointed — and returns 0.
    """
    service = ReproService(config)
    stop = threading.Event()

    def _signalled(signum, frame) -> None:  # noqa: ARG001
        _LOG.info("received signal %d, shutting down", signum)
        stop.set()

    previous = {
        sig: signal.signal(sig, _signalled)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        service.start()
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        service.close()
    return 0
