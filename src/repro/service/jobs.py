"""Job lifecycle for the tuning service: queue, executor, stores, metrics.

The :class:`JobManager` is the daemon's core, and deliberately contains no
HTTP: it accepts already-decoded request payloads, turns them into
:class:`repro.api.JobHandle` jobs via the same facade the CLI uses, and
runs them **one at a time** on a single executor thread.  Serial execution
is what makes the service a *warm* engine rather than a process farm:

* every job executes in the daemon process, so the process-wide
  application LRU (:func:`repro.caching.process_app_cache`) and the
  configured surface cache stay hot across jobs and across tenants —
  the second tenant's sweep starts on surfaces the first tenant paid for;
* the campaign runner's process-global observability state (emitter,
  fault plan, profile dir) is installed and restored per sweep, which is
  only safe when sweeps do not overlap in one process.

Parallelism still happens *inside* a job (``options.jobs`` workers via the
dispatcher), where it is crash-isolated and deterministic.

Stores are laid out per tenant under the service data root —
``<data_root>/<tenant>/<job_id>.<ext>`` — so tenants can never read or
clobber each other's results, and every store remains a plain on-disk
store that ``repro status`` / ``report`` / ``resume`` can use directly
after the daemon stops.
"""

from __future__ import annotations

import queue
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro import api
from repro.errors import ReproError
from repro.service.tenancy import QuotaLedger, TenantQuota
from repro.telemetry import get_logger
from repro.telemetry.events import iter_jsonl_payloads
from repro.telemetry.metrics import MetricsRegistry

_LOG = get_logger("service")

PathLike = Union[str, Path]

#: Tenant names become directory names; keep them boring and safe.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Store filename extension per backend (``None`` backend → jsonl).
_BACKEND_EXT = {None: "jsonl", "jsonl": "jsonl", "sharded": "d", "sqlite": "sqlite"}


def validate_tenant(tenant: str) -> str:
    """A tenant name safe to use as a directory component, or raise."""
    if not _TENANT_RE.match(tenant):
        raise ReproError(
            f"invalid tenant {tenant!r}: use 1-64 characters from "
            f"[A-Za-z0-9._-], starting alphanumeric"
        )
    return tenant


@dataclass
class ServiceJob:
    """One submitted sweep as the service tracks it."""

    job_id: str
    tenant: str
    handle: api.JobHandle
    submitted_unix: float
    charged: bool = False

    @property
    def state(self) -> str:
        return self.handle.state

    def to_payload(self, *, status: bool = False) -> dict:
        """The job as the API returns it (``status=True`` fuses in the
        live store snapshot)."""
        payload = {
            "id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "submitted_unix": round(self.submitted_unix, 3),
            "grid": self.handle.grid.to_dict(),
            "campaigns": self.handle.grid.size,
            "store": str(self.handle.store.path),
            "links": {
                "self": f"/v1/sweeps/{self.job_id}",
                "results": f"/v1/sweeps/{self.job_id}/results",
                "report": f"/v1/sweeps/{self.job_id}/report",
            },
        }
        error = self.handle.error
        if error is not None:
            payload["error"] = f"{type(error).__name__}: {error}"
        if status:
            payload["status"] = self.handle.status().to_payload()
        return payload


class JobManager:
    """Owns every job of one daemon: admission, execution, accounting.

    Args:
        data_root: directory the per-tenant stores live under (created on
            demand).
        defaults: base :class:`repro.api.SweepOptions` requests inherit
            from; a request's ``options`` object overrides field by field.
            ``telemetry`` defaults on service-side so every job's sidecar
            can answer cache/latency questions and feed ``/metrics``.
        quota: per-tenant limits (see :class:`~repro.service.tenancy.
            TenantQuota`); enforced at submission with HTTP 429 semantics.
    """

    def __init__(
        self,
        data_root: PathLike,
        defaults: Optional[api.SweepOptions] = None,
        quota: Optional[TenantQuota] = None,
    ):
        self.data_root = Path(data_root)
        self.defaults = defaults if defaults is not None else api.SweepOptions(
            telemetry=True
        )
        self.ledger = QuotaLedger(quota)
        self._jobs: Dict[str, ServiceJob] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[ServiceJob]]" = queue.Queue()
        self._executor = threading.Thread(
            target=self._drain, name="repro-service-executor", daemon=True
        )
        self._started = False
        self._closing = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "JobManager":
        """Start the executor thread (idempotent)."""
        if not self._started:
            self._started = True
            self._executor.start()
        return self

    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting work and drain: cancel queued and running jobs.

        Finished campaigns are already checkpointed in their stores, so a
        cancelled job is simply a resumable store — nothing is lost by
        shutting down mid-sweep.
        """
        self._closing = True
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if not job.handle.done:
                job.handle.cancel()
        if self._started:
            self._queue.put(None)
            self._executor.join(timeout)

    def _drain(self) -> None:
        """The single executor loop: one warm engine, one job at a time."""
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                job.handle.execute()
            except BaseException:  # noqa: BLE001 - keep the executor alive
                _LOG.exception("job %s raised out of the runner", job.job_id)
            self._settle(job)

    def _settle(self, job: ServiceJob) -> None:
        """Post-execution accounting: bill the tenant for what actually ran."""
        state = job.state
        core_hours = 0.0
        try:
            for record in api.iter_results(job.handle, only_ok=True):
                core_hours += record.core_hours
        except ReproError:
            pass
        if not job.charged:
            job.charged = self.ledger.charge(job.tenant, job.job_id, core_hours)
        _LOG.info(
            "job %s (%s) %s: %.6f core-hours booked, tenant total %.6f",
            job.job_id, job.tenant, state, core_hours,
            self.ledger.spent(job.tenant),
        )

    # -- admission -------------------------------------------------------

    def _active_count(self, tenant: str) -> int:
        return sum(
            1 for j in self._jobs.values()
            if j.tenant == tenant and not j.handle.done
        )

    def _store_path(self, tenant: str, job_id: str, options) -> Path:
        ext = _BACKEND_EXT.get(options.store_backend, "jsonl")
        return self.data_root / tenant / f"{job_id}.{ext}"

    def submit(self, tenant: str, payload: dict) -> ServiceJob:
        """Admit one request payload as a job; the daemon's POST handler.

        Raises :class:`~repro.api.SchemaError` / :class:`~repro.errors.
        ReproError` for malformed or unregistered requests (HTTP 400) and
        :class:`~repro.service.tenancy.QuotaExceeded` past a quota (429).
        Resubmitting a grid the tenant already has is idempotent: the
        existing job is returned instead of a duplicate being queued — and
        a *finished* job whose store is incomplete (cancelled, crashed, or
        an extended grid) is requeued, which is exactly ``repro resume``
        through the API.
        """
        validate_tenant(tenant)
        if self._closing:
            raise ReproError("service is shutting down; resubmit later")
        api.validate_payload(payload, api.SWEEP_REQUEST_SCHEMA, path="$")
        grid = api.grid_from_payload(payload["grid"])
        options = api.options_from_payload(
            payload.get("options", {}), defaults=self.defaults
        )
        job_id = api.job_id_for(grid, salt=tenant)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None and not existing.handle.done:
                return existing
            self.ledger.check_submission(tenant, self._active_count(tenant))
            store_path = self._store_path(tenant, job_id, options)
            store_path.parent.mkdir(parents=True, exist_ok=True)
            handle = api.JobHandle(
                grid=grid,
                options=options,
                store=api.open_store(
                    store_path,
                    backend=options.store_backend,
                    shards=options.shards,
                ),
                job_id=job_id,
            )
            job = ServiceJob(
                job_id=job_id,
                tenant=tenant,
                handle=handle,
                submitted_unix=time.time(),
            )
            self._jobs[job_id] = job
            if job_id not in self._order:
                self._order.append(job_id)
        self._queue.put(job)
        return job

    # -- reads -----------------------------------------------------------

    def get(self, tenant: str, job_id: str) -> ServiceJob:
        """The tenant's job, or :class:`KeyError` (the daemon's 404).

        Tenancy check included: another tenant's job ID is as invisible as
        a nonexistent one.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None or job.tenant != tenant:
            raise KeyError(job_id)
        return job

    def list(self, tenant: str) -> List[ServiceJob]:
        """The tenant's jobs, oldest first."""
        with self._lock:
            return [
                self._jobs[jid] for jid in self._order
                if self._jobs[jid].tenant == tenant
            ]

    def cancel(self, tenant: str, job_id: str) -> ServiceJob:
        """Cancel a job (queued: never starts; running: stops between
        campaigns).  The store keeps every finished campaign."""
        job = self.get(tenant, job_id)
        job.handle.cancel()
        return job

    # -- metrics ---------------------------------------------------------

    def render_metrics(self) -> str:
        """The Prometheus text exposition for ``/metrics``.

        Replays every job's telemetry sidecar through the one shared
        :class:`~repro.telemetry.metrics.MetricsRegistry` ingest path, then
        appends service-level gauges (job states, per-tenant core-hours) —
        so the numbers here and in ``repro report --metrics`` can never
        disagree about what an event means.
        """
        registry = MetricsRegistry()
        with self._lock:
            jobs = [self._jobs[jid] for jid in self._order]
        for job in jobs:
            store = job.handle.store
            try:
                sidecar = store.sidecar_path("telemetry")
            except ReproError:  # pragma: no cover - all backends have one
                continue
            for payload in iter_jsonl_payloads(sidecar):
                if payload.get("kind") == "telemetry":
                    registry.ingest(payload)
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        for state, count in sorted(by_state.items()):
            registry.gauge("service_jobs", state=state).set(float(count))
        for tenant, hours in self.ledger.to_payload().items():
            registry.gauge("service_core_hours", tenant=tenant).set(hours)
        return registry.render_text()
