"""Per-tenant rate and quota accounting for the tuning service.

The daemon serves many tenants from one warm engine; what keeps that fair
is the same accounting idiom the simulator itself uses for tuning cost —
:class:`repro.cloud.accounting.CoreHourLedger` books ``vcpus * seconds``
per label, and here every tenant gets one ledger with one label per job.
Two independent limits, both enforced at submission time (HTTP 429):

* **core-hour quota** — a tenant whose finished jobs have already consumed
  their configured core-hour budget cannot submit more work until the
  operator raises the budget (or restarts the daemon; quotas are
  per-process, like the warm caches they protect).
* **active-job cap** — a tenant may only have so many jobs queued or
  running at once, so a single client cannot monopolise the executor by
  flooding the queue.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cloud.accounting import CoreHourLedger
from repro.errors import ReproError


class QuotaExceeded(ReproError):
    """A tenant's submission exceeds its quota (HTTP 429)."""


@dataclass(frozen=True)
class TenantQuota:
    """The per-tenant limits one daemon enforces.

    ``core_hours`` is the tuning budget each tenant may consume before
    further submissions are refused (``None`` = unmetered).  ``max_active``
    caps a tenant's queued-plus-running jobs.
    """

    core_hours: Optional[float] = None
    max_active: int = 8


class QuotaLedger:
    """Thread-safe per-tenant core-hour accounting over CoreHourLedgers.

    One :class:`~repro.cloud.accounting.CoreHourLedger` per tenant, one
    label per finished job — so double-charging a re-executed job is
    structurally impossible (booking under an existing label is refused),
    and a per-job cost breakdown falls out of
    :meth:`~repro.cloud.accounting.CoreHourLedger.core_hours_by_label`.
    """

    def __init__(self, quota: Optional[TenantQuota] = None):
        self.quota = quota if quota is not None else TenantQuota()
        self._ledgers: Dict[str, CoreHourLedger] = {}
        self._lock = threading.Lock()

    def _ledger(self, tenant: str) -> CoreHourLedger:
        ledger = self._ledgers.get(tenant)
        if ledger is None:
            ledger = self._ledgers[tenant] = CoreHourLedger()
        return ledger

    def charge(self, tenant: str, job_id: str, core_hours: float) -> bool:
        """Book one finished job's cost against its tenant, idempotently.

        Returns ``False`` (and books nothing) if this job was already
        charged — the executor may observe one job's completion more than
        once across resubmissions.
        """
        with self._lock:
            ledger = self._ledger(tenant)
            if job_id in ledger.core_hours_by_label():
                return False
            if core_hours > 0:
                ledger.book(vcpus=1, seconds=core_hours * 3600.0, label=job_id)
            return True

    def spent(self, tenant: str) -> float:
        """Core-hours this tenant's finished jobs have consumed so far."""
        with self._lock:
            ledger = self._ledgers.get(tenant)
            return ledger.core_hours if ledger is not None else 0.0

    def remaining(self, tenant: str) -> Optional[float]:
        """Core-hours left in the tenant's budget (``None`` = unmetered)."""
        budget = self.quota.core_hours
        if budget is None:
            return None
        return budget - self.spent(tenant)

    def check_submission(self, tenant: str, active_jobs: int) -> None:
        """Admission control for one new submission; raises
        :class:`QuotaExceeded` (the daemon's 429) when a limit is hit."""
        if active_jobs >= self.quota.max_active:
            raise QuotaExceeded(
                f"tenant {tenant!r} already has {active_jobs} active job(s) "
                f"(limit {self.quota.max_active}); wait for one to finish "
                f"or cancel it"
            )
        remaining = self.remaining(tenant)
        if remaining is not None and remaining <= 0.0:
            raise QuotaExceeded(
                f"tenant {tenant!r} has consumed its core-hour quota "
                f"({self.spent(tenant):.6f} of {self.quota.core_hours} "
                f"core-hours used); raise --quota-core-hours to continue"
            )

    def to_payload(self) -> dict:
        """Per-tenant spend as plain JSON (for the daemon's status page)."""
        with self._lock:
            return {
                tenant: round(ledger.core_hours, 9)
                for tenant, ledger in sorted(self._ledgers.items())
            }
