"""GROMACS with the water-cut benchmark (Table 1, row 2).

Molecular-dynamics runtime is dominated by the neighbour-search and
electrostatics settings; the kernel scheduling knobs matter because GROMACS
is tightly multi-threaded.  The full-scale space has 3,801,600 points
(paper: 3.8 million).
"""

from __future__ import annotations

from typing import List

from repro.apps.model import ApplicationModel
from repro.apps.scaling import Scale, apply_scale, scale_label
from repro.apps.surfaces import PerformanceSurface, SurfaceSpec
from repro.rng import SeedLike
from repro.space.parameters import Parameter, categorical, integer_range, value_grid
from repro.space.space import SearchSpace

SURFACE_SEED = 202

# Per-parameter level cap for the "bench" scale (space of ~260k points).
BENCH_CAP = 4

# Fig. 10: GROMACS executions range up to ~2800 s; optimum near 700 s.
SPEC = SurfaceSpec(t_min=700.0, t_max=2800.0)


def build_parameters() -> List[Parameter]:
    """GROMACS tunables, major parameters first."""
    return [
        # -- major knobs -------------------------------------------------
        categorical("integrator", ("md", "md-vv", "sd", "bd")),
        categorical(
            "coulombtype",
            ("PME", "Cut-off", "Ewald", "Reaction-Field", "PME-Switch"),
        ),
        categorical("cutoff-scheme", ("Verlet", "group")),
        # -- minor knobs -------------------------------------------------
        integer_range("nstlist", 10, 90, step=10),
        value_grid("fourier_spacing", 0.08, 0.20, 11),
        categorical("ns_type", ("grid", "simple")),
        categorical("io-scheduler", ("none", "mq-deadline", "kyber", "bfq"), kind="system"),
        categorical("vm.swappiness", (0, 10, 30, 60, 100), kind="system"),
        categorical(
            "kernel.sched_migration_cost_ns",
            (50000, 100000, 250000, 500000, 1000000, 5000000),
            kind="system",
        ),
        categorical("vm.dirty_ratio", (10, 20, 30, 40), kind="system"),
    ]


def make_gromacs(scale: Scale = "bench", seed: SeedLike = SURFACE_SEED) -> ApplicationModel:
    """Build the GROMACS application model at the requested scale."""
    cap: Scale = BENCH_CAP if scale == "bench" else scale
    space = SearchSpace(apply_scale(build_parameters(), cap))
    surface = PerformanceSurface(space, SPEC, seed)
    return ApplicationModel(
        "gromacs",
        space,
        surface,
        work_metric="percentage of trajectory output produced",
        scale=scale_label(scale),
    )
