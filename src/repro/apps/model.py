"""The application abstraction every tuner works against.

An :class:`ApplicationModel` bundles a search space with a performance
surface and exposes exactly what a real tuning harness can see:

* ``true_time(indices)`` — interference-free execution time (the simulator's
  ground truth; in the paper this is measurable only on dedicated hardware),
* ``sensitivity(indices)`` — how interference inflates a run (never visible
  to tuners directly, only through noisy observations), and
* oracle helpers (:meth:`optimal`, :meth:`best_robust`) computed by scanning
  the full space — the "practically infeasible" comparison points of Sec. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.apps.surfaces import PerformanceSurface
from repro.errors import ReproError
from repro.space.space import SearchSpace

#: A surface loader returns ``(true_time, sensitivity)`` full-space arrays
#: (e.g. read from :mod:`repro.caching`'s disk tier) or ``None`` on a miss.
SurfaceLoader = Callable[[], Optional[Tuple[np.ndarray, np.ndarray]]]


@dataclass(frozen=True)
class OraclePoint:
    """A ground-truth reference configuration (index + dedicated-env time)."""

    index: int
    true_time: float
    sensitivity: float


# Spaces up to this size get a lazy full-array memo of the two surface
# quantities (two float64 arrays, ≤ 64 MB at the limit).  Tournament rounds
# re-evaluate the same lineups game after game, so the memo turns repeated
# surface evaluations into array gathers.  Larger spaces fall back to direct
# evaluation — their tuners touch a vanishing fraction of the space anyway.
_FULL_MEMO_LIMIT = 4_194_304


def _memoised(
    memo: np.ndarray, seen: np.ndarray, idx: np.ndarray, compute
) -> np.ndarray:
    """Gather ``idx`` from ``memo``, computing not-yet-seen entries once.

    Seen-ness is an explicit boolean mask, not a NaN sentinel: an entry whose
    *computed value* is non-finite would match a NaN sentinel forever and be
    recomputed on every gather — and a disk-persisted memo could not tell
    "never computed" from "computed as NaN".
    """
    missing = ~seen[idx]
    if missing.any():
        fill = np.unique(idx[missing])
        memo[fill] = compute(fill)
        seen[fill] = True
    return memo[idx]


class ApplicationModel:
    """A tunable application: search space + performance surface + metadata.

    Attributes:
        name: application name (``"redis"``, ``"gromacs"``, ...).
        space: the tuning search space (Table 1 parameters).
        surface: the synthetic performance surface.
        work_metric: human-readable description of the progress counter used
            for early termination (Sec. 4: requests served, frames encoded,
            fraction of output produced).
    """

    def __init__(
        self,
        name: str,
        space: SearchSpace,
        surface: PerformanceSurface,
        *,
        work_metric: str = "fraction of work completed",
        scale: str = "custom",
    ) -> None:
        self.name = name
        self.space = space
        self.surface = surface
        self.work_metric = work_metric
        self.scale = scale
        self._time_memo: Optional[np.ndarray] = None
        self._time_seen: Optional[np.ndarray] = None
        self._sens_memo: Optional[np.ndarray] = None
        self._sens_seen: Optional[np.ndarray] = None
        self._surface_loader: Optional[SurfaceLoader] = None
        self._loader_probed = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ApplicationModel({self.name!r}, size={self.space.size}, "
            f"scale={self.scale!r})"
        )

    # -- the two physical quantities -------------------------------------

    def _compute_true_time(self, idx: np.ndarray) -> np.ndarray:
        return self.surface.times_of_levels(self.space.levels_matrix(idx))

    def _compute_sensitivity(self, idx: np.ndarray) -> np.ndarray:
        return self.surface.sensitivities(idx)

    def _can_memo(self, idx: np.ndarray) -> bool:
        """Memoise in-range lookups of small spaces; let the direct path
        raise naturally on out-of-range indices."""
        return (
            self.space.size <= _FULL_MEMO_LIMIT
            and idx.ndim == 1
            and idx.size > 0
            and bool(np.all((idx >= 0) & (idx < self.space.size)))
        )

    def _ensure_memos(self) -> None:
        """Allocate the memo arrays, consulting the attached cache first."""
        if self._time_memo is not None:
            return
        if self._surface_loader is not None and not self._loader_probed:
            self._loader_probed = True
            loaded = self._surface_loader()
            if loaded is not None:
                self.load_surfaces(*loaded)
                return
        self._time_memo = np.empty(self.space.size)
        self._time_seen = np.zeros(self.space.size, dtype=bool)
        self._sens_memo = np.empty(self.space.size)
        self._sens_seen = np.zeros(self.space.size, dtype=bool)

    def true_time(self, indices) -> np.ndarray:
        """Interference-free execution time (seconds) of each configuration."""
        idx = np.asarray(indices, dtype=np.int64)
        if not self._can_memo(idx):
            return self._compute_true_time(idx)
        self._ensure_memos()
        return _memoised(
            self._time_memo, self._time_seen, idx, self._compute_true_time
        )

    def sensitivity(self, indices) -> np.ndarray:
        """Noise sensitivity of each configuration (0 = immune)."""
        idx = np.asarray(indices, dtype=np.int64)
        if not self._can_memo(idx):
            return self._compute_sensitivity(idx)
        self._ensure_memos()
        return _memoised(
            self._sens_memo, self._sens_seen, idx, self._compute_sensitivity
        )

    # -- persisted surfaces (the repro.caching disk tier) -----------------

    @property
    def memoisable(self) -> bool:
        """Whether the space is small enough for full surface tables."""
        return self.space.size <= _FULL_MEMO_LIMIT

    @property
    def surfaces_complete(self) -> bool:
        """True once every configuration's surface values are memoised."""
        return (
            self._time_seen is not None
            and bool(self._time_seen.all())
            and bool(self._sens_seen.all())
        )

    def set_surface_loader(self, loader: Optional[SurfaceLoader]) -> None:
        """Attach a lazy source of full surface tables (a cache handle).

        The loader is consulted at most once, the first time a memoisable
        query needs the tables; a miss (``None``) falls back to ordinary
        incremental memoisation.
        """
        self._surface_loader = loader
        self._loader_probed = False

    def load_cached_surfaces(self) -> bool:
        """Probe the attached loader now (prewarm); True if tables are full."""
        if self.memoisable:
            self._ensure_memos()
        return self.surfaces_complete

    def export_surfaces(self) -> Dict[str, np.ndarray]:
        """Complete and return the full-space surface tables.

        Computes any not-yet-seen entries (chunked, so peak memory stays
        bounded) and returns ``{"true_time", "sensitivity"}`` arrays of
        length ``space.size`` — the payload :mod:`repro.caching` persists.
        """
        if not self.memoisable:
            raise ReproError(
                f"{self.name}({self.scale}) space of {self.space.size} points "
                f"exceeds the {_FULL_MEMO_LIMIT}-point surface-table limit"
            )
        for chunk in self.space.iter_chunks():
            self.true_time(chunk)
            self.sensitivity(chunk)
        return {
            "true_time": self._time_memo.copy(),
            "sensitivity": self._sens_memo.copy(),
        }

    def load_surfaces(
        self, true_time: np.ndarray, sensitivity: np.ndarray
    ) -> None:
        """Install full-space surface tables (inverse of :meth:`export_surfaces`).

        Validates shape and dtype; the caller (the cache) is responsible for
        only feeding back tables produced by an identical surface — see
        :meth:`repro.apps.surfaces.PerformanceSurface.content_hash`.
        """
        times = np.ascontiguousarray(true_time, dtype=np.float64)
        sens = np.ascontiguousarray(sensitivity, dtype=np.float64)
        for label, arr in (("true_time", times), ("sensitivity", sens)):
            if arr.shape != (self.space.size,):
                raise ReproError(
                    f"{label} table shape {arr.shape} does not match "
                    f"{self.name}({self.scale}) space of {self.space.size} points"
                )
        self._time_memo = times
        self._time_seen = np.ones(self.space.size, dtype=bool)
        self._sens_memo = sens
        self._sens_seen = np.ones(self.space.size, dtype=bool)

    def is_robust(self, indices) -> np.ndarray:
        """Whether each configuration belongs to the interference-immune subset."""
        return self.surface.robust_mask(np.asarray(indices, dtype=np.int64))

    # -- oracle scans ------------------------------------------------------

    def _scan(self, mask_robust: bool) -> OraclePoint:
        best_idx: Optional[int] = None
        best_time = np.inf
        for chunk in self.space.iter_chunks():
            # Route through true_time so the scan both benefits from and
            # (on small spaces) populates the memoised surface tables —
            # a prewarmed cache turns the whole scan into array gathers.
            times = self.true_time(chunk)
            if mask_robust:
                robust = self.surface.robust_mask(chunk)
                times = np.where(robust, times, np.inf)
            pos = int(np.argmin(times))
            if times[pos] < best_time:
                best_time = float(times[pos])
                best_idx = int(chunk[pos])
        assert best_idx is not None
        sens = float(self.sensitivity(np.array([best_idx]))[0])
        return OraclePoint(index=best_idx, true_time=best_time, sensitivity=sens)

    @cached_property
    def optimal(self) -> OraclePoint:
        """The paper's *optimal configuration*: global minimum true time.

        Determined by exhaustive scan of the space in a dedicated (noise-free)
        environment — exactly the infeasible-in-practice procedure Sec. 2
        describes for establishing the comparison point.
        """
        return self._scan(mask_robust=False)

    @cached_property
    def best_robust(self) -> OraclePoint:
        """Fastest configuration among the low-variation (robust) subset.

        This is the kind of configuration a desirable tuner should return
        (Takeaway II); DarwinGame's output is expected to land at or near it.
        """
        return self._scan(mask_robust=True)

    def optimality_gap_percent(self, index: int) -> float:
        """How far (in % of true time) a configuration is from the optimum."""
        t = float(self.true_time(np.array([index]))[0])
        return 100.0 * (t - self.optimal.true_time) / self.optimal.true_time
