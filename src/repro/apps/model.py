"""The application abstraction every tuner works against.

An :class:`ApplicationModel` bundles a search space with a performance
surface and exposes exactly what a real tuning harness can see:

* ``true_time(indices)`` — interference-free execution time (the simulator's
  ground truth; in the paper this is measurable only on dedicated hardware),
* ``sensitivity(indices)`` — how interference inflates a run (never visible
  to tuners directly, only through noisy observations), and
* oracle helpers (:meth:`optimal`, :meth:`best_robust`) computed by scanning
  the full space — the "practically infeasible" comparison points of Sec. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

import numpy as np

from repro.apps.surfaces import PerformanceSurface
from repro.space.space import SearchSpace


@dataclass(frozen=True)
class OraclePoint:
    """A ground-truth reference configuration (index + dedicated-env time)."""

    index: int
    true_time: float
    sensitivity: float


# Spaces up to this size get a lazy full-array memo of the two surface
# quantities (two float64 arrays, ≤ 64 MB at the limit).  Tournament rounds
# re-evaluate the same lineups game after game, so the memo turns repeated
# surface evaluations into array gathers.  Larger spaces fall back to direct
# evaluation — their tuners touch a vanishing fraction of the space anyway.
_FULL_MEMO_LIMIT = 4_194_304


def _memoised(
    memo: np.ndarray, idx: np.ndarray, compute
) -> np.ndarray:
    """Gather ``idx`` from ``memo``, computing not-yet-seen entries once."""
    gathered = memo[idx]
    missing = np.isnan(gathered)
    if missing.any():
        fill = np.unique(idx[missing])
        memo[fill] = compute(fill)
        gathered = memo[idx]
    return gathered


class ApplicationModel:
    """A tunable application: search space + performance surface + metadata.

    Attributes:
        name: application name (``"redis"``, ``"gromacs"``, ...).
        space: the tuning search space (Table 1 parameters).
        surface: the synthetic performance surface.
        work_metric: human-readable description of the progress counter used
            for early termination (Sec. 4: requests served, frames encoded,
            fraction of output produced).
    """

    def __init__(
        self,
        name: str,
        space: SearchSpace,
        surface: PerformanceSurface,
        *,
        work_metric: str = "fraction of work completed",
        scale: str = "custom",
    ) -> None:
        self.name = name
        self.space = space
        self.surface = surface
        self.work_metric = work_metric
        self.scale = scale
        self._time_memo: Optional[np.ndarray] = None
        self._sens_memo: Optional[np.ndarray] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ApplicationModel({self.name!r}, size={self.space.size}, "
            f"scale={self.scale!r})"
        )

    # -- the two physical quantities -------------------------------------

    def _compute_true_time(self, idx: np.ndarray) -> np.ndarray:
        return self.surface.times_of_levels(self.space.levels_matrix(idx))

    def _compute_sensitivity(self, idx: np.ndarray) -> np.ndarray:
        return self.surface.sensitivities(idx)

    def _can_memo(self, idx: np.ndarray) -> bool:
        """Memoise in-range lookups of small spaces; let the direct path
        raise naturally on out-of-range indices."""
        return (
            self.space.size <= _FULL_MEMO_LIMIT
            and idx.ndim == 1
            and idx.size > 0
            and bool(np.all((idx >= 0) & (idx < self.space.size)))
        )

    def true_time(self, indices) -> np.ndarray:
        """Interference-free execution time (seconds) of each configuration."""
        idx = np.asarray(indices, dtype=np.int64)
        if not self._can_memo(idx):
            return self._compute_true_time(idx)
        if self._time_memo is None:
            self._time_memo = np.full(self.space.size, np.nan)
        return _memoised(self._time_memo, idx, self._compute_true_time)

    def sensitivity(self, indices) -> np.ndarray:
        """Noise sensitivity of each configuration (0 = immune)."""
        idx = np.asarray(indices, dtype=np.int64)
        if not self._can_memo(idx):
            return self._compute_sensitivity(idx)
        if self._sens_memo is None:
            self._sens_memo = np.full(self.space.size, np.nan)
        return _memoised(self._sens_memo, idx, self._compute_sensitivity)

    def is_robust(self, indices) -> np.ndarray:
        """Whether each configuration belongs to the interference-immune subset."""
        return self.surface.robust_mask(np.asarray(indices, dtype=np.int64))

    # -- oracle scans ------------------------------------------------------

    def _scan(self, mask_robust: bool) -> OraclePoint:
        best_idx: Optional[int] = None
        best_time = np.inf
        for chunk in self.space.iter_chunks():
            levels = self.space.levels_matrix(chunk)
            times = self.surface.times_of_levels(levels)
            if mask_robust:
                robust = self.surface.robust_mask(chunk)
                times = np.where(robust, times, np.inf)
            pos = int(np.argmin(times))
            if times[pos] < best_time:
                best_time = float(times[pos])
                best_idx = int(chunk[pos])
        assert best_idx is not None
        sens = float(self.sensitivity(np.array([best_idx]))[0])
        return OraclePoint(index=best_idx, true_time=best_time, sensitivity=sens)

    @cached_property
    def optimal(self) -> OraclePoint:
        """The paper's *optimal configuration*: global minimum true time.

        Determined by exhaustive scan of the space in a dedicated (noise-free)
        environment — exactly the infeasible-in-practice procedure Sec. 2
        describes for establishing the comparison point.
        """
        return self._scan(mask_robust=False)

    @cached_property
    def best_robust(self) -> OraclePoint:
        """Fastest configuration among the low-variation (robust) subset.

        This is the kind of configuration a desirable tuner should return
        (Takeaway II); DarwinGame's output is expected to land at or near it.
        """
        return self._scan(mask_robust=True)

    def optimality_gap_percent(self, index: int) -> float:
        """How far (in % of true time) a configuration is from the optimum."""
        t = float(self.true_time(np.array([index]))[0])
        return 100.0 * (t - self.optimal.true_time) / self.optimal.true_time
