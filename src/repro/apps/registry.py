"""Application registry: build any evaluated application by name."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.apps.ffmpeg_app import make_ffmpeg
from repro.apps.gromacs_app import make_gromacs
from repro.apps.lammps_app import make_lammps
from repro.apps.model import ApplicationModel
from repro.apps.redis_app import make_redis
from repro.apps.scaling import Scale
from repro.errors import ReproError
from repro.rng import SeedLike

APPLICATION_NAMES: Tuple[str, ...] = ("redis", "gromacs", "ffmpeg", "lammps")

_FACTORIES: Dict[str, Callable[..., ApplicationModel]] = {
    "redis": make_redis,
    "gromacs": make_gromacs,
    "ffmpeg": make_ffmpeg,
    "lammps": make_lammps,
}


def make_application(
    name: str,
    scale: Scale = "bench",
    seed: Optional[SeedLike] = None,
    *,
    cache=None,
) -> ApplicationModel:
    """Build one of the paper's four applications.

    Args:
        name: ``"redis"``, ``"gromacs"``, ``"ffmpeg"`` or ``"lammps"``.
        scale: ``"full"`` (paper-sized space), ``"bench"``, ``"test"``, or an
            integer per-parameter level cap (see :mod:`repro.apps.scaling`).
        seed: optional override of the application's canonical surface seed
            (used to generate alternative-universe surfaces in robustness
            tests).
        cache: optional :class:`repro.caching.SurfaceCache` handle; the
            model lazily pulls its persisted surface tables from it instead
            of recomputing them (content-addressed, so a seed override or
            recalibration can never be served stale tables).
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ReproError(
            f"unknown application {name!r}; available: {list(APPLICATION_NAMES)}"
        ) from None
    app = factory(scale=scale) if seed is None else factory(scale=scale, seed=seed)
    if cache is not None:
        cache.install(app)
    return app
