"""Synthetic application performance surfaces.

A surface assigns every configuration of a search space two numbers:

* ``true_time`` — the interference-free execution time the paper calls the
  configuration's performance in a *dedicated* environment, and
* ``sensitivity`` — how strongly interference inflates that time
  (``observed = true * (1 + sensitivity * level)``).

The construction encodes the three empirical facts of Sec. 2 that every
experiment depends on:

1. **Wide spread, rare optima** (Fig. 1 left).  A few *major* parameters
   have bimodal level effects: a small fraction of their levels are good,
   and a single bad major level alone at least doubles execution time.
   Configurations therefore split into a rare "good cluster" (all majors
   good; a few percent of the space, spanning roughly [1x, 1.9x] of the
   optimum) and a bulk at >= 2x — reproducing the paper's observation that
   more than 93% of configurations run at least twice as long as the best.
2. **Faster is more fragile** (Fig. 2).  Sensitivity grows as the normalised
   quality ``z`` approaches the optimum: highly optimised executions push the
   system near its resource limits.  On top of the trend, every
   configuration carries an idiosyncratic sensitivity factor, so equally
   fast configurations can react very differently to interference.
3. **Rare robust sweet spots** (Fig. 2's blue markers).  A small, *scattered*
   subset of configurations (selected by a deterministic hash of the index,
   so the property has no spatial structure in the parameter lattice) is
   nearly immune to interference.  Because the subset is unstructured, no
   surrogate fitted to solo-run observations can learn where it lies — the
   only way to identify its members is to compare configurations repeatedly
   under shared noise, which is precisely DarwinGame's tournament.

Everything is vectorised over arrays of level matrices (the hot path for the
exhaustive baseline and the oracle scan).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass
from typing import List, Tuple

import numpy as np
from scipy.special import ndtri

from repro.errors import CalibrationError, SpaceError
from repro.rng import SeedLike, ensure_rng
from repro.space.space import SearchSpace


@dataclass(frozen=True)
class SurfaceSpec:
    """Tunable constants of a performance surface.

    Attributes:
        t_min / t_max: target execution-time range in seconds (dedicated
            environment), taken from the paper's reported per-app ranges.
        n_major: how many leading parameters carry bimodal (needle) effects.
        major_good_fraction: fraction of a major parameter's levels that are
            good; the rest carry a >= 2x time penalty.
        good_cluster_span: quality span (in z units) of the all-majors-good
            cluster; 0.45 puts the cluster's slowest configurations at about
            1.9x the optimum, just under the paper's 2x threshold.
        minor_skew: exponent < 1 skewing minor-level effects toward "bad".
        n_interactions: number of random pairwise interaction tables.
        interaction_scale: amplitude of interaction effects (fraction of a
            typical minor weight).
        s_lo / s_hi: sensitivity of the slowest / fastest configurations.
        s_exponent: curvature of sensitivity growth toward the optimum.
        idiosyncrasy: log-std of the per-configuration sensitivity factor
            (the unexplained spread of Fig. 2's scatter).
        robust_fraction: fraction of configurations that are nearly immune
            to interference (Fig. 2's blue markers), scattered through the
            space by a deterministic index hash.
        robust_factor: multiplier applied to the sensitivity of robust
            configurations.
        robust_exclusion: configurations with quality ``z`` below this are
            never robust — the very fastest executions push the system to
            its resource limits and stay fragile (Sec. 2), which keeps the
            low-time/low-variation trade-off real: a tuner must give up a
            few percent of dedicated-environment speed to buy stability.
        minor_tie_factor: the second-best level of every minor parameter is
            scaled this close to the best one, creating a plateau of many
            near-optimal (fragile) configurations — the population whose
            lucky quiet-time samples mislead interference-unaware tuners.
    """

    t_min: float
    t_max: float
    n_major: int = 3
    major_good_fraction: float = 0.25
    good_cluster_span: float = 0.45
    minor_skew: float = 0.35
    n_interactions: int = 3
    interaction_scale: float = 0.08
    s_lo: float = 0.12
    s_hi: float = 0.90
    s_exponent: float = 1.3
    idiosyncrasy: float = 0.35
    robust_fraction: float = 0.035
    robust_factor: float = 0.04
    robust_exclusion: float = 0.025
    minor_tie_factor: float = 0.12

    def __post_init__(self) -> None:
        if not 0 < self.t_min < self.t_max:
            raise CalibrationError(
                f"need 0 < t_min < t_max, got ({self.t_min}, {self.t_max})"
            )
        if not 0.0 <= self.robust_factor <= 1.0:
            raise CalibrationError("robust_factor must be in [0, 1]")
        if not 0.0 < self.robust_fraction < 1.0:
            raise CalibrationError("robust_fraction must be in (0, 1)")
        if not 0.0 < self.major_good_fraction < 1.0:
            raise CalibrationError("major_good_fraction must be in (0, 1)")


class PerformanceSurface:
    """Deterministic (seeded) performance model over one search space."""

    def __init__(self, space: SearchSpace, spec: SurfaceSpec, seed: SeedLike) -> None:
        if spec.n_major > space.dimension:
            raise SpaceError(
                f"surface wants {spec.n_major} major parameters but the space "
                f"has only {space.dimension}"
            )
        self.space = space
        self.spec = spec
        rng = ensure_rng(seed)
        cards = space.cardinalities
        self._log_ratio = math.log(spec.t_max / spec.t_min)

        # Minor effects first: their budget defines the z normalisation so
        # that all-majors-good configurations span [0, good_cluster_span].
        minor_tables = {
            j: self._minor_table(int(cards[j]), spec, rng)
            for j in range(spec.n_major, space.dimension)
        }
        self._interactions = self._interaction_tables(space, spec, rng)
        minor_budget = float(
            sum(t.max() for t in minor_tables.values())
            + sum(t.max() for _, _, t in self._interactions)
        )
        if minor_budget <= 0:
            minor_budget = 1.0  # degenerate all-major space
        self._z_norm = minor_budget / spec.good_cluster_span

        # One bad major level alone must at least double execution time.
        major_penalty = math.log(2.0) / self._log_ratio + 0.02
        self._tables: List[np.ndarray] = []
        for j in range(space.dimension):
            if j < spec.n_major:
                self._tables.append(
                    self._major_table(
                        int(cards[j]), spec, rng, major_penalty * self._z_norm
                    )
                )
            else:
                self._tables.append(minor_tables[j])

        # Independent 64-bit salts decorrelate the robustness hash from the
        # idiosyncratic-sensitivity hash.
        self._robust_salt = int(rng.integers(1, 2**63))
        self._idio_salt = int(rng.integers(1, 2**63))

    # -- construction ------------------------------------------------------

    @staticmethod
    def _major_table(
        card: int, spec: SurfaceSpec, rng: np.random.Generator, bad_floor: float
    ) -> np.ndarray:
        """Bimodal effects: good levels near zero, bad levels >= ``bad_floor``.

        ``bad_floor`` is calibrated so a single bad major level at least
        doubles execution time (before z clipping).
        """
        values = bad_floor * (1.0 + 0.7 * rng.random(card))
        n_good = max(1, int(round(spec.major_good_fraction * card)))
        n_good = min(n_good, card)
        good = rng.choice(card, size=n_good, replace=False)
        values[good] = 0.02 * bad_floor * rng.random(n_good)
        values[good[0]] = 0.0
        return values

    @staticmethod
    def _minor_table(card: int, spec: SurfaceSpec, rng: np.random.Generator) -> np.ndarray:
        """Skewed-toward-bad effects, normalised so the best level costs 0.

        The runner-up level is pulled close to the best one so the optimum
        sits on a plateau of near-ties (see :attr:`SurfaceSpec.minor_tie_factor`).
        """
        weight = rng.uniform(0.25, 0.65)
        u = rng.random(card) ** spec.minor_skew
        spread = u.max() - u.min()
        if spread <= 0:  # single-level parameter
            return np.zeros(card)
        table = weight * (u - u.min()) / spread
        order = np.argsort(table, kind="stable")
        if card >= 3:
            table[order[1]] *= spec.minor_tie_factor
        if card >= 4:
            table[order[2]] *= 3.0 * spec.minor_tie_factor
        return table

    def _interaction_tables(
        self, space: SearchSpace, spec: SurfaceSpec, rng: np.random.Generator
    ) -> List[Tuple[int, int, np.ndarray]]:
        """Random pairwise couplings among the minor dimensions."""
        minor_dims = [j for j in range(spec.n_major, space.dimension)]
        out: List[Tuple[int, int, np.ndarray]] = []
        if len(minor_dims) < 2:
            return out
        cards = space.cardinalities
        for _ in range(spec.n_interactions):
            a, b = rng.choice(minor_dims, size=2, replace=False)
            table = spec.interaction_scale * rng.random((int(cards[a]), int(cards[b])))
            out.append((int(a), int(b), table - table.min()))
        return out

    # -- identity ----------------------------------------------------------

    def content_hash(self) -> str:
        """SHA-256 over everything the surface's outputs depend on.

        Covers the spec constants, the space's parameter grids, the realised
        effect tables (so a change to the RNG stream or the construction
        code shows up even if the seed did not change) and the hash salts.
        The digest is what :mod:`repro.caching` content-addresses persisted
        surface tables by: equal digest implies bit-identical ``true_time``
        and ``sensitivity`` outputs for every index.
        """
        digest = hashlib.sha256()
        payload = {
            "spec": asdict(self.spec),
            "space": [
                [p.name, p.kind, [repr(v) for v in p.values]]
                for p in self.space.parameters
            ],
            "salts": [self._robust_salt, self._idio_salt],
        }
        digest.update(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        )
        for table in self._tables:
            digest.update(np.ascontiguousarray(table, dtype=np.float64).tobytes())
        for a, b, table in self._interactions:
            digest.update(np.array([a, b], dtype=np.int64).tobytes())
            digest.update(np.ascontiguousarray(table, dtype=np.float64).tobytes())
        return digest.hexdigest()

    # -- index hashing (structureless pseudo-randomness) --------------------

    @staticmethod
    def _hash_uniform(indices: np.ndarray, salt: int) -> np.ndarray:
        """Deterministic uniform(0,1) per index, with no lattice structure.

        SplitMix64-style integer mixing: adjacent indices map to unrelated
        values, so nothing fitted to parameter levels can predict the output.
        """
        x = (np.asarray(indices, dtype=np.uint64) + np.uint64(salt)).copy()
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
        return x.astype(np.float64) / float(2**64)

    # -- queries (vectorised over level matrices / index arrays) ------------

    def quality_of_levels(self, levels: np.ndarray) -> np.ndarray:
        """Normalised badness ``z`` in [0, 1]; 0 is the optimum.

        ``z`` is the summed effect budget divided by the good-cluster
        normaliser and clipped at 1 — configurations with two or more bad
        major levels saturate at the worst observed times.
        """
        lv = np.asarray(levels, dtype=np.int64)
        total = np.zeros(lv.shape[0], dtype=float)
        for j, table in enumerate(self._tables):
            total += table[lv[:, j]]
        for a, b, table in self._interactions:
            total += table[lv[:, a], lv[:, b]]
        raw = total / self._z_norm
        # Soft knee above 0.7: stacking several bad major levels approaches
        # the worst time asymptotically instead of saturating in a point
        # mass, giving Fig. 1's gradually rising CDF.  Below the knee (the
        # good cluster and the 2x threshold) z is exactly the raw budget.
        knee, amplitude, tail = 0.7, 0.3, 0.35
        soft = knee + amplitude * (1.0 - np.exp(-(raw - knee) / tail))
        return np.clip(np.where(raw <= knee, raw, soft), 0.0, 1.0)

    def times_of_levels(self, levels: np.ndarray) -> np.ndarray:
        """Interference-free execution time in seconds."""
        z = self.quality_of_levels(levels)
        return self.spec.t_min * np.exp(z * self._log_ratio)

    def robust_mask(self, indices: np.ndarray) -> np.ndarray:
        """True for the scattered, nearly interference-immune configurations.

        Robustness never overlaps the immediate neighbourhood of the optimum
        (``z < robust_exclusion``): maximally optimised executions remain
        fragile, so stability always costs a few percent of speed.
        """
        idx = np.asarray(indices, dtype=np.int64)
        u = self._hash_uniform(idx, self._robust_salt)
        z = self.quality_of_levels(self.space.levels_matrix(idx))
        return (u < self.spec.robust_fraction) & (z >= self.spec.robust_exclusion)

    def sensitivities(self, indices: np.ndarray) -> np.ndarray:
        """Noise sensitivity in [0, 1]: fast configs fragile, robust ones calm.

        ``s = trend(z) * idiosyncratic(c)``, with the robust subset's factor
        collapsed to :attr:`SurfaceSpec.robust_factor`.
        """
        idx = np.asarray(indices, dtype=np.int64)
        z = self.quality_of_levels(self.space.levels_matrix(idx))
        trend = self.spec.s_lo + (self.spec.s_hi - self.spec.s_lo) * (1.0 - z) ** self.spec.s_exponent
        # Inverse-normal transform of a per-index hash gives each
        # configuration a reproducible lognormal idiosyncrasy factor.
        u = np.clip(self._hash_uniform(idx, self._idio_salt), 1e-9, 1.0 - 1e-9)
        idio = np.exp(self.spec.idiosyncrasy * ndtri(u))
        s = trend * idio
        s = np.where(self.robust_mask(idx), trend * self.spec.robust_factor, s)
        return np.clip(s, 0.0, 1.0)


def sample_surface_stats(
    surface: PerformanceSurface, n: int = 4000, seed: SeedLike = 0
) -> dict:
    """Summary statistics of a surface over a random sample (for calibration)."""
    indices = surface.space.sample_indices(n, seed)
    levels = surface.space.levels_matrix(indices)
    times = surface.times_of_levels(levels)
    sens = surface.sensitivities(indices)
    robust = surface.robust_mask(indices)
    best = float(times.min())
    return {
        "time_min": best,
        "time_max": float(times.max()),
        "time_mean": float(times.mean()),
        "spread_ratio": float(times.max() / best),
        "fraction_within_2x": float(np.mean(times < 2.0 * best)),
        "sensitivity_mean": float(sens.mean()),
        "robust_fraction": float(robust.mean()),
        "sample_size": int(n),
    }
