"""FFmpeg transcoding a 10 GB H.264 video (Table 1, row 3).

The paper tunes FFmpeg's *compilation* parameters — optimisation levels and
codegen flags set once at build time.  The full-scale space has 5,971,968
points (paper: 6.1 million).
"""

from __future__ import annotations

from typing import List

from repro.apps.model import ApplicationModel
from repro.apps.scaling import Scale, apply_scale, scale_label
from repro.apps.surfaces import PerformanceSurface, SurfaceSpec
from repro.rng import SeedLike
from repro.space.parameters import Parameter, boolean, categorical
from repro.space.space import SearchSpace

SURFACE_SEED = 303

# FFmpeg is boolean-heavy: a flat cap of 2 would erase the near-optimal
# plateau (booleans cannot hold a "runner-up" level), while a flat cap of 3
# leaves 3.4M points — too large for repeated benchmarking.  The bench scale
# therefore caps multi-level knobs at 3 and freezes a handful of minor
# codegen booleans to their defaults (~105k points).
BENCH_CAP = 3
_BENCH_FROZEN = (
    "fomit-frame-pointer",
    "fstrict-aliasing",
    "floop-block",
    "floop-interchange",
    "floop-strip-mine",
)

# Fig. 10: FFmpeg executions range up to ~420 s; optimum near 140 s.
SPEC = SurfaceSpec(t_min=140.0, t_max=420.0)


def build_parameters() -> List[Parameter]:
    """FFmpeg build-time tunables, major parameters first."""
    return [
        # -- major knobs -------------------------------------------------
        categorical("optimization-level", ("-O1", "-O2", "-O3", "-Ofast")),
        categorical("vectorization", ("none", "tree-vectorize", "tree-slp-vectorize")),
        categorical("loop-unrolling", ("none", "-funroll-loops", "-funroll-all-loops", "--param=8")),
        # -- minor knobs -------------------------------------------------
        categorical("function-inlining", ("default", "-finline-functions", "-finline-limit=1000")),
        categorical("vectorizer-cost-model", ("unlimited", "dynamic", "cheap")),
        categorical("prefetching", ("none", "-fprefetch-loop-arrays", "aggressive")),
        boolean("link-time-optimization"),
        boolean("stack-realignment"),
        boolean("ffast-math"),
        boolean("fomit-frame-pointer"),
        boolean("fstrict-aliasing"),
        boolean("floop-block"),
        boolean("floop-interchange"),
        boolean("floop-strip-mine"),
        categorical("processor-affinity", ("none", "compact", "scatter"), kind="system"),
        categorical("vm.swappiness", (0, 30, 60), kind="system"),
        categorical("read-ahead-kb", (128, 512), kind="system"),
    ]


def make_ffmpeg(scale: Scale = "bench", seed: SeedLike = SURFACE_SEED) -> ApplicationModel:
    """Build the FFmpeg application model at the requested scale."""
    cap: Scale = BENCH_CAP if scale == "bench" else scale
    parameters = apply_scale(build_parameters(), cap)
    if scale == "bench":
        parameters = [
            p.truncated(1) if p.name in _BENCH_FROZEN else p for p in parameters
        ]
    space = SearchSpace(parameters)
    surface = PerformanceSurface(space, SPEC, seed)
    return ApplicationModel(
        "ffmpeg",
        space,
        surface,
        work_metric="percentage of video frames processed",
        scale=scale_label(scale),
    )
