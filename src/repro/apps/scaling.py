"""Space-scale presets shared by all application definitions.

The paper's spaces hold millions of points; simulating full-scale campaigns
is possible (everything is lazy/vectorised) but unnecessary for most tests
and benchmarks.  Every application accepts a *scale*:

* ``"full"`` — the paper-sized space (millions of configurations),
* ``"bench"`` — every parameter truncated to at most 3 levels (spaces of
  tens to hundreds of thousands of points; used by the benchmark harness),
* ``"test"`` — at most 2 levels per parameter (thousands of points; used by
  the unit-test suite), or
* an integer — a custom per-parameter level cap.

Truncation keeps each knob's value range (first and last candidate values
survive), so scaled spaces remain qualitatively faithful.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import SpaceError
from repro.space.parameters import Parameter

Scale = Union[str, int]

_CAPS = {"full": None, "bench": 3, "test": 2}


def level_cap(scale: Scale) -> Optional[int]:
    """Resolve a scale preset (or explicit cap) to a per-parameter level cap."""
    if isinstance(scale, bool):  # bool is an int subclass; reject explicitly
        raise SpaceError(f"invalid scale {scale!r}")
    if isinstance(scale, int):
        if scale < 1:
            raise SpaceError(f"level cap must be >= 1, got {scale}")
        return scale
    try:
        return _CAPS[scale]
    except KeyError:
        raise SpaceError(
            f"unknown scale {scale!r}; expected one of {sorted(_CAPS)} or an int"
        ) from None


def apply_scale(parameters: List[Parameter], scale: Scale) -> List[Parameter]:
    """Truncate every parameter according to the scale preset."""
    cap = level_cap(scale)
    if cap is None:
        return list(parameters)
    return [p.truncated(cap) for p in parameters]


def scale_label(scale: Scale) -> str:
    """Human-readable label for reports."""
    return scale if isinstance(scale, str) else f"cap{scale}"
