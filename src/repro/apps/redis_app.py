"""Redis 6.0 serving one million requests (Table 1, row 1).

Application-level knobs come from ``redis.conf``; systems-level knobs are the
kernel/IO settings the paper adjusts via ``sysctl``/``taskset``.  The three
leading (major) parameters dominate execution time: eviction policy, AOF
fsync policy, and the I/O scheduler — each has a small number of good
settings and many bad ones, producing the paper's needle-in-a-haystack
search landscape.  The full-scale space has 7,680,000 points (paper: 7.8
million; the small difference comes from our explicit level grids).
"""

from __future__ import annotations

from typing import List

from repro.apps.model import ApplicationModel
from repro.apps.scaling import Scale, apply_scale, scale_label
from repro.apps.surfaces import PerformanceSurface, SurfaceSpec
from repro.rng import SeedLike
from repro.space.parameters import Parameter, boolean, categorical
from repro.space.space import SearchSpace

SURFACE_SEED = 101

# Per-parameter level cap for the "bench" scale (space of ~210k points).
BENCH_CAP = 3

# Fig. 1: Redis execution times span 230..792 seconds across configurations.
SPEC = SurfaceSpec(t_min=230.0, t_max=792.0)


def build_parameters() -> List[Parameter]:
    """Redis tunables, major (bimodal-effect) parameters first."""
    return [
        # -- major knobs -------------------------------------------------
        categorical(
            "maxmemory-policy",
            (
                "noeviction",
                "allkeys-lru",
                "volatile-lru",
                "allkeys-lfu",
                "volatile-lfu",
                "allkeys-random",
                "volatile-random",
                "volatile-ttl",
            ),
        ),
        categorical("appendfsync", ("always", "everysec", "no")),
        categorical(
            "io-scheduler", ("none", "mq-deadline", "kyber", "bfq"), kind="system"
        ),
        # -- minor knobs -------------------------------------------------
        categorical("tcp-backlog", (128, 256, 511, 1024, 2048)),
        categorical("maxmemory", ("1gb", "2gb", "4gb", "8gb", "16gb")),
        categorical("hz", (10, 25, 50, 75, 100)),
        boolean("appendonly"),
        boolean("rdbcompression"),
        boolean("lazyfree-lazy-eviction"),
        boolean("dynamic-hz"),
        boolean("activedefrag"),
        categorical("read-ahead-kb", (128, 256, 512, 1024), kind="system"),
        categorical("vm.swappiness", (0, 10, 30, 60, 100), kind="system"),
    ]


def make_redis(scale: Scale = "bench", seed: SeedLike = SURFACE_SEED) -> ApplicationModel:
    """Build the Redis application model at the requested scale."""
    cap: Scale = BENCH_CAP if scale == "bench" else scale
    space = SearchSpace(apply_scale(build_parameters(), cap))
    surface = PerformanceSurface(space, SPEC, seed)
    return ApplicationModel(
        "redis",
        space,
        surface,
        work_metric="percentage of the one million requests completed",
        scale=scale_label(scale),
    )
