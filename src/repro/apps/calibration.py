"""Validation of application surfaces against the paper's published facts.

Every experiment in the reproduction rests on the application models
exhibiting the distributional properties Sec. 2 reports.  This module turns
those properties into a checkable contract:

1. **Spread** (Fig. 1 left): execution times span >3x, and the bulk of the
   space (>93 % in the paper) is at least 2x the best.
2. **Run variation** (Fig. 1 right): a configuration's cloud time varies by
   tens of percent across runs.
3. **Fragility trend** (Fig. 2): mean time and noise sensitivity correlate
   negatively — faster configurations are more fragile.
4. **Blue population** (Fig. 2): a small scattered subset is both fast and
   nearly interference-immune, and it never overlaps the very optimum
   (stability costs a few percent of dedicated-environment speed).

`calibrate_report` evaluates all of it on a sample and returns a
structured report; `assert_calibrated` raises on any violation, which is
how the test suite pins the contract for all four applications at every
scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.apps.model import ApplicationModel
from repro.errors import CalibrationError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class CalibrationCheck:
    """One verified property of a surface."""

    name: str
    value: float
    bound: str
    holds: bool


@dataclass(frozen=True)
class CalibrationReport:
    """All Sec. 2 contract checks for one application model."""

    app_name: str
    scale: str
    sample_size: int
    checks: List[CalibrationCheck]

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.checks)

    def check(self, name: str) -> CalibrationCheck:
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(name)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"Calibration of {self.app_name} (scale={self.scale}, "
                 f"n={self.sample_size}):"]
        for c in self.checks:
            mark = "ok " if c.holds else "BAD"
            lines.append(f"  [{mark}] {c.name}: {c.value:.4g} (want {c.bound})")
        return "\n".join(lines)


def calibrate_report(
    app: ApplicationModel,
    *,
    n: int = 4000,
    seed: SeedLike = 0,
) -> CalibrationReport:
    """Sample the surface and evaluate the Sec. 2 contract."""
    if n < 100:
        raise CalibrationError(f"need at least 100 samples, got {n}")
    rng = ensure_rng(seed)
    indices = app.space.sample_indices(min(n, app.space.size), rng)
    times = app.true_time(indices)
    sens = app.sensitivity(indices)
    robust = app.is_robust(indices)

    best = float(times.min())
    spread = float(times.max()) / best
    frac_2x = float(np.mean(times >= 2.0 * best))
    trend = float(np.corrcoef(times, sens)[0, 1])
    robust_fraction = float(robust.mean())

    # The robust subset must contain genuinely fast members (the "blue"
    # opportunity); judged via the oracle scan, because a few-thousand-point
    # sample of a multi-million-point space holds too few robust points to
    # estimate their best time.
    blue_gap = app.best_robust.true_time / app.optimal.true_time
    # ... but the subset never contains the very optimum itself (fragility
    # of peak performance).
    optimum_robust = bool(app.is_robust(np.array([app.optimal.index]))[0])

    # Fig. 1's >3x spread is over the *whole* space including the rare
    # optimum; a 4k sample rarely contains it, so the sampled bound is a
    # touch looser.  Checked against the true optimum separately below.
    full_spread = float(times.max()) / app.optimal.true_time
    checks = [
        CalibrationCheck("spread_ratio_sampled", spread, "> 2.5", spread > 2.5),
        CalibrationCheck(
            "spread_ratio_vs_optimum", full_spread, "> 2.8", full_spread > 2.8
        ),
        CalibrationCheck("fraction_at_2x_best", frac_2x, "> 0.85", frac_2x > 0.85),
        CalibrationCheck(
            "time_sensitivity_correlation", trend, "< -0.3", trend < -0.3
        ),
        CalibrationCheck(
            "robust_fraction", robust_fraction, "in (0, 0.08)",
            0.0 < robust_fraction < 0.08,
        ),
        CalibrationCheck(
            "best_robust_over_best", blue_gap, "in (1.0, 1.25)",
            1.0 < blue_gap < 1.25,
        ),
        CalibrationCheck(
            "optimum_is_fragile", float(not optimum_robust), "= 1",
            not optimum_robust,
        ),
    ]
    return CalibrationReport(
        app_name=app.name,
        scale=app.scale,
        sample_size=int(indices.size),
        checks=checks,
    )


def assert_calibrated(app: ApplicationModel, *, n: int = 4000, seed: SeedLike = 0) -> None:
    """Raise :class:`CalibrationError` if any Sec. 2 property is violated."""
    report = calibrate_report(app, n=n, seed=seed)
    if not report.all_hold:
        raise CalibrationError("surface violates the Sec. 2 contract:\n" + report.render())
