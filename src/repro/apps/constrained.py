"""Constraint-aware application models (the "death penalty" encoding).

Couples :mod:`repro.space.constraints` to the application layer:
:func:`penalised_application` wraps an :class:`ApplicationModel` so that
configurations violating the constraints run at a penalty time strictly
above the surface's worst valid time, and with maximal noise sensitivity —
so every tuner in the library (DarwinGame and baselines alike) avoids them
organically, with no tuner-side special-casing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.model import ApplicationModel
from repro.errors import SpaceError
from repro.space.constraints import Constraint, valid_mask


class ConstrainedApplication(ApplicationModel):
    """An application whose invalid configurations run at a penalty time."""

    def __init__(
        self,
        base: ApplicationModel,
        constraints: Sequence[Constraint],
        penalty_factor: float,
    ) -> None:
        super().__init__(
            f"{base.name}+constraints",
            base.space,
            base.surface,
            work_metric=base.work_metric,
            scale=base.scale,
        )
        self._base = base
        self._constraints = tuple(constraints)
        self._penalty = penalty_factor

    def valid(self, indices) -> np.ndarray:
        """Constraint satisfaction per configuration."""
        return valid_mask(self.space, self._constraints, indices)

    def true_time(self, indices) -> np.ndarray:
        times = self._base.true_time(indices)
        ceiling = self.surface.spec.t_max * self._penalty
        return np.where(self.valid(indices), times, ceiling)

    def sensitivity(self, indices) -> np.ndarray:
        # Invalid configurations thrash (retries, fallback paths): model
        # them as maximally fragile so no tuner mistakes them for stable.
        sens = self._base.sensitivity(indices)
        return np.where(self.valid(indices), sens, 1.0)


def penalised_application(
    app: ApplicationModel,
    constraints: Sequence[Constraint],
    *,
    penalty_factor: float = 1.5,
) -> ConstrainedApplication:
    """Wrap ``app`` so invalid configurations run at a penalty time.

    ``penalty_factor`` scales the surface's ``t_max``; it must exceed 1 so
    invalid points are strictly worse than every valid one.
    """
    if penalty_factor <= 1.0:
        raise SpaceError(f"penalty_factor must be > 1, got {penalty_factor}")
    if not constraints:
        raise SpaceError("need at least one constraint")
    return ConstrainedApplication(app, constraints, penalty_factor)
