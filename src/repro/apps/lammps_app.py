"""LAMMPS molecular-dynamics simulation (Table 1, row 4).

Neighbour-list management and the timestep dominate runtime.  The full-scale
space has 4,400,000 points (paper: 4.4 million).
"""

from __future__ import annotations

from typing import List

from repro.apps.model import ApplicationModel
from repro.apps.scaling import Scale, apply_scale, scale_label
from repro.apps.surfaces import PerformanceSurface, SurfaceSpec
from repro.rng import SeedLike
from repro.space.parameters import Parameter, categorical, value_grid
from repro.space.space import SearchSpace

SURFACE_SEED = 404

# Per-parameter level cap for the "bench" scale (space of ~310k points; a
# cap of 4 would leave the near-optimal plateau too sparse for the noisy
# argmin pathologies the paper demonstrates).
BENCH_CAP = 5

# Fig. 10: LAMMPS executions range up to ~2250 s; optimum near 750 s.
SPEC = SurfaceSpec(t_min=750.0, t_max=2250.0)


def build_parameters() -> List[Parameter]:
    """LAMMPS tunables, major parameters first."""
    return [
        # -- major knobs -------------------------------------------------
        categorical("integrator", ("verlet", "verlet/split", "respa", "brownian")),
        value_grid("neighbor-skin-distance", 0.1, 1.0, 10),
        value_grid("cutoff-distance", 2.0, 12.0, 11),
        # -- minor knobs -------------------------------------------------
        categorical("neighbor-rebuild-every", (1, 2, 5, 10, 20, 25, 50, 100)),
        value_grid("timestep-fs", 0.25, 2.5, 10),
        categorical("output-frequency", (100, 500, 1000, 5000, 10000)),
        categorical("vm.swappiness", (0, 10, 30, 60, 100), kind="system"),
        categorical(
            "kernel.sched_migration_cost_ns",
            (50000, 100000, 500000, 1000000, 5000000),
            kind="system",
        ),
    ]


def make_lammps(scale: Scale = "bench", seed: SeedLike = SURFACE_SEED) -> ApplicationModel:
    """Build the LAMMPS application model at the requested scale."""
    cap: Scale = BENCH_CAP if scale == "bench" else scale
    space = SearchSpace(apply_scale(build_parameters(), cap))
    surface = PerformanceSurface(space, SPEC, seed)
    return ApplicationModel(
        "lammps",
        space,
        surface,
        work_metric="percentage of simulation output produced",
        scale=scale_label(scale),
    )
