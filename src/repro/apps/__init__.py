"""Application models: the paper's four workloads as performance surfaces."""

from repro.apps.calibration import (
    CalibrationCheck,
    CalibrationReport,
    assert_calibrated,
    calibrate_report,
)
from repro.apps.constrained import ConstrainedApplication, penalised_application
from repro.apps.ffmpeg_app import make_ffmpeg
from repro.apps.gromacs_app import make_gromacs
from repro.apps.lammps_app import make_lammps
from repro.apps.model import ApplicationModel, OraclePoint
from repro.apps.redis_app import make_redis
from repro.apps.registry import APPLICATION_NAMES, make_application
from repro.apps.surfaces import PerformanceSurface, SurfaceSpec, sample_surface_stats

__all__ = [
    "APPLICATION_NAMES",
    "CalibrationCheck",
    "CalibrationReport",
    "ConstrainedApplication",
    "ApplicationModel",
    "OraclePoint",
    "PerformanceSurface",
    "SurfaceSpec",
    "assert_calibrated",
    "calibrate_report",
    "make_application",
    "penalised_application",
    "make_ffmpeg",
    "make_gromacs",
    "make_lammps",
    "make_redis",
    "sample_surface_stats",
]
