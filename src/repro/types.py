"""Shared value types used across the library.

These are intentionally small, immutable records; all behaviour lives in the
subsystem packages (:mod:`repro.space`, :mod:`repro.cloud`, :mod:`repro.core`,
:mod:`repro.tuners`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

ConfigValues = Tuple[Any, ...]


@dataclass(frozen=True)
class Measurement:
    """One observed execution of a configuration in the (noisy) cloud.

    Attributes:
        index: configuration index in the search space.
        observed_time: wall-clock seconds measured under interference.
        start_time: simulated time at which the run started.
        interference: mean interference level experienced by the run.
    """

    index: int
    observed_time: float
    start_time: float
    interference: float


@dataclass
class TuningResult:
    """Outcome of one tuning campaign.

    Attributes:
        tuner_name: human-readable name of the strategy that produced this.
        best_index: configuration index the tuner selected.
        best_values: decoded parameter values of ``best_index``.
        evaluations: number of application executions the tuner paid for
            (a co-located game with ``k`` players counts ``k`` executions).
        core_hours: simulated core-hours booked while tuning.
        tuning_seconds: simulated wall-clock seconds of the campaign,
            accounting for games played in parallel.
        details: free-form per-strategy diagnostics (phase sizes, rounds, ...).
    """

    tuner_name: str
    best_index: int
    best_values: ConfigValues
    evaluations: int
    core_hours: float
    tuning_seconds: float
    details: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ChoiceEvaluation:
    """Post-hoc quality of a chosen configuration (the paper's metrics).

    The paper reports, for a tuner's chosen configuration: the mean execution
    time over 100 cloud runs spread over time, and the coefficient of
    variation of those runs (Figs. 10 and 11).
    """

    index: int
    mean_time: float
    cov_percent: float
    min_time: float
    max_time: float
    true_time: float
    sensitivity: float
    runs: int

    @property
    def range_seconds(self) -> float:
        """Spread between the slowest and fastest of the evaluation runs."""
        return self.max_time - self.min_time


@dataclass(frozen=True)
class GameOutcome:
    """Physics-level outcome of one co-located game (see ``repro.cloud``).

    ``work`` holds, per player, the fraction of total work completed when the
    game ended (1.0 for the player that finished, if any finished).
    """

    elapsed: float
    work: tuple
    finished: tuple
    early_terminated: bool
    start_time: float
    mean_interference: float

    @property
    def num_players(self) -> int:
        return len(self.work)

    @property
    def winner(self) -> int:
        """Position (not config index) of the player with the most work done."""
        best = 0
        for i in range(1, len(self.work)):
            if self.work[i] > self.work[best]:
                best = i
        return best


@dataclass(frozen=True)
class SoloOutcome:
    """Physics-level outcome of one solo (non-co-located) run."""

    observed_time: float
    start_time: float
    mean_interference: float
