"""Parallel campaign execution with failure isolation, retry, and resume.

The runner turns a list of :class:`~repro.campaigns.spec.CampaignSpec` into
a list of :class:`~repro.campaigns.store.CampaignRecord`, optionally across
a fleet of worker processes.  Four guarantees make it a drop-in replacement
for the drivers' former hand-rolled loops:

* **Determinism** — a campaign's outcome is a pure function of its spec
  (every seed is a field), so ``jobs > 1`` reproduces serial results bit
  for bit, in any execution order — and retried attempts reproduce the
  attempt they replace.
* **Failure isolation** — a crashing campaign yields a ``"failed"`` record
  (exception summary plus truncated traceback attached) instead of killing
  the sweep.
* **Fault tolerance** — parallel sweeps run on the lease/heartbeat
  dispatcher (:mod:`repro.campaigns.dispatch`): a hard-killed worker's
  campaigns are reclaimed and retried with exponential backoff, hung
  campaigns are killed at ``task_timeout``, and a campaign that exhausts
  its ``max_retries`` budget is quarantined as ``"failed"`` so the sweep
  *completes*.  Inline execution (``jobs=1``) applies the same retry
  policy without a pool.
* **Resume** — with a :class:`~repro.campaigns.store.base.ResultStore`
  attached (any backend: single-file JSONL, sharded directory, SQLite),
  every finished campaign is checkpointed immediately and specs whose IDs
  are already stored as done are skipped, so an interrupted sweep
  continues where it stopped.

Chaos testing rides the same machinery: install a seeded
:class:`repro.faults.FaultPlan` (``fault_plan=`` here, ``--inject-faults``
on the CLI) and chosen attempts crash/hang/fail deterministically — the
converged store must match a fault-free run minus attempt metadata.
"""

from __future__ import annotations

import contextlib
import os
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.caching import (
    SurfaceCache,
    grid_app_pairs,
    process_app_cache,
    process_surface_cache,
    set_process_surface_cache,
)
from repro.campaigns.dispatch import (
    Dispatcher,
    TaskLedger,
    _pool_context,
    quarantine_record,
    worker_lost_message,
)
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import (
    SIDECAR_LEDGER,
    SIDECAR_PROFILES,
    SIDECAR_TELEMETRY,
    STATUS_DONE,
    STATUS_FAILED,
    CampaignRecord,
    ResultStore,
)
from repro.errors import ReproError, RetryExhausted, WorkerLost
from repro.faults import FaultPlan, active_fault_plan, maybe_inject, set_active_fault_plan
from repro.telemetry.events import (
    JsonlEmitter,
    counter as _telemetry_counter,
    gauge as _telemetry_gauge,
    set_emitter,
    span as _telemetry_span,
    telemetry_enabled,
)
from repro.telemetry.profiling import (
    CampaignProfiler,
    set_profile_dir,
)

#: How many frames of a failed campaign's traceback are kept (the last —
#: i.e. innermost — ones; the useful end for debugging a sweep without
#: storing megabytes of text).
TRACEBACK_FRAMES = 20

#: How many times a store append is tried before the failure propagates
#: (checkpoint I/O blips — and injected store faults — are transient).
STORE_APPEND_ATTEMPTS = 3

#: Execution modes the runner understands (``--exec-mode`` on the CLI).
EXEC_MODES = ("process", "stacked")


def cached_application(name: str, scale):
    """The per-process shared application instance campaigns run against.

    Drivers that need app metadata in the parent (e.g. the oracle's
    ``optimal.true_time``) should use this instead of building their own
    instance: with ``jobs=1`` the campaigns execute in the same process, so
    the expensive memoised tables are computed once, not twice.

    Served by the process's bounded :class:`repro.caching.ApplicationCache`
    tier; when a surface cache is set (``sweep --cache-dir``), applications
    built here start with their persisted surface tables attached.
    """
    return process_app_cache().get(name, scale)


def _worker_init(cache_dir: Optional[str], app_keys: Sequence[Tuple[str, object]]):
    """Worker initializer: workers start hot instead of rebuilding per task.

    Builds the sweep's applications into the worker's in-memory tier up
    front and — when the sweep has a surface cache — loads their persisted
    surface tables, so even ``spawn`` workers begin their first campaign
    with fully memoised surfaces.
    """
    if cache_dir is not None:
        set_process_surface_cache(SurfaceCache(cache_dir))
    for name, scale in app_keys:
        cached_application(name, scale).load_cached_surfaces()


def default_jobs() -> int:
    """A sensible ``--jobs`` for this machine (all visible cores)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _truncated_traceback(exc: BaseException) -> str:
    """The last :data:`TRACEBACK_FRAMES` frames of ``exc``'s traceback.

    A negative ``limit`` keeps the *innermost* frames — the ones that name
    the failing line — which is what debugging a stored sweep needs.
    """
    return "".join(
        traceback_module.format_exception(
            type(exc), exc, exc.__traceback__, limit=-TRACEBACK_FRAMES
        )
    )


def execute_campaign(spec: CampaignSpec, attempt: int = 1) -> CampaignRecord:
    """Run one campaign attempt to its terminal record; never raises.

    This is the single choke point every sweep goes through: consult the
    fault plan (chaos runs), build the application, run the evaluation
    protocol, wrap the outcome.  Exceptions become ``"failed"`` records —
    with the exception summary and a truncated traceback attached — so one
    bad cell cannot take down a fleet.  ``attempt`` (1-based) is the
    dispatcher's retry counter; it selects which injected fault fires and
    is stamped on the record, and nothing else depends on it — an attempt's
    *result* is a pure function of the spec.

    Observability wraps the choke point rather than living inside it: the
    whole attempt runs under a ``campaign.execute`` telemetry span and —
    when a profile directory is installed — a :mod:`cProfile` capture.
    Both are no-ops unless an operator opted in, and neither can change
    the record.
    """
    with CampaignProfiler(spec.campaign_id, attempt), _telemetry_span(
        "campaign.execute",
        campaign=spec.campaign_id,
        attempt=attempt,
        app=spec.app,
        strategy=spec.strategy,
    ):
        try:
            maybe_inject(spec.campaign_id, attempt)
            from repro.campaigns.spec import vm_from_field
            from repro.experiments.protocol import run_strategy

            app = cached_application(spec.app, spec.scale)
            run = run_strategy(
                app,
                spec.strategy,
                vm=vm_from_field(spec.vm),
                seed=spec.seed,
                start_time=spec.start_time,
                eval_runs=spec.eval_runs,
                tuner_seed=spec.tuner_seed,
                scenario=spec.scenario,
                tournament_format=spec.format,
            )
            return CampaignRecord(
                spec=spec,
                status=STATUS_DONE,
                best_index=run.best_index,
                core_hours=run.core_hours,
                tuning_seconds=run.tuning_seconds,
                evaluation=run.evaluation,
                result=run.tuning_result,
                attempts=attempt,
            )
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            return CampaignRecord(
                spec=spec,
                status=STATUS_FAILED,
                error=f"{type(exc).__name__}: {exc}",
                traceback=_truncated_traceback(exc),
                attempts=attempt,
            )


def _execute_indexed(item: Tuple[int, CampaignSpec]) -> Tuple[int, CampaignRecord]:
    index, spec = item
    return index, execute_campaign(spec)


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one :meth:`CampaignRunner.run` call.

    ``records`` is aligned with the submitted specs (input order), mixing
    freshly executed campaigns with ones replayed from the store.
    ``retries`` counts re-executions beyond each campaign's first attempt
    (0 on a fault-free sweep).
    """

    records: List[CampaignRecord]
    executed: int
    skipped: int
    wall_seconds: float
    jobs: int
    retries: int = 0

    @property
    def failures(self) -> List[CampaignRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def campaigns_per_minute(self) -> float:
        """Executed-campaign throughput (resume skips excluded).

        ``0.0`` when no wall time elapsed (e.g. an all-skipped resume) —
        a zero, not an ``inf``, so reports and BENCH rows stay finite.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return 60.0 * self.executed / self.wall_seconds

    def raise_on_failure(self) -> "SweepReport":
        """Drivers that aggregate cannot tolerate holes; fail loudly."""
        if self.failures:
            summary = "; ".join(
                f"{r.campaign_id}: {r.error}" for r in self.failures[:5]
            )
            message = f"{len(self.failures)} campaign(s) failed — {summary}"
            if all(
                r.error.startswith(RetryExhausted.__name__)
                for r in self.failures
            ):
                raise RetryExhausted(message)
            raise ReproError(message)
        return self

    def strategy_runs(self) -> list:
        """All records as protocol ``StrategyRun``s (raises on failures)."""
        self.raise_on_failure()
        return [r.to_strategy_run() for r in self.records]


ProgressFn = Callable[[int, int, CampaignRecord], None]


class CampaignRunner:
    """Executes campaign fleets; the scheduling layer every sweep uses.

    Args:
        jobs: worker processes; ``1`` executes inline (no pool).
        store: optional checkpoint store — any
            :class:`~repro.campaigns.store.base.ResultStore` backend —
            enables skip-done resume and per-campaign durability.  The
            runner holds the store's advisory lock while executing, so two
            concurrent sweeps cannot silently interleave appends.
            Parallel sweeps journal their lease ledger to the store's
            ``ledger`` sidecar (the backend says where that lives).
        progress: optional callback ``(finished_count, total, record)``
            invoked as campaigns complete (store replays excluded).
        cache_dir: optional surface-cache directory.  Before executing, the
            grid's applications are warmed into it (valid entries reused,
            missing ones computed and persisted) and every worker process
            prewarms from it, so campaigns start with hot surface tables.
        start_method: force a multiprocessing start method (``"fork"`` /
            ``"spawn"``); default picks what
            :func:`repro.campaigns.dispatch._pool_context` picks.
        max_retries: re-executions granted after a campaign's first failed
            attempt (crash, hang, or ordinary exception); past the budget
            the campaign is quarantined as ``"failed"`` and the sweep goes
            on without it.
        backoff: base of the exponential retry delay — retry *k* waits
            ``backoff * 2**(k-1)`` seconds.
        task_timeout: seconds a leased campaign may run before its worker
            is presumed hung and killed (``None``/``0`` disables; only
            enforced on the parallel path — inline there is no second
            process to do the killing).
        heartbeat_interval: how often dispatcher workers report liveness.
        fault_plan: optional :class:`repro.faults.FaultPlan` injecting
            deterministic chaos into every attempt (installed inline and in
            every worker; restored afterwards).
        exec_mode: ``"process"`` (default) executes inline or on the worker
            pool as ``jobs`` dictates; ``"stacked"`` runs in-process on the
            :class:`repro.core.stacked.StackedExecutor`, fusing concurrent
            tournament rounds of same-key campaigns into one tensor pass
            (``jobs`` is ignored — stacking is the 1-core parallelism).
            Results are bit-identical across modes; retry, quarantine,
            fault-injection, and resume semantics are unchanged.
        telemetry: record this sweep's event stream.  ``True`` journals to
            the store's ``.telemetry`` sidecar (requires a store); a path
            journals there explicitly.  Off (the default) the bus stays
            the no-op emitter — one flag check per instrumented site.
        profile: capture per-campaign :mod:`cProfile` stats.  ``True``
            dumps into the store's ``.profiles`` directory (requires a
            store); a path dumps there explicitly.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressFn] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        start_method: Optional[str] = None,
        max_retries: int = 2,
        backoff: float = 0.1,
        task_timeout: Optional[float] = None,
        heartbeat_interval: float = 0.5,
        fault_plan: Optional[FaultPlan] = None,
        telemetry: Union[bool, str, Path] = False,
        profile: Union[bool, str, Path] = False,
        exec_mode: str = "process",
    ):
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        if max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 0:
            raise ReproError(f"backoff must be >= 0, got {backoff}")
        if exec_mode not in EXEC_MODES:
            raise ReproError(
                f"exec_mode must be one of {EXEC_MODES}, got {exec_mode!r}"
            )
        self.jobs = jobs
        self.exec_mode = exec_mode
        self.store = store
        self.progress = progress
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.start_method = start_method
        self.max_retries = max_retries
        self.backoff = backoff
        self.task_timeout = task_timeout
        self.heartbeat_interval = heartbeat_interval
        self.fault_plan = fault_plan
        self.telemetry_path = self._sidecar(
            telemetry, "telemetry", SIDECAR_TELEMETRY
        )
        self.profile_dir = self._sidecar(profile, "profile", SIDECAR_PROFILES)

    def _sidecar(self, setting, what: str, kind: str) -> Optional[Path]:
        """Resolve a bool-or-path opt-in to its concrete location.

        ``True`` asks the store's backend where its ``kind`` sidecar lives
        (next to a store file; inside a sharded store's directory).
        """
        if not setting:
            return None
        if isinstance(setting, (str, Path)):
            return Path(setting)
        if self.store is None:
            raise ReproError(
                f"{what}=True derives its path from the store; "
                f"without one, pass an explicit path"
            )
        return self.store.sidecar_path(kind)

    def run(self, specs: Iterable[CampaignSpec], *, grid=None) -> SweepReport:
        """Execute every spec (or recall it from the store); see class docs.

        ``grid`` (a :class:`~repro.campaigns.spec.CampaignGrid`) is recorded
        as the store's header line *inside* the store lock — callers must
        not write it themselves, or two racing sweeps could both see an
        empty store and leave it with one sweep's header over the other's
        records.
        """
        specs = list(specs)
        ids = [s.campaign_id for s in specs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ReproError(f"duplicate campaign specs submitted: {dupes[:3]}")

        t0 = time.perf_counter()
        guard = (
            self.store.exclusive()
            if self.store is not None
            else contextlib.nullcontext()
        )
        previous_surface_cache = process_surface_cache()
        previous_plan = active_fault_plan()
        retries = 0
        # Bring the observability tiers up for this sweep (and only this
        # sweep): the sidecar emitter and profile directory are installed
        # here and restored on the way out, so nested/later runs in the
        # same process see exactly what they configured themselves.
        sweep_emitter = None
        previous_emitter = None
        previous_profile_dir = None
        if self.telemetry_path is not None:
            sweep_emitter = JsonlEmitter(self.telemetry_path)
            previous_emitter = set_emitter(sweep_emitter)
        if self.profile_dir is not None:
            previous_profile_dir = set_profile_dir(self.profile_dir)
        try:
            # The plan must be live in this process for inline execution and
            # parent-side store faults; dispatcher workers get their own copy.
            set_active_fault_plan(self.fault_plan)
            with guard:
                results: Dict[int, CampaignRecord] = {}
                pending: List[Tuple[int, CampaignSpec]] = []
                if self.store is not None:
                    if grid is not None:
                        self.store.write_grid(grid)
                    stored = self.store.lookup(specs)
                else:
                    stored = {}
                for index, spec in enumerate(specs):
                    record = stored.get(spec.campaign_id)
                    if record is not None and record.ok:
                        results[index] = record
                    else:
                        pending.append((index, spec))

                if self.cache_dir is not None and pending:
                    self._warm_cache([spec for _, spec in pending])

                skipped = len(specs) - len(pending)
                total = len(pending)
                finished = 0
                if telemetry_enabled():
                    _telemetry_gauge("sweep.campaigns_total", float(len(specs)))
                    _telemetry_gauge("sweep.campaigns_pending", float(total))
                    _telemetry_counter("sweep.start", jobs=self.jobs)
                for index, record in self._execute(pending):
                    results[index] = record
                    finished += 1
                    retries += max(0, record.attempts - 1)
                    if telemetry_enabled():
                        # The sidecar's terminal campaign events: replaying
                        # them (last write per campaign wins) must agree
                        # with `report --failures` over the store itself.
                        _telemetry_counter(
                            "campaign.done" if record.ok else "campaign.failed",
                            campaign=record.campaign_id,
                            attempt=record.attempts,
                        )
                        if record.core_hours:
                            _telemetry_counter(
                                "campaign.core_hours",
                                value=float(record.core_hours),
                                campaign=record.campaign_id,
                            )
                    if self.store is not None:
                        self._append_with_retry(record)
                    if self.progress is not None:
                        self.progress(finished, total, record)
                if telemetry_enabled():
                    _telemetry_gauge("sweep.retries", float(retries))
                    _telemetry_counter("sweep.end", jobs=self.jobs)
        finally:
            set_active_fault_plan(previous_plan)
            # _warm_cache points the process at this sweep's surface cache;
            # a later cacheless run in the same process must not inherit it.
            if self.cache_dir is not None:
                set_process_surface_cache(previous_surface_cache)
            if self.profile_dir is not None:
                set_profile_dir(previous_profile_dir)
            if sweep_emitter is not None:
                set_emitter(previous_emitter)
                sweep_emitter.close()

        return SweepReport(
            records=[results[i] for i in range(len(specs))],
            executed=total,
            skipped=skipped,
            wall_seconds=time.perf_counter() - t0,
            jobs=self.jobs,
            retries=retries,
        )

    def _warm_cache(self, pending_specs: Sequence[CampaignSpec]) -> None:
        """Warm the disk tier once, in the parent, before any worker starts.

        Workers then only ever *read* the persisted tables (their pool
        initializer loads them), so the expensive first-touch computation
        happens at most once per machine rather than once per process.
        """
        cache = SurfaceCache(self.cache_dir)
        set_process_surface_cache(cache)
        cache.warm(
            grid_app_pairs(pending_specs),
            builder=lambda name, scale: process_app_cache().get(name, scale),
        )

    def _append_with_retry(self, record: CampaignRecord) -> None:
        """Checkpoint one record, riding out transient append failures.

        The injected store-fault stream fires here (in the parent, where
        checkpointing happens); real-world ``OSError`` blips get the same
        treatment.  Persistent failure propagates — losing checkpoints
        silently would break the resume contract.
        """
        plan = self.fault_plan
        for append_attempt in range(1, STORE_APPEND_ATTEMPTS + 1):
            try:
                if plan is not None and plan.store_fault(
                    record.campaign_id, append_attempt
                ):
                    from repro.errors import FaultInjected

                    raise FaultInjected(
                        f"injected store-append failure (campaign "
                        f"{record.campaign_id}, append attempt {append_attempt})"
                    )
                self.store.append(record)
                return
            except (OSError, ReproError):
                if append_attempt == STORE_APPEND_ATTEMPTS:
                    raise
                time.sleep(self.backoff * append_attempt)

    def _execute(self, pending: Sequence[Tuple[int, CampaignSpec]]):
        if not pending:
            return
        if self.exec_mode == "stacked" and len(pending) > 1:
            yield from self._execute_stacked(pending)
            return
        if self.jobs == 1 or len(pending) == 1:
            yield from self._execute_inline(pending)
            return
        yield from self._execute_dispatched(pending)

    def _execute_inline(self, pending: Sequence[Tuple[int, CampaignSpec]]):
        """No-pool execution with the same retry/quarantine policy.

        Process-killing faults degrade to raised exceptions inline (see
        :mod:`repro.faults`), so the convergence contract — and the stored
        bytes minus attempt metadata — are identical to the dispatched
        path.
        """
        for index, spec in pending:
            attempt = 0
            while True:
                attempt += 1
                record = execute_campaign(spec, attempt=attempt)
                if record.ok:
                    yield index, record
                    break
                if attempt > self.max_retries:
                    yield index, quarantine_record(record)
                    break
                if self.backoff > 0:
                    time.sleep(self.backoff * (2 ** (attempt - 1)))

    def _execute_stacked(self, pending: Sequence[Tuple[int, CampaignSpec]]):
        """In-process mega-batched execution (``exec_mode="stacked"``).

        Same semantics as the inline path — same retries, quarantine,
        per-record checkpoints — but same-key campaigns advance in lockstep
        and their concurrent rounds are fused into one stacked tensor pass
        (see :mod:`repro.core.stacked`).  No ledger: like inline, there is
        no second process to lease work to or reclaim it from.
        """
        from repro.core.stacked import StackedExecutor

        executor = StackedExecutor(
            max_retries=self.max_retries, backoff=self.backoff
        )
        yield from executor.run(pending)

    def _execute_dispatched(self, pending: Sequence[Tuple[int, CampaignSpec]]):
        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        app_keys = grid_app_pairs([spec for _, spec in pending])
        ledger = TaskLedger(
            journal_path=(
                self.store.sidecar_path(SIDECAR_LEDGER)
                if self.store is not None
                else None
            ),
            max_retries=self.max_retries,
            backoff=self.backoff,
        )
        dispatcher = Dispatcher(
            min(self.jobs, len(pending)),
            ledger,
            task_timeout=self.task_timeout,
            heartbeat_interval=self.heartbeat_interval,
            start_method=self.start_method,
            cache_dir=cache_dir,
            app_keys=app_keys,
            fault_plan=self.fault_plan,
            # Workers forward their events over the dispatch pipe whenever
            # this process's bus is live (however it was enabled).
            telemetry=telemetry_enabled(),
            profile_dir=(
                str(self.profile_dir) if self.profile_dir is not None else None
            ),
        )
        yield from dispatcher.run(pending)


def parallel_map(
    fn: Callable,
    items: Sequence,
    *,
    jobs: int = 1,
    start_method: Optional[str] = None,
) -> list:
    """Order-preserving map over a worker pool (``fn`` must be picklable).

    The generic sibling of :class:`CampaignRunner` for grid-shaped work
    that is not a tuning campaign (Table 1 space construction, format-power
    trial chunks).  Unlike campaigns, exceptions propagate — these jobs are
    cheap to re-run and a hole would corrupt the aggregate.  A worker that
    dies without reporting (hard kill, OOM) raises
    :class:`~repro.errors.WorkerLost` with the dispatcher's diagnosis
    instead of the pool's bare ``BrokenProcessPool``.
    """
    items = list(items)
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    ctx = _pool_context(start_method)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)), mp_context=ctx
    ) as pool:
        try:
            return list(pool.map(fn, items, chunksize=1))
        except BrokenProcessPool:
            raise WorkerLost(
                worker_lost_message(
                    "during parallel_map; the batch is cheap to re-run — "
                    "retry it (and check dmesg for the OOM killer if it "
                    "recurs)"
                )
            ) from None
