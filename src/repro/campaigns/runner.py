"""Parallel campaign execution with failure isolation and resume.

The runner turns a list of :class:`~repro.campaigns.spec.CampaignSpec` into
a list of :class:`~repro.campaigns.store.CampaignRecord`, optionally across
a ``multiprocessing`` worker pool.  Three guarantees make it a drop-in
replacement for the drivers' former hand-rolled loops:

* **Determinism** — a campaign's outcome is a pure function of its spec
  (every seed is a field), so ``jobs > 1`` reproduces serial results bit
  for bit, in any execution order.
* **Failure isolation** — a crashing campaign yields a ``"failed"`` record
  (exception summary attached) instead of killing the sweep.
* **Resume** — with a :class:`~repro.campaigns.store.CampaignStore`
  attached, every finished campaign is checkpointed immediately and specs
  whose IDs are already stored as done are skipped, so an interrupted
  sweep continues where it stopped.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.caching import (
    SurfaceCache,
    grid_app_pairs,
    process_app_cache,
    process_surface_cache,
    set_process_surface_cache,
)
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import (
    STATUS_DONE,
    STATUS_FAILED,
    CampaignRecord,
    CampaignStore,
)
from repro.errors import ReproError


def cached_application(name: str, scale):
    """The per-process shared application instance campaigns run against.

    Drivers that need app metadata in the parent (e.g. the oracle's
    ``optimal.true_time``) should use this instead of building their own
    instance: with ``jobs=1`` the campaigns execute in the same process, so
    the expensive memoised tables are computed once, not twice.

    Served by the process's bounded :class:`repro.caching.ApplicationCache`
    tier; when a surface cache is set (``sweep --cache-dir``), applications
    built here start with their persisted surface tables attached.
    """
    return process_app_cache().get(name, scale)


def _pool_context(start_method: Optional[str] = None):
    """``fork`` where the platform offers it (cheap workers), else spawn.

    ``start_method`` forces a specific method (the spawn path is what
    non-fork platforms get; tests pin it to cover that fallback).
    """
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            raise ReproError(
                f"start method {start_method!r} not available; "
                f"this platform offers {methods}"
            )
        return multiprocessing.get_context(start_method)
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_init(cache_dir: Optional[str], app_keys: Sequence[Tuple[str, object]]):
    """Pool initializer: workers start hot instead of rebuilding per task.

    Builds the sweep's applications into the worker's in-memory tier up
    front and — when the sweep has a surface cache — loads their persisted
    surface tables, so even ``spawn`` workers begin their first campaign
    with fully memoised surfaces.
    """
    if cache_dir is not None:
        set_process_surface_cache(SurfaceCache(cache_dir))
    for name, scale in app_keys:
        cached_application(name, scale).load_cached_surfaces()


def default_jobs() -> int:
    """A sensible ``--jobs`` for this machine (all visible cores)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def execute_campaign(spec: CampaignSpec) -> CampaignRecord:
    """Run one campaign to its terminal record; never raises.

    This is the single choke point every sweep goes through: build the
    application, run the evaluation protocol, wrap the outcome.  Exceptions
    become ``"failed"`` records so one bad cell cannot take down a fleet.
    """
    try:
        from repro.campaigns.spec import vm_from_field
        from repro.experiments.protocol import run_strategy

        app = cached_application(spec.app, spec.scale)
        run = run_strategy(
            app,
            spec.strategy,
            vm=vm_from_field(spec.vm),
            seed=spec.seed,
            start_time=spec.start_time,
            eval_runs=spec.eval_runs,
            tuner_seed=spec.tuner_seed,
            scenario=spec.scenario,
            tournament_format=spec.format,
        )
        return CampaignRecord(
            spec=spec,
            status=STATUS_DONE,
            best_index=run.best_index,
            core_hours=run.core_hours,
            tuning_seconds=run.tuning_seconds,
            evaluation=run.evaluation,
            result=run.tuning_result,
        )
    except Exception as exc:  # noqa: BLE001 - isolation is the contract
        return CampaignRecord(
            spec=spec,
            status=STATUS_FAILED,
            error=f"{type(exc).__name__}: {exc}",
        )


def _execute_indexed(item: Tuple[int, CampaignSpec]) -> Tuple[int, CampaignRecord]:
    index, spec = item
    return index, execute_campaign(spec)


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one :meth:`CampaignRunner.run` call.

    ``records`` is aligned with the submitted specs (input order), mixing
    freshly executed campaigns with ones replayed from the store.
    """

    records: List[CampaignRecord]
    executed: int
    skipped: int
    wall_seconds: float
    jobs: int

    @property
    def failures(self) -> List[CampaignRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def campaigns_per_minute(self) -> float:
        """Executed-campaign throughput (resume skips excluded)."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return 60.0 * self.executed / self.wall_seconds

    def raise_on_failure(self) -> "SweepReport":
        """Drivers that aggregate cannot tolerate holes; fail loudly."""
        if self.failures:
            summary = "; ".join(
                f"{r.campaign_id}: {r.error}" for r in self.failures[:5]
            )
            raise ReproError(
                f"{len(self.failures)} campaign(s) failed — {summary}"
            )
        return self

    def strategy_runs(self) -> list:
        """All records as protocol ``StrategyRun``s (raises on failures)."""
        self.raise_on_failure()
        return [r.to_strategy_run() for r in self.records]


ProgressFn = Callable[[int, int, CampaignRecord], None]


class CampaignRunner:
    """Executes campaign fleets; the scheduling layer every sweep uses.

    Args:
        jobs: worker processes; ``1`` executes inline (no pool).
        store: optional checkpoint store — enables skip-done resume and
            per-campaign durability.  The runner holds the store's advisory
            lock while executing, so two concurrent sweeps cannot silently
            interleave appends into one file.
        progress: optional callback ``(finished_count, total, record)``
            invoked as campaigns complete (store replays excluded).
        cache_dir: optional surface-cache directory.  Before executing, the
            grid's applications are warmed into it (valid entries reused,
            missing ones computed and persisted) and every worker process
            prewarms from it, so campaigns start with hot surface tables.
        start_method: force a multiprocessing start method (``"fork"`` /
            ``"spawn"``); default picks what :func:`_pool_context` picks.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[CampaignStore] = None,
        progress: Optional[ProgressFn] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        start_method: Optional[str] = None,
    ):
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.store = store
        self.progress = progress
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.start_method = start_method

    def run(self, specs: Iterable[CampaignSpec], *, grid=None) -> SweepReport:
        """Execute every spec (or recall it from the store); see class docs.

        ``grid`` (a :class:`~repro.campaigns.spec.CampaignGrid`) is recorded
        as the store's header line *inside* the store lock — callers must
        not write it themselves, or two racing sweeps could both see an
        empty store and leave it with one sweep's header over the other's
        records.
        """
        specs = list(specs)
        ids = [s.campaign_id for s in specs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ReproError(f"duplicate campaign specs submitted: {dupes[:3]}")

        t0 = time.perf_counter()
        guard = (
            self.store.exclusive()
            if self.store is not None
            else contextlib.nullcontext()
        )
        previous_surface_cache = process_surface_cache()
        try:
            with guard:
                results: Dict[int, CampaignRecord] = {}
                pending: List[Tuple[int, CampaignSpec]] = []
                if self.store is not None:
                    if grid is not None:
                        self.store.write_grid(grid)
                    stored = self.store.lookup(specs)
                else:
                    stored = {}
                for index, spec in enumerate(specs):
                    record = stored.get(spec.campaign_id)
                    if record is not None and record.ok:
                        results[index] = record
                    else:
                        pending.append((index, spec))

                if self.cache_dir is not None and pending:
                    self._warm_cache([spec for _, spec in pending])

                skipped = len(specs) - len(pending)
                total = len(pending)
                finished = 0
                for index, record in self._execute(pending):
                    results[index] = record
                    finished += 1
                    if self.store is not None:
                        self.store.append(record)
                    if self.progress is not None:
                        self.progress(finished, total, record)
        finally:
            # _warm_cache points the process at this sweep's surface cache;
            # a later cacheless run in the same process must not inherit it.
            if self.cache_dir is not None:
                set_process_surface_cache(previous_surface_cache)

        return SweepReport(
            records=[results[i] for i in range(len(specs))],
            executed=total,
            skipped=skipped,
            wall_seconds=time.perf_counter() - t0,
            jobs=self.jobs,
        )

    def _warm_cache(self, pending_specs: Sequence[CampaignSpec]) -> None:
        """Warm the disk tier once, in the parent, before any worker starts.

        Workers then only ever *read* the persisted tables (their pool
        initializer loads them), so the expensive first-touch computation
        happens at most once per machine rather than once per process.
        """
        cache = SurfaceCache(self.cache_dir)
        set_process_surface_cache(cache)
        cache.warm(
            grid_app_pairs(pending_specs),
            builder=lambda name, scale: process_app_cache().get(name, scale),
        )

    def _execute(self, pending: Sequence[Tuple[int, CampaignSpec]]):
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            for item in pending:
                yield _execute_indexed(item)
            return
        ctx = _pool_context(self.start_method)
        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        app_keys = grid_app_pairs([spec for _, spec in pending])
        with ctx.Pool(
            processes=min(self.jobs, len(pending)),
            initializer=_worker_init,
            initargs=(cache_dir, app_keys),
        ) as pool:
            # chunksize=1: campaigns are coarse-grained, balance beats batching.
            for index, record in pool.imap_unordered(
                _execute_indexed, pending, chunksize=1
            ):
                yield index, record


def parallel_map(
    fn: Callable,
    items: Sequence,
    *,
    jobs: int = 1,
) -> list:
    """Order-preserving map over a worker pool (``fn`` must be picklable).

    The generic sibling of :class:`CampaignRunner` for grid-shaped work
    that is not a tuning campaign (Table 1 space construction, format-power
    trial chunks).  Unlike campaigns, exceptions propagate — these jobs are
    cheap to re-run and a hole would corrupt the aggregate.
    """
    items = list(items)
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    ctx = _pool_context()
    with ctx.Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(fn, items, chunksize=1)
