"""Declarative campaign descriptions.

A *campaign* is one tuning run: an application tuned by one strategy on one
VM under one environment realisation (seed + campaign start time), followed
by the paper's 100-execution evaluation of the chosen configuration.  The
paper's headline numbers (Figs. 10-12, Table 1) are aggregates over *fleets*
of such campaigns — every (app x VM x tuner x seed) cell is independent —
so the fleet is described declaratively and executed by
:mod:`repro.campaigns.runner` rather than by hand-rolled loops.

A :class:`CampaignSpec` is a pure value: everything the campaign's outcome
depends on is a field, so its :attr:`~CampaignSpec.campaign_id` (a content
hash) is stable across processes and library sessions.  That ID is the
resume key of :class:`repro.campaigns.store.CampaignStore`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.cloud.vm import PRESETS, VMSpec

Scale = Union[str, int]

#: A VM in a spec: a preset name, or the full field dict of a custom
#: :class:`VMSpec` (so non-preset instances survive the trip to a worker).
VMLike = Union[str, Dict[str, object]]


def vm_to_field(vm: VMSpec) -> VMLike:
    """Spec-field form of a VM: its preset name, or its fields if custom."""
    if PRESETS.get(vm.name) == vm:
        return vm.name
    return asdict(vm)


def vm_from_field(vm: VMLike) -> VMSpec:
    """Rebuild the :class:`VMSpec` a campaign runs on (inverse of above)."""
    if isinstance(vm, str):
        return VMSpec.preset(vm)
    return VMSpec(name=str(vm["name"]), vcpus=int(vm["vcpus"]),
                  family=str(vm["family"]))


def vm_display_name(vm: VMLike) -> str:
    """The VM's name whether the field holds a preset name or a dict."""
    return vm if isinstance(vm, str) else str(vm["name"])

#: Default spacing between successive seeds' campaign start times: three
#: days, matching the protocol's "tuning performed during different time
#: intervals" repeats.
DEFAULT_START_TIME_STEP = 3.0 * 86400.0


@dataclass(frozen=True)
class CampaignSpec:
    """Everything one tuning campaign depends on, by value.

    Attributes:
        app: application name (``repro.apps.registry.APPLICATION_NAMES``).
        strategy: tuner name as used by the evaluation protocol
            (``"DarwinGame"``, ``"BLISS"``, ``"Optimal"``, ...).
        vm: VM preset name (``repro.cloud.vm.PRESETS``) or, for a custom
            instance type, the ``VMSpec`` field dict (see :func:`vm_to_field`).
        scale: search-space scale preset (``"full"``/``"bench"``/``"test"``
            or an integer level cap).
        seed: environment seed — the interference realisation.
        start_time: simulated campaign start time (seconds).
        eval_runs: executions in the post-tuning quality evaluation.
        tuner_seed: optional override decoupling the tuner's internal
            randomness from the environment seed (defaults to ``seed``).
        tag: free-form label carried through to the store.
        scenario: registered scenario-pack name — the dynamic cloud
            conditions the campaign tunes under (``"steady"`` is the
            paper's stationary baseline).
        format: registered tournament-format recipe the DarwinGame engine
            runs (``"darwin"`` is the paper's Alg. 1; see
            :mod:`repro.formats.recipes`).  Strategies other than
            ``DarwinGame`` have no tournament shape and ignore it.
    """

    app: str
    strategy: str = "DarwinGame"
    vm: VMLike = "m5.8xlarge"
    scale: Scale = "bench"
    seed: int = 0
    start_time: float = 0.0
    eval_runs: int = 100
    tuner_seed: Optional[int] = None
    tag: str = ""
    scenario: str = "steady"
    format: str = "darwin"

    @property
    def campaign_id(self) -> str:
        """Stable content-addressed identifier of this campaign.

        Human-readable prefix plus a hash of every field, so any change to
        the spec yields a new ID while re-enumerating the same grid in a
        different process reproduces the same IDs (the resume contract).
        The default ``steady`` scenario and ``darwin`` format are excluded
        from the hash — they are the pre-axis campaigns, so stores written
        before those axes existed keep resuming under their original IDs.
        """
        data = asdict(self)
        if data.get("scenario", "steady") == "steady":
            del data["scenario"]
        if data.get("format", "darwin") == "darwin":
            del data["format"]
        blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha1(blob.encode("utf-8")).hexdigest()[:10]
        vm = vm_display_name(self.vm)
        prefix = f"{self.app}.{vm}.{self.strategy}.s{self.seed}"
        if self.scenario != "steady":
            prefix += f".{self.scenario}"
        if self.format != "darwin":
            prefix += f".{self.format}"
        return f"{prefix}.{digest}"

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Rebuild a spec written by :meth:`to_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class CampaignGrid:
    """A declarative fleet: apps x vms x strategies x formats x scenarios x seeds.

    Enumeration order is deterministic (apps, then vms, then strategies,
    then formats, then scenarios, then seeds) but campaign outcomes are
    order-independent — every spec is self-contained — so a runner may
    execute them in any order or in parallel and still reproduce serial
    results.

    The k-th seed's campaign starts ``k * start_time_step`` simulated
    seconds into the trace, mirroring the protocol's repeated-tuning setup.
    """

    apps: Tuple[str, ...]
    strategies: Tuple[str, ...] = ("DarwinGame",)
    vms: Tuple[str, ...] = ("m5.8xlarge",)
    seeds: Tuple[int, ...] = (0,)
    scale: Scale = "bench"
    eval_runs: int = 100
    start_time_step: float = DEFAULT_START_TIME_STEP
    tag: str = ""
    scenarios: Tuple[str, ...] = ("steady",)
    formats: Tuple[str, ...] = ("darwin",)

    def __post_init__(self) -> None:
        # Normalise CLI-style lists so equal grids hash/compare equal.
        for name in ("apps", "strategies", "vms", "seeds", "scenarios",
                     "formats"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    def _formats_for(self, strategy: str) -> Tuple[str, ...]:
        """The format axis as it applies to one strategy.

        Only ``DarwinGame`` has a tournament shape; enumerating a baseline
        once per format would re-run byte-identical campaigns under
        distinct IDs, so baselines collapse to a single ``darwin`` cell
        (whose ID matches the same campaign in a formatless sweep).
        """
        if strategy == "DarwinGame":
            return self.formats
        return ("darwin",)

    @property
    def size(self) -> int:
        """Number of campaigns the grid enumerates."""
        per_cell = len(self.apps) * len(self.vms) * len(self.scenarios) \
            * len(self.seeds)
        return per_cell * sum(
            len(self._formats_for(s)) for s in self.strategies
        )

    def specs(self) -> Iterator[CampaignSpec]:
        """Yield every campaign of the grid, in deterministic order."""
        for app in self.apps:
            for vm in self.vms:
                for strategy in self.strategies:
                    for fmt in self._formats_for(strategy):
                        for scenario in self.scenarios:
                            for k, seed in enumerate(self.seeds):
                                yield CampaignSpec(
                                    app=app,
                                    strategy=strategy,
                                    vm=vm,
                                    scale=self.scale,
                                    seed=int(seed),
                                    start_time=float(k) * self.start_time_step,
                                    eval_runs=self.eval_runs,
                                    tag=self.tag,
                                    scenario=scenario,
                                    format=fmt,
                                )

    def to_dict(self) -> dict:
        """Plain-JSON representation (stored as a sweep's header line)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignGrid":
        """Rebuild a grid written by :meth:`to_dict`."""
        return cls(**data)


def repeat_specs(
    app_name: str,
    strategy: str,
    *,
    repeats: int,
    scale: Scale = "bench",
    vm: VMLike = "m5.8xlarge",
    seed: int = 0,
    eval_runs: int = 100,
    vary_tuner_seed: bool = True,
) -> list:
    """Campaign specs equivalent to :func:`repro.experiments.protocol.repeat_strategy`.

    Uses the protocol's own seed plan, so submitting these specs through a
    runner (serial or parallel) reproduces ``repeat_strategy`` bit for bit.
    """
    from repro.experiments.protocol import repeat_seed_plan

    return [
        CampaignSpec(
            app=app_name,
            strategy=strategy,
            vm=vm,
            scale=scale,
            seed=env_seed,
            start_time=start_time,
            eval_runs=eval_runs,
            tuner_seed=tuner_seed,
        )
        for env_seed, start_time, tuner_seed in repeat_seed_plan(
            seed, repeats, vary_tuner_seed=vary_tuner_seed
        )
    ]
