"""Fault-tolerant fleet dispatch: a lease/heartbeat work queue for campaigns.

The :class:`~repro.campaigns.runner.CampaignRunner` used to drive a plain
``multiprocessing.Pool`` — fine on a quiet laptop, fatal on the kind of
preemptible, noisy fleet the paper's campaigns are *about*: a hard-killed
worker wedged the pool, a hung campaign stalled the sweep forever, and a
failure burned its campaign with no retry.  This module replaces that pool
with the architecture ROADMAP item 1 calls for, split the way the opmed
exemplar splits its result store from its optimizer:

* :class:`TaskLedger` — the durable side.  One lease record per campaign
  (state, attempt count, lease holder, last heartbeat, backoff deadline),
  journaled as JSONL alongside the campaign store, kept deliberately
  separate from the execution engine so tomorrow's remote workers can
  lease from the same ledger.
* :class:`Dispatcher` — the engine.  Leases campaign IDs to local worker
  processes over per-worker duplex pipes, monitors their heartbeats,
  reclaims expired leases (worker death *or* task timeout), re-queues
  failed and lost campaigns with exponential backoff, and — once a
  campaign exhausts its retry budget — quarantines it as a ``"failed"``
  record so the sweep *completes* instead of dying.

Per-worker pipes, not shared queues, are the load-bearing choice: a worker
SIGKILLed mid-``put`` on a shared ``multiprocessing.Queue`` can die holding
the queue's internal lock and deadlock every sibling, while a killed
worker's pipe simply reads EOF in the parent — which is itself the
liveness signal.  Workers run a daemon heartbeat thread, so a live-but-busy
worker keeps beating while a dead one goes silent *and* hangs up.

Determinism contract: campaign outcomes are pure functions of their specs,
so retries and re-leases change *when* a record is computed, never what it
contains — a chaos run that converges stores the same results as a
fault-free run (modulo the ``attempts`` / ``traceback`` metadata;
see :meth:`repro.campaigns.store.CampaignRecord.stable_payload`).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import threading
import time
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import STATUS_FAILED, CampaignRecord
from repro.errors import (
    CampaignTimeout,
    ReproError,
    RetryExhausted,
    WorkerLost,
)
from repro.telemetry.events import (
    counter as _telemetry_counter,
    emitter as _telemetry_emitter,
    iter_jsonl_payloads,
)
from repro.telemetry.metrics import metrics_registry

#: Ledger lease states.  ``quarantined`` is terminal-failed: the campaign
#: burned its whole retry budget and was surrendered to the store as a
#: ``"failed"`` record (re-runnable via ``resume``, which retries failures).
LEASE_PENDING = "pending"
LEASE_LEASED = "leased"
LEASE_DONE = "done"
LEASE_QUARANTINED = "quarantined"


def _pool_context(start_method: Optional[str] = None):
    """``fork`` where the platform offers it (cheap workers), else spawn.

    ``start_method`` forces a specific method (the spawn path is what
    non-fork platforms get; tests pin it to cover that fallback).
    """
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            raise ReproError(
                f"start method {start_method!r} not available; "
                f"this platform offers {methods}"
            )
        return multiprocessing.get_context(start_method)
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def worker_lost_message(context: str) -> str:
    """The one diagnosis for a dead worker, shared by dispatcher and map.

    A hard-killed worker gives no traceback, so the message has to carry
    the whole story: what it means, what usually causes it, what happens
    next.
    """
    return (
        "WorkerLost: a worker process died without reporting back "
        f"(hard kill, OOM killer, or interpreter crash) {context}"
    )


def ledger_path_for(store_path: Union[str, Path]) -> Path:
    """The file-backend ``.ledger`` sidecar convention.

    Legacy helper: consumers that know their store should ask it via
    ``store.sidecar_path(SIDECAR_LEDGER)``, which directory backends
    resolve *inside* the store tree instead.
    """
    store_path = Path(store_path)
    return store_path.with_name(store_path.name + ".ledger")


@dataclass
class LeaseRecord:
    """One campaign's lease state inside the :class:`TaskLedger`.

    ``attempts`` counts leases granted (first execution included);
    ``next_eligible`` is the monotonic-clock instant before which a
    re-queued campaign must not be re-leased (exponential backoff).
    """

    campaign_id: str
    status: str = LEASE_PENDING
    attempts: int = 0
    worker: Optional[int] = None
    leased_at: Optional[float] = None
    last_heartbeat: Optional[float] = None
    next_eligible: float = 0.0
    last_error: str = ""


class TaskLedger:
    """Durable per-campaign lease ledger — the dispatcher's source of truth.

    Owns the retry *policy* (budget + backoff) and the lease *state*; the
    :class:`Dispatcher` owns only execution.  Every state transition is
    journaled as one JSON line (``kind="lease_event"``) when a journal path
    is given, so an operator can reconstruct exactly what the fleet did to
    every campaign: when it was leased, to whom, how often it beat, why it
    came back.  The journal is diagnostic — resume correctness rides on the
    campaign store, so a deleted ledger costs history, never results.

    Args:
        journal_path: JSONL sidecar to append lease events to (None keeps
            the ledger in memory only).
        max_retries: re-executions granted after the first failed attempt;
            a campaign failing ``max_retries + 1`` times is quarantined.
        backoff: base of the exponential re-queue delay — retry *k* waits
            ``backoff * 2**(k-1)`` seconds.
    """

    def __init__(
        self,
        campaign_ids: Sequence[str] = (),
        *,
        journal_path: Optional[Union[str, Path]] = None,
        max_retries: int = 2,
        backoff: float = 0.1,
    ):
        if max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 0:
            raise ReproError(f"backoff must be >= 0, got {backoff}")
        self.max_retries = max_retries
        self.backoff = backoff
        self.journal_path = (
            Path(journal_path) if journal_path is not None else None
        )
        self._order: List[str] = []
        self._records: Dict[str, LeaseRecord] = {}
        for campaign_id in campaign_ids:
            self.register(campaign_id)

    # -- registration and lookup ---------------------------------------

    def register(self, campaign_id: str) -> None:
        if campaign_id in self._records:
            raise ReproError(f"campaign {campaign_id} already in the ledger")
        self._records[campaign_id] = LeaseRecord(campaign_id=campaign_id)
        self._order.append(campaign_id)

    def record(self, campaign_id: str) -> LeaseRecord:
        return self._records[campaign_id]

    def records(self) -> List[LeaseRecord]:
        """Every lease record, in registration order."""
        return [self._records[c] for c in self._order]

    def __len__(self) -> int:
        return len(self._records)

    # -- scheduling ----------------------------------------------------

    def eligible(self, now: float) -> List[str]:
        """Campaigns a worker may lease right now, in registration order."""
        return [
            c for c in self._order
            if self._records[c].status == LEASE_PENDING
            and self._records[c].next_eligible <= now
        ]

    def next_eligible_at(self) -> Optional[float]:
        """Earliest instant a backed-off campaign becomes leasable again."""
        pending = [
            r.next_eligible for r in self._records.values()
            if r.status == LEASE_PENDING
        ]
        return min(pending) if pending else None

    def unfinished(self) -> bool:
        return any(
            r.status in (LEASE_PENDING, LEASE_LEASED)
            for r in self._records.values()
        )

    def retries(self) -> int:
        """Total re-executions granted so far across all campaigns."""
        return sum(max(0, r.attempts - 1) for r in self._records.values())

    # -- state transitions ---------------------------------------------

    def lease(self, campaign_id: str, worker: int, now: float) -> int:
        """Grant the campaign to a worker; returns the attempt number."""
        record = self._records[campaign_id]
        if record.status != LEASE_PENDING:
            raise ReproError(
                f"cannot lease campaign {campaign_id} in state {record.status}"
            )
        record.status = LEASE_LEASED
        record.attempts += 1
        record.worker = worker
        record.leased_at = now
        record.last_heartbeat = now
        self._journal("leased", record)
        return record.attempts

    def heartbeat(self, campaign_id: str, now: float) -> None:
        record = self._records[campaign_id]
        record.last_heartbeat = now
        self._journal("heartbeat", record)

    def complete(self, campaign_id: str) -> None:
        record = self._records[campaign_id]
        record.status = LEASE_DONE
        record.worker = None
        self._journal("completed", record)

    def requeue(self, campaign_id: str, error: str, now: float) -> str:
        """A leased attempt failed (or was lost); decide its future.

        Returns ``"retry"`` (re-queued with exponential backoff) or
        :data:`LEASE_QUARANTINED` (budget exhausted — surrender it).
        """
        record = self._records[campaign_id]
        record.last_error = error
        record.worker = None
        if record.attempts > self.max_retries:
            record.status = LEASE_QUARANTINED
            self._journal("quarantined", record)
            return LEASE_QUARANTINED
        record.status = LEASE_PENDING
        record.next_eligible = now + self.backoff * (2 ** (record.attempts - 1))
        self._journal("requeued", record)
        return "retry"

    # -- journal -------------------------------------------------------

    def _journal(self, event: str, record: LeaseRecord) -> None:
        # Mirror lease transitions onto the telemetry bus (a no-op while
        # telemetry is off).  Heartbeats are skipped: they dominate event
        # volume while carrying no per-campaign story the sidecar needs.
        if event != "heartbeat":
            _telemetry_counter(
                f"lease.{event}",
                campaign=record.campaign_id,
                attempt=record.attempts,
                worker=record.worker,
            )
        if self.journal_path is None:
            return
        payload = {
            "kind": "lease_event",
            "event": event,
            "id": record.campaign_id,
            "status": record.status,
            "attempt": record.attempts,
            "worker": record.worker,
            "wall": time.time(),
        }
        if record.last_error and event in ("requeued", "quarantined"):
            payload["error"] = record.last_error
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        with self.journal_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()

    @staticmethod
    def read_events(path: Union[str, Path]) -> List[dict]:
        """Parse a journal back into its event dicts (truncation-tolerant).

        Tolerant of a journal cut at *any* byte offset — including inside
        the first line, and inside a multi-byte UTF-8 character (which
        used to raise ``UnicodeDecodeError`` before a single line was
        parsed).  :func:`repro.telemetry.events.iter_jsonl_payloads`
        handles both by decoding with ``errors="replace"`` and skipping
        lines that no longer parse.
        """
        return [
            payload
            for payload in iter_jsonl_payloads(path)
            if payload.get("kind") == "lease_event"
        ]


def quarantine_record(record: CampaignRecord) -> CampaignRecord:
    """Stamp a terminally-failed record with its retry history.

    The sweep completes around it (graceful degradation); the prefix makes
    quarantined failures greppable in stores and reports.
    """
    return replace(
        record,
        status=STATUS_FAILED,
        error=(
            f"{RetryExhausted.__name__}: gave up after {record.attempts} "
            f"attempt(s); last error: {record.error or 'worker lost'}"
        ),
    )


def _lost_record(spec: CampaignSpec, attempts: int, error: str) -> CampaignRecord:
    """The record for an attempt that died without reporting back."""
    return CampaignRecord(
        spec=spec, status=STATUS_FAILED, error=error, attempts=attempts
    )


# -- worker side -------------------------------------------------------


def _dispatch_worker(
    worker_id: int,
    conn,
    cache_dir: Optional[str],
    app_keys: Sequence[Tuple[str, object]],
    heartbeat_interval: float,
    fault_plan,
    telemetry: bool = False,
    profile_dir: Optional[str] = None,
) -> None:
    """Worker main loop: lease in, heartbeat while busy, result out.

    One duplex pipe to the parent carries everything; a lock serialises
    sends because the daemon heartbeat thread and the main thread share it.
    The worker never exits on its own — only a ``None`` sentinel (orderly
    shutdown) or parent death (pipe EOF) ends the loop, so an EOF in the
    *parent* always means the worker died.

    With ``telemetry`` on, the worker installs a
    :class:`~repro.telemetry.events.PipeEmitter` over the same ``send``
    — its events ride the dispatch pipe home and the parent merges them
    into the one ``.telemetry`` sidecar, stamped with this worker's ID.
    """
    from repro.campaigns.runner import _worker_init, execute_campaign
    from repro.faults import mark_dispatch_worker, set_active_fault_plan
    from repro.telemetry.events import PipeEmitter, set_emitter
    from repro.telemetry.profiling import set_profile_dir

    _worker_init(cache_dir, app_keys)
    set_active_fault_plan(fault_plan)
    mark_dispatch_worker()
    if profile_dir is not None:
        set_profile_dir(profile_dir)

    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):  # parent gone; die quietly
                os._exit(0)

    if telemetry:
        set_emitter(PipeEmitter(send, worker_id))

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            send(("heartbeat", worker_id))

    threading.Thread(target=beat, daemon=True, name="heartbeat").start()

    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break  # parent died; nothing left to work for
        if task is None:
            break
        index, spec, attempt = task
        send(("started", worker_id, spec.campaign_id))
        record = execute_campaign(spec, attempt=attempt)
        send(("result", worker_id, index, record))
    stop.set()


# -- parent side -------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side view of one worker process."""

    wid: int
    process: object
    conn: object
    lease: Optional[Tuple[int, CampaignSpec, int]] = None  # (index, spec, n)

    @property
    def busy(self) -> bool:
        return self.lease is not None


class Dispatcher:
    """Leases campaigns to worker processes and survives their failure.

    The execution half of the dispatch layer (state lives in the
    :class:`TaskLedger`).  :meth:`run` yields ``(index, record)`` terminal
    outcomes exactly like the runner's old pool path, so the runner's
    store/progress plumbing is untouched — but underneath, every campaign
    is a lease that is heartbeat-monitored, reclaimed on worker death or
    task timeout, retried with exponential backoff, and finally
    quarantined rather than allowed to kill the sweep.

    Args:
        jobs: maximum concurrent worker processes.
        ledger: the (freshly constructed) lease ledger; owns retry policy.
        task_timeout: seconds a lease may run before the worker is presumed
            hung, killed, and the campaign re-queued (None/0 disables).
        heartbeat_interval: how often workers beat; silence for
            ``heartbeat_grace`` (default ``max(10x interval, 5 s)``) is
            treated as a lost worker even if the process looks alive.
        start_method / cache_dir / app_keys / fault_plan: worker bring-up —
            same contract as the runner's pool initializer, plus the chaos
            plan installed into every worker.
    """

    def __init__(
        self,
        jobs: int,
        ledger: TaskLedger,
        *,
        task_timeout: Optional[float] = None,
        heartbeat_interval: float = 0.5,
        heartbeat_grace: Optional[float] = None,
        start_method: Optional[str] = None,
        cache_dir: Optional[str] = None,
        app_keys: Sequence[Tuple[str, object]] = (),
        fault_plan=None,
        telemetry: bool = False,
        profile_dir: Optional[str] = None,
        clock=time.monotonic,
    ):
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        if task_timeout is not None and task_timeout <= 0:
            task_timeout = None
        if heartbeat_interval <= 0:
            raise ReproError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        self.jobs = jobs
        self.ledger = ledger
        self.task_timeout = task_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_grace = (
            heartbeat_grace
            if heartbeat_grace is not None
            else max(10.0 * heartbeat_interval, 5.0)
        )
        self.start_method = start_method
        self.cache_dir = cache_dir
        self.app_keys = tuple(app_keys)
        self.fault_plan = fault_plan
        self.telemetry = telemetry
        self.profile_dir = profile_dir
        self.clock = clock
        self._workers: Dict[int, _Worker] = {}
        self._next_wid = 0
        self._specs: Dict[str, Tuple[int, CampaignSpec]] = {}
        # Terminal records produced outside _poll (lease-time worker loss).
        self._orphans: List[Tuple[int, CampaignRecord]] = []

    # -- public entry point --------------------------------------------

    def run(
        self, pending: Sequence[Tuple[int, CampaignSpec]]
    ) -> Iterator[Tuple[int, CampaignRecord]]:
        """Dispatch every pending campaign; yield terminal outcomes.

        Retried attempts are internal — only a success or a quarantined
        failure leaves this generator, so the runner checkpoints exactly
        one record per campaign.
        """
        self._specs = {
            spec.campaign_id: (index, spec) for index, spec in pending
        }
        for _, spec in pending:
            self.ledger.register(spec.campaign_id)
        self._ctx = _pool_context(self.start_method)
        try:
            while self.ledger.unfinished():
                now = self.clock()
                self._lease_eligible(now)
                yield from self._poll(self.clock())
        finally:
            self._shutdown()

    # -- leasing -------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        wid = self._next_wid
        self._next_wid += 1
        process = self._ctx.Process(
            target=_dispatch_worker,
            args=(
                wid,
                child_conn,
                self.cache_dir,
                self.app_keys,
                self.heartbeat_interval,
                self.fault_plan,
                self.telemetry,
                self.profile_dir,
            ),
            daemon=True,
            name=f"repro-dispatch-{wid}",
        )
        process.start()
        # The parent must drop its copy of the child end, or a dead worker
        # never reads as EOF here.
        child_conn.close()
        worker = _Worker(wid=wid, process=process, conn=parent_conn)
        self._workers[wid] = worker
        return worker

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._workers.values():
            if not worker.busy:
                return worker
        if len(self._workers) < self.jobs:
            return self._spawn_worker()
        return None

    def _lease_eligible(self, now: float) -> None:
        for campaign_id in self.ledger.eligible(now):
            worker = self._idle_worker()
            if worker is None:
                return
            index, spec = self._specs[campaign_id]
            attempt = self.ledger.lease(campaign_id, worker.wid, now)
            worker.lease = (index, spec, attempt)
            try:
                worker.conn.send((index, spec, attempt))
            except (BrokenPipeError, OSError):
                # Died between spawn/idle and lease; reclaim immediately.
                # A quarantine here is stashed for _poll to emit.
                released = self._release(
                    worker,
                    now,
                    worker_lost_message(
                        f"while being leased campaign {campaign_id}"
                    ),
                )
                self._reap(worker)
                self._orphans.extend(released)

    # -- polling -------------------------------------------------------

    def _poll_timeout(self, now: float) -> float:
        candidates = [now + 0.25]
        wakeup = self.ledger.next_eligible_at()
        if wakeup is not None:
            candidates.append(wakeup)
        for worker in self._workers.values():
            if not worker.busy:
                continue
            record = self.ledger.record(worker.lease[1].campaign_id)
            if self.task_timeout is not None and record.leased_at is not None:
                candidates.append(record.leased_at + self.task_timeout)
            if record.last_heartbeat is not None:
                candidates.append(record.last_heartbeat + self.heartbeat_grace)
        return min(0.25, max(0.02, min(candidates) - now))

    def _poll(self, now: float) -> List[Tuple[int, CampaignRecord]]:
        outcomes: List[Tuple[int, CampaignRecord]] = list(self._orphans)
        self._orphans = []
        timeout = self._poll_timeout(now)
        connections = [w.conn for w in self._workers.values()]
        if connections:
            ready = _connection_wait(connections, timeout)
        else:
            time.sleep(timeout)
            ready = []
        by_conn = {w.conn: w for w in self._workers.values()}
        for conn in ready:
            worker = by_conn.get(conn)
            if worker is None or worker.wid not in self._workers:
                continue
            self._drain(worker, outcomes)
        self._check_liveness(outcomes)
        return outcomes

    def _drain(
        self, worker: _Worker, outcomes: List[Tuple[int, CampaignRecord]]
    ) -> None:
        """Consume every queued message from one worker, EOF-tolerantly."""
        while worker.wid in self._workers:
            try:
                if not worker.conn.poll():
                    return
                message = worker.conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError):
                self._on_worker_lost(worker, outcomes)
                return
            self._on_message(worker, message, outcomes)

    def _on_message(
        self,
        worker: _Worker,
        message,
        outcomes: List[Tuple[int, CampaignRecord]],
    ) -> None:
        now = self.clock()
        kind = message[0]
        if kind == "heartbeat":
            if worker.busy:
                self.ledger.heartbeat(worker.lease[1].campaign_id, now)
        elif kind == "started":
            self.ledger.heartbeat(message[2], now)
        elif kind == "telemetry":
            # A worker's bus event arriving over its pipe: stamp the
            # worker ID and merge it into the parent's sidecar + metrics.
            _, wid, payload = message
            payload.setdefault("worker", wid)
            active = _telemetry_emitter()
            if active.enabled:
                active.emit_payload(payload)
                metrics_registry().ingest(payload)
        elif kind == "result":
            _, _, index, record = message
            worker.lease = None
            if record.ok:
                self.ledger.complete(record.campaign_id)
                outcomes.append((index, record))
            else:
                disposition = self.ledger.requeue(
                    record.campaign_id, record.error, now
                )
                if disposition == LEASE_QUARANTINED:
                    outcomes.append((index, quarantine_record(record)))

    # -- failure handling ----------------------------------------------

    def _check_liveness(
        self, outcomes: List[Tuple[int, CampaignRecord]]
    ) -> None:
        now = self.clock()
        for worker in list(self._workers.values()):
            if worker.wid not in self._workers:
                continue
            if not worker.process.is_alive():
                # Drain parting messages (a result may have made it out
                # before death), then treat what remains as lost.
                self._drain(worker, outcomes)
                if worker.wid in self._workers:
                    self._on_worker_lost(worker, outcomes)
                continue
            if not worker.busy:
                continue
            _, spec, attempt = worker.lease
            lease = self.ledger.record(spec.campaign_id)
            if (
                self.task_timeout is not None
                and lease.leased_at is not None
                and now - lease.leased_at > self.task_timeout
            ):
                self._expire(
                    worker,
                    f"{CampaignTimeout.__name__}: campaign "
                    f"{spec.campaign_id} exceeded the {self.task_timeout}s "
                    f"task timeout on attempt {attempt} (lease reclaimed, "
                    f"worker {worker.wid} killed)",
                    outcomes,
                )
            elif (
                lease.last_heartbeat is not None
                and now - lease.last_heartbeat > self.heartbeat_grace
            ):
                self._expire(
                    worker,
                    worker_lost_message(
                        f"(no heartbeat for {self.heartbeat_grace:.1f}s) "
                        f"while executing campaign {spec.campaign_id} "
                        f"(attempt {attempt})"
                    ),
                    outcomes,
                )

    def _expire(
        self,
        worker: _Worker,
        error: str,
        outcomes: List[Tuple[int, CampaignRecord]],
    ) -> None:
        """Kill a hung/silent worker and reclaim its lease."""
        try:
            worker.process.kill()
        except (OSError, AttributeError):  # pragma: no cover - already gone
            pass
        worker.process.join(5)
        self._reap(worker)
        outcomes.extend(self._release(worker, self.clock(), error))

    def _on_worker_lost(
        self, worker: _Worker, outcomes: List[Tuple[int, CampaignRecord]]
    ) -> None:
        context = "while idle"
        if worker.busy:
            _, spec, attempt = worker.lease
            context = (
                f"while executing campaign {spec.campaign_id} "
                f"(attempt {attempt})"
            )
        self._reap(worker)
        outcomes.extend(
            self._release(worker, self.clock(), worker_lost_message(context))
        )

    def _release(
        self, worker: _Worker, now: float, error: str
    ) -> List[Tuple[int, CampaignRecord]]:
        """Requeue (or quarantine) whatever lease a gone worker held."""
        if not worker.busy:
            return []
        index, spec, attempt = worker.lease
        worker.lease = None
        disposition = self.ledger.requeue(spec.campaign_id, error, now)
        if disposition == LEASE_QUARANTINED:
            return [
                (index, quarantine_record(_lost_record(spec, attempt, error)))
            ]
        return []

    def _reap(self, worker: _Worker) -> None:
        """Remove a dead worker from the fleet and release its resources."""
        self._workers.pop(worker.wid, None)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        worker.process.join(0)

    # -- shutdown ------------------------------------------------------

    def _shutdown(self) -> None:
        for worker in self._workers.values():
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers.values():
            worker.process.join(2)
            if worker.process.is_alive():
                try:
                    worker.process.kill()
                except OSError:  # pragma: no cover
                    pass
                worker.process.join(2)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers.clear()
