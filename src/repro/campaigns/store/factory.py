"""Backend selection (``open_store``) and cross-backend migration.

The factory is how every entry point — CLI, runner, status, report —
turns a ``--store`` path into the right :class:`~repro.campaigns.store.
base.ResultStore` without the operator naming a backend: existing stores
are sniffed from what is on disk (a directory is a sharded store, the
SQLite magic header is a SQLite store, anything else is JSONL), fresh
paths from their suffix (``.d`` / trailing separator → sharded,
``.sqlite``/``.sqlite3``/``.db`` → SQLite, default JSONL).  An explicit
``backend=`` always wins.

``migrate_store`` copies one store's merged read view — grid header plus
last-write-wins records, attempt metadata included — into an empty store
of any backend, so an operator can start on the zero-setup JSONL default
and move to sharded/SQLite when the sweep outgrows it (or back, to diff a
store with line tools).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Type

from repro.campaigns.store.base import PathLike, ResultStore
from repro.campaigns.store.jsonl import CampaignStore
from repro.campaigns.store.sharded import ShardedStore
from repro.campaigns.store.sqlite import SqliteStore
from repro.errors import ReproError

#: Registered backends, by the name ``--store-backend`` accepts.
STORE_BACKENDS: Dict[str, Type[ResultStore]] = {
    "jsonl": CampaignStore,
    "sharded": ShardedStore,
    "sqlite": SqliteStore,
}

BACKEND_NAMES = tuple(sorted(STORE_BACKENDS))

#: First bytes of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"

#: Fresh-path suffix conventions (existing paths are sniffed by content).
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")
SHARDED_SUFFIXES = (".d",)


def sniff_backend(path: PathLike) -> str:
    """Which backend a store path holds (or, if fresh, implies).

    Existing paths are judged by what is on disk — a directory, a file
    opening with the SQLite magic, or a line file — so stores keep working
    when renamed across suffix conventions.  Fresh paths fall back to the
    suffix conventions above, defaulting to JSONL.
    """
    path = Path(path)
    if path.is_dir():
        return "sharded"
    if path.is_file():
        try:
            with path.open("rb") as handle:
                head = handle.read(len(SQLITE_MAGIC))
        except OSError:
            return "jsonl"
        return "sqlite" if head == SQLITE_MAGIC else "jsonl"
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return "sqlite"
    if path.suffix.lower() in SHARDED_SUFFIXES or str(path).endswith(os.sep):
        return "sharded"
    return "jsonl"


def open_store(
    path: PathLike,
    backend: Optional[str] = None,
    *,
    shards: Optional[int] = None,
) -> ResultStore:
    """Open (or prepare to create) the result store at ``path``.

    ``backend`` forces one of :data:`BACKEND_NAMES`; ``None`` sniffs (see
    :func:`sniff_backend`).  ``shards`` sizes a *new* sharded store and is
    ignored otherwise — an existing sharded store's count is pinned in its
    ``meta.json``.
    """
    name = backend if backend is not None else sniff_backend(path)
    cls = STORE_BACKENDS.get(name)
    if cls is None:
        raise ReproError(
            f"unknown store backend {name!r}; registered: {list(BACKEND_NAMES)}"
        )
    if cls is ShardedStore:
        return ShardedStore(path, shards=shards)
    return cls(path)


def migrate_store(source: ResultStore, destination: ResultStore) -> int:
    """Copy ``source``'s merged read view into the empty ``destination``.

    Lossless for everything live: the grid header and every
    last-write-wins record — attempt metadata included — round-trip
    byte-identically (superseded duplicate entries, which no reader can
    observe, are compacted away).  Refuses a destination that already
    holds a grid or records: merging two sweeps' stores silently would
    make their provenance unrecoverable.  Returns the number of records
    copied.
    """
    if not source.exists():
        raise ReproError(f"no store to migrate at {source.path}")
    if source.path.resolve() == destination.path.resolve():
        raise ReproError(
            f"source and destination are the same store ({source.path})"
        )
    grid, records = source.load()
    if destination.exists() and (
        destination.read_grid() is not None or len(destination) > 0
    ):
        raise ReproError(
            f"destination store {destination.path} is not empty; migrate "
            f"into a fresh path (merging stores would lose provenance)"
        )
    with destination.exclusive():
        if grid is not None:
            destination.write_grid(grid)
        for record in records:
            destination.append(record)
    return len(records)
