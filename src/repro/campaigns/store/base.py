"""The ``ResultStore`` protocol: one persistence contract, many backends.

Every sweep-facing consumer — :class:`repro.campaigns.runner.CampaignRunner`
(checkpoint + skip-done resume), ``repro status`` (ledger/telemetry
fusion), ``repro report`` (aggregation) — programs against the abstract
:class:`ResultStore` here, never against a concrete backend.  A backend
decides *where* grid headers and campaign records live; the contract every
backend must honour is fixed:

* **append-only, last write wins** — appending a record for an ID that is
  already stored supersedes it on read (e.g. a failed campaign retried on
  resume); nothing is ever rewritten in place.
* **keep-first grid header** — the grid a sweep was launched with is
  recorded once; later :meth:`~ResultStore.write_grid` calls on a
  non-empty store are no-ops (the resume contract is per-campaign IDs,
  not the header).
* **torn writes are tolerated** — a crash mid-append loses at most the
  entry being written; every complete entry still loads.
* **one writer, many readers** — :meth:`~ResultStore.exclusive` hands out
  the sweep-level advisory lock; plain readers are never blocked.

Reads are memoised: :meth:`~ResultStore.load` parses the underlying
storage once and caches the indexed snapshot keyed by a backend-provided
freshness token (file stats for the JSONL backends), so the former
quadratic resume/status/report pattern — ``completed_ids()`` then
``lookup()`` then ``__len__``, each a full reparse — now costs one pass
however many views are taken, while an append (ours or another
process's) still invalidates the snapshot.
"""

from __future__ import annotations

import contextlib
import json
import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.campaigns.spec import CampaignGrid, CampaignSpec
from repro.campaigns.store.record import (
    FORMAT_VERSION,
    KIND_GRID,
    KIND_RECORD,
    CampaignRecord,
)
from repro.errors import ReproError

PathLike = Union[str, Path]

#: The sidecar kinds a store resolves for its consumers: the dispatcher's
#: lease journal, the telemetry event journal, and the cProfile dump
#: directory.  File backends place them next to the store file
#: (``sweep.jsonl.ledger``); the sharded directory backend places them
#: inside the store directory (``sweep.d/ledger``) so the store stays one
#: self-contained tree.
SIDECAR_LEDGER = "ledger"
SIDECAR_TELEMETRY = "telemetry"
SIDECAR_PROFILES = "profiles"


def grid_header_payload(grid: CampaignGrid) -> dict:
    """The keep-first header entry every backend records a sweep's grid as."""
    return {
        "kind": KIND_GRID,
        "version": FORMAT_VERSION,
        "grid": grid.to_dict(),
    }


def iter_payloads(path: PathLike) -> Iterator[dict]:
    """Yield the parseable dict lines of a JSONL file, skipping damage.

    The truncation-tolerant reader behind both JSONL backends: a journal
    may be cut at *any* byte offset — mid-line, mid-first-line, even
    mid-UTF-8-sequence (a crash mid-append stops wherever the kernel
    stopped it) — and the surviving prefix of complete lines must still
    parse.  Reading with ``errors="replace"`` keeps a torn multi-byte
    character from raising ``UnicodeDecodeError`` before line splitting
    even starts; the mangled line then fails JSON parsing and is skipped
    like any other tear.
    """
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict):
                yield payload


@contextlib.contextmanager
def flocked(handle):
    """Hold an exclusive ``flock`` on an open file for one write.

    The fine-grained append lock (distinct from the sweep-level
    :class:`StoreLock`, which lives on a sidecar and is held for a whole
    sweep): concurrent writers to *one file* serialise their appends and
    header checks here, while writers to different files — different
    shards of a sharded store — proceed without contending.
    """
    if fcntl is not None:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    try:
        yield handle
    finally:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def stat_token(*paths: Path) -> tuple:
    """A freshness token over files: changes whenever any of them does.

    Built from ``(size, mtime_ns)`` pairs — every append grows a JSONL
    file, so the token cannot miss a write even inside one mtime tick.
    """
    token = []
    for path in paths:
        try:
            stat = path.stat()
        except OSError:
            token.append((str(path), None))
        else:
            token.append((str(path), stat.st_size, stat.st_mtime_ns))
    return tuple(token)


class StoreLock:
    """Advisory exclusive lock guarding a store against concurrent sweeps.

    Two sweeps appending to the same store would interleave silently —
    each would skip-done against a snapshot the other is growing.  The lock
    turns that into a clear :class:`ReproError` up front.  It is ``flock``
    on a sidecar file (``<store>.lock`` for file backends, ``store.lock``
    inside the directory for sharded ones), so it is advisory (plain
    readers like ``repro report`` are never blocked) and the kernel
    releases it if the holding process dies — a stale lock *file* on disk
    is harmless.
    """

    def __init__(self, store_path: PathLike, lock_path: Optional[PathLike] = None):
        self.store_path = Path(store_path)
        self.path = (
            Path(lock_path)
            if lock_path is not None
            else self.store_path.with_name(self.store_path.name + ".lock")
        )
        self._handle = None

    @property
    def held(self) -> bool:
        return self._handle is not None

    def acquire(self) -> "StoreLock":
        if self.held:
            raise ReproError(f"store lock {self.path} is already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(self.path, "a+", encoding="utf-8")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.seek(0)  # "a+" opens positioned at EOF
                holder = handle.read().strip() or "unknown pid"
                handle.close()
                raise ReproError(
                    f"campaign store {self.store_path} is locked by another "
                    f"running sweep ({holder}); concurrent sweeps on one "
                    f"store would corrupt it — wait for the other sweep or "
                    f"point it at a different --store"
                ) from None
        # Diagnostics only; the lock itself is the flock, not the content.
        handle.seek(0)
        handle.truncate()
        handle.write(f"pid {os.getpid()}\n")
        handle.flush()
        self._handle = handle
        return self

    def release(self) -> None:
        if self._handle is None:
            return
        if fcntl is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


class ResultStore(ABC):
    """Abstract persistence contract every sweep consumer programs against.

    Subclasses implement the four storage primitives (:meth:`exists`,
    :meth:`write_grid`, :meth:`append`, :meth:`_load_uncached`) plus a
    freshness token; the shared read API (:meth:`load`, :meth:`records`,
    :meth:`read_grid`, :meth:`completed_ids`, :meth:`lookup`,
    :meth:`__len__`) is derived here on top of one memoised snapshot.
    Backends with native indexes (SQLite) override the derived reads with
    direct queries.
    """

    #: Registry name of this backend (``"jsonl"``/``"sharded"``/``"sqlite"``).
    backend: str = "abstract"

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._snapshot: Optional[
            Tuple[Optional[CampaignGrid], Dict[str, CampaignRecord]]
        ] = None
        self._snapshot_token: Optional[tuple] = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self.path)!r})"

    # -- storage primitives (backend-specific) --------------------------

    @abstractmethod
    def exists(self) -> bool:
        """Whether any persisted state exists at :attr:`path`."""

    @abstractmethod
    def write_grid(self, grid: CampaignGrid) -> None:
        """Record the sweep's grid header (keep-first; see class docs)."""

    @abstractmethod
    def append(self, record: CampaignRecord) -> None:
        """Durably append one finished campaign (the checkpoint step)."""

    @abstractmethod
    def _load_uncached(
        self,
    ) -> Tuple[Optional[CampaignGrid], Dict[str, CampaignRecord]]:
        """One full pass over storage: ``(grid_or_None, records_by_id)``.

        Records are de-duplicated by campaign ID, last write winning.
        """

    @abstractmethod
    def _freshness_token(self) -> Optional[tuple]:
        """Snapshot cache key; ``None`` disables memoisation entirely."""

    # -- locking and sidecars -------------------------------------------

    def exclusive(self) -> StoreLock:
        """An (unacquired) sweep-level writer lock; use as a context manager.

        :class:`repro.campaigns.runner.CampaignRunner` holds it for the
        duration of a sweep so a second concurrent sweep on the same store
        fails fast instead of silently interleaving appends.
        """
        return StoreLock(self.path)

    def sidecar_path(self, kind: str) -> Path:
        """Where this store's ``kind`` sidecar lives (see module constants).

        File backends keep sidecars as siblings (``sweep.jsonl.ledger``);
        directory backends override to keep them inside the store tree.
        """
        return self.path.with_name(f"{self.path.name}.{kind}")

    # -- memoised read API ----------------------------------------------

    def invalidate(self) -> None:
        """Drop the cached snapshot (appends call this automatically)."""
        self._snapshot = None
        self._snapshot_token = None

    def _indexed(self) -> Tuple[Optional[CampaignGrid], Dict[str, CampaignRecord]]:
        """The memoised ``(grid, records_by_id)`` snapshot, refreshed on change."""
        token = self._freshness_token()
        if (
            token is None
            or self._snapshot is None
            or token != self._snapshot_token
        ):
            snapshot = self._load_uncached()
            if token is not None:
                self._snapshot = snapshot
                self._snapshot_token = token
            return snapshot
        return self._snapshot

    def load(self) -> tuple:
        """One (cached) pass over storage: ``(grid_or_None, records)``.

        Records are de-duplicated by campaign ID (last write wins — e.g. a
        failed campaign retried on resume).
        """
        grid, by_id = self._indexed()
        return grid, list(by_id.values())

    def read_grid(self) -> Optional[CampaignGrid]:
        """The grid this sweep was launched with, if one was recorded."""
        return self._indexed()[0]

    def records(self) -> List[CampaignRecord]:
        """Every stored campaign record, de-duplicated (last write wins)."""
        return self.load()[1]

    def completed_ids(self) -> Set[str]:
        """IDs a resumed sweep may skip: campaigns stored as done.

        Failed campaigns are *not* listed — resume retries them.
        """
        _, by_id = self._indexed()
        return {cid for cid, record in by_id.items() if record.ok}

    def lookup(self, specs: Iterable[CampaignSpec]) -> Dict[str, CampaignRecord]:
        """Stored records for the given specs, keyed by campaign ID."""
        _, by_id = self._indexed()
        wanted = {spec.campaign_id for spec in specs}
        return {cid: by_id[cid] for cid in wanted if cid in by_id}

    def __len__(self) -> int:
        return len(self._indexed()[1])

    def close(self) -> None:
        """Release any backend handles (no-op for plain-file backends)."""
