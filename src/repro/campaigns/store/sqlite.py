"""The SQLite backend — indexed reads for stores too big to reparse.

One table keyed by campaign ID turns the JSONL backends' full-file parse
into point and index lookups: ``completed_ids()`` is an indexed scan that
never touches a payload, ``lookup()`` is a keyed select, ``len()`` is
``COUNT(*)``.  The contract is identical to the line-oriented backends —
append-only with last-write-wins per ID (an upsert), a keep-first grid
header (an ``INSERT OR IGNORE`` row), crash-tolerant appends (a torn
transaction rolls back instead of leaving a torn line) — and WAL journal
mode lets ``repro status``/``report`` read concurrently while a sweep
writes.

The payloads stored are byte-identical JSON to what the JSONL backends
write per line, so ``repro store migrate`` between any two backends is a
plain copy.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.campaigns.spec import CampaignGrid, CampaignSpec
from repro.campaigns.store.base import PathLike, ResultStore, grid_header_payload
from repro.campaigns.store.record import (
    KIND_GRID,
    STATUS_DONE,
    CampaignRecord,
)
from repro.errors import ReproError

#: Seconds a writer waits on SQLite's own file lock before erroring; the
#: sweep-level StoreLock means real contention is brief (status readers in
#: WAL mode never block writers at all).
_BUSY_TIMEOUT = 30.0

#: Upper bound on SQL variables per statement (SQLite's historical limit
#: is 999); keyed lookups chunk to stay under it.
_MAX_VARS = 500

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_records (
    campaign_id TEXT PRIMARY KEY,
    status      TEXT NOT NULL,
    payload     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS campaign_records_status
    ON campaign_records(status);
"""


class SqliteStore(ResultStore):
    """Single-table SQLite store (``--store-backend sqlite``)."""

    backend = "sqlite"

    def __init__(self, path: PathLike):
        super().__init__(path)
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None

    def exists(self) -> bool:
        return self.path.exists()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
            self._conn_pid = None

    def _connect(self) -> sqlite3.Connection:
        """The store's connection, re-opened after a fork.

        Connections must not cross ``fork()`` (SQLite file locks are
        per-process state), so the cache is keyed by PID; in practice only
        the sweep parent ever writes.
        """
        if self._conn is not None and self._conn_pid == os.getpid():
            return self._conn
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            conn = sqlite3.connect(str(self.path), timeout=_BUSY_TIMEOUT)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
        except sqlite3.DatabaseError as exc:
            raise ReproError(
                f"{self.path} is not a usable SQLite campaign store: {exc}"
            ) from exc
        self._conn = conn
        self._conn_pid = os.getpid()
        return conn

    # -- writing --------------------------------------------------------

    def write_grid(self, grid: CampaignGrid) -> None:
        """Record the grid header, keep-first.

        ``INSERT OR IGNORE`` on the meta table's primary key is the
        race-free form of "write only if absent": two racing sweep starts
        cannot both insert, whatever their interleaving.
        """
        conn = self._connect()
        value = json.dumps(grid_header_payload(grid), sort_keys=True)
        with conn:
            conn.execute(
                "INSERT OR IGNORE INTO store_meta(key, value) VALUES (?, ?)",
                (KIND_GRID, value),
            )

    def append(self, record: CampaignRecord) -> None:
        """Upsert one finished campaign (last write per ID wins on read)."""
        conn = self._connect()
        payload = record.to_payload()
        with conn:
            conn.execute(
                "INSERT INTO campaign_records(campaign_id, status, payload) "
                "VALUES (?, ?, ?) "
                "ON CONFLICT(campaign_id) DO UPDATE SET "
                "status = excluded.status, payload = excluded.payload",
                (
                    record.campaign_id,
                    record.status,
                    json.dumps(payload, sort_keys=True),
                ),
            )

    # -- reading --------------------------------------------------------

    def _freshness_token(self) -> Optional[tuple]:
        # Reads are direct indexed queries; memoising parsed snapshots on
        # top of them would only add a staleness window.
        return None

    def _load_uncached(
        self,
    ) -> Tuple[Optional[CampaignGrid], Dict[str, CampaignRecord]]:
        if not self.exists():
            return None, {}
        conn = self._connect()
        by_id: Dict[str, CampaignRecord] = {}
        # rowid order = first-insert order per ID (an upsert keeps the
        # original rowid), matching the JSONL backends' dict order.
        for (payload,) in conn.execute(
            "SELECT payload FROM campaign_records ORDER BY rowid"
        ):
            record = CampaignRecord.from_payload(json.loads(payload))
            by_id[record.campaign_id] = record
        return self._grid_from_meta(conn), by_id

    def _grid_from_meta(self, conn: sqlite3.Connection) -> Optional[CampaignGrid]:
        row = conn.execute(
            "SELECT value FROM store_meta WHERE key = ?", (KIND_GRID,)
        ).fetchone()
        if row is None:
            return None
        return CampaignGrid.from_dict(json.loads(row[0])["grid"])

    def read_grid(self) -> Optional[CampaignGrid]:
        if not self.exists():
            return None
        return self._grid_from_meta(self._connect())

    def completed_ids(self) -> Set[str]:
        """Indexed: an ID-only scan of the done rows, no payload parsing."""
        if not self.exists():
            return set()
        conn = self._connect()
        return {
            campaign_id
            for (campaign_id,) in conn.execute(
                "SELECT campaign_id FROM campaign_records WHERE status = ?",
                (STATUS_DONE,),
            )
        }

    def lookup(self, specs: Iterable[CampaignSpec]) -> Dict[str, CampaignRecord]:
        """Keyed select for exactly the requested IDs, chunked."""
        if not self.exists():
            return {}
        conn = self._connect()
        wanted: List[str] = sorted({spec.campaign_id for spec in specs})
        found: Dict[str, CampaignRecord] = {}
        for start in range(0, len(wanted), _MAX_VARS):
            chunk = wanted[start : start + _MAX_VARS]
            marks = ",".join("?" * len(chunk))
            for (payload,) in conn.execute(
                f"SELECT payload FROM campaign_records "
                f"WHERE campaign_id IN ({marks})",
                chunk,
            ):
                record = CampaignRecord.from_payload(json.loads(payload))
                found[record.campaign_id] = record
        return found

    def __len__(self) -> int:
        if not self.exists():
            return 0
        conn = self._connect()
        return int(conn.execute("SELECT COUNT(*) FROM campaign_records").fetchone()[0])
