"""The sharded JSONL directory backend — one store, many append points.

A single JSONL file serialises every writer through one append lock and
every reader through one front-to-back parse.  The sharded store spreads
the same line format over a directory::

    sweep.d/
      meta.json            # {"kind": "sharded_store", "shards": 8, ...}
      grid.jsonl           # the keep-first campaign_grid header line
      shard-00.jsonl       # campaign_record lines, hashed here by ID
      ...
      shard-07.jsonl
      ledger / telemetry / profiles   # sidecars live inside the tree

Each campaign ID is routed to ``crc32(id) % shards`` — a *stable* hash, so
a campaign's retries and resume re-appends always land in the shard that
already holds its earlier attempts, and in-shard line order alone resolves
last-write-wins.  Writers to different shards hold different ``flock``\\ s
and stop contending on one file; the read view merges every shard (and
tolerates a torn final line in each independently).

The shard count is fixed at creation and persisted in ``meta.json``;
re-opening an existing store ignores any conflicting ``shards=`` argument
— re-routing IDs mid-store would break the in-shard last-write-wins
guarantee.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.campaigns.spec import CampaignGrid
from repro.campaigns.store.base import (
    PathLike,
    ResultStore,
    StoreLock,
    flocked,
    grid_header_payload,
    iter_payloads,
    stat_token,
)
from repro.campaigns.store.record import (
    FORMAT_VERSION,
    KIND_GRID,
    KIND_RECORD,
    CampaignRecord,
)
from repro.errors import ReproError

#: Default shard count for new stores: enough to spread a 16-worker fleet
#: across distinct append locks without scattering small sweeps over a
#: directory of near-empty files.
DEFAULT_SHARDS = 8

META_FILE = "meta.json"
GRID_FILE = "grid.jsonl"
LOCK_FILE = "store.lock"


def shard_name(index: int) -> str:
    return f"shard-{index:02d}.jsonl"


class ShardedStore(ResultStore):
    """Sharded JSONL directory store (``--store-backend sharded``)."""

    backend = "sharded"

    def __init__(self, path: PathLike, shards: Optional[int] = None):
        super().__init__(path)
        if shards is not None and shards < 1:
            raise ReproError(f"shards must be >= 1, got {shards}")
        self._shards_requested = shards
        self._shards_cached: Optional[int] = None

    def exists(self) -> bool:
        return self.path.is_dir()

    def exclusive(self) -> StoreLock:
        return StoreLock(self.path, lock_path=self.path / LOCK_FILE)

    def sidecar_path(self, kind: str) -> Path:
        """Sidecars live *inside* the store directory — one self-contained
        tree that can be moved or uploaded as a unit."""
        return self.path / kind

    # -- shard routing --------------------------------------------------

    @property
    def shards(self) -> int:
        """The store's shard count (persisted ``meta.json`` wins)."""
        if self._shards_cached is not None:
            return self._shards_cached
        meta = self._read_meta()
        if meta is not None:
            self._shards_cached = int(meta["shards"])
        else:
            self._shards_cached = self._shards_requested or DEFAULT_SHARDS
        return self._shards_cached

    def shard_index(self, campaign_id: str) -> int:
        """Stable shard routing: ``crc32`` (not the salted builtin ``hash``),
        so the same ID lands in the same shard in every process forever."""
        return zlib.crc32(campaign_id.encode("utf-8")) % self.shards

    def shard_path(self, index: int) -> Path:
        return self.path / shard_name(index)

    def shard_paths(self) -> List[Path]:
        """Every shard file present, sorted by name (the merge order).

        Globbed rather than enumerated from the shard count, so a store
        directory is fully readable even if its ``meta.json`` was lost.
        """
        if not self.path.is_dir():
            return []
        return sorted(self.path.glob("shard-*.jsonl"))

    def _read_meta(self) -> Optional[dict]:
        meta_path = self.path / META_FILE
        try:
            with meta_path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _ensure_store(self) -> None:
        """Create the directory and pin the shard count on first write."""
        self.path.mkdir(parents=True, exist_ok=True)
        meta_path = self.path / META_FILE
        if meta_path.exists():
            return
        payload = {
            "kind": "sharded_store",
            "version": FORMAT_VERSION,
            "shards": self.shards,
        }
        # O_EXCL: if two writers race to create the store, exactly one
        # meta.json wins and the loser adopts it (keep-first, like the
        # grid header).
        try:
            fd = os.open(meta_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            self._shards_cached = None  # re-read the winner's count
            return
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")

    # -- writing --------------------------------------------------------

    def write_grid(self, grid: CampaignGrid) -> None:
        """Record the grid header in ``grid.jsonl``, keep-first.

        The emptiness check and the write share one append lock on the
        header file, so racing sweep starts cannot write duplicates.
        """
        self._ensure_store()
        line = json.dumps(grid_header_payload(grid), sort_keys=True)
        grid_path = self.path / GRID_FILE
        with grid_path.open("a", encoding="utf-8") as handle, flocked(handle):
            if os.fstat(handle.fileno()).st_size > 0:
                return
            handle.write(line + "\n")
            handle.flush()
        self.invalidate()

    def append(self, record: CampaignRecord) -> None:
        """Append one record to its ID's shard, under that shard's lock."""
        self._ensure_store()
        line = json.dumps(record.to_payload(), sort_keys=True)
        shard = self.shard_path(self.shard_index(record.campaign_id))
        with shard.open("a", encoding="utf-8") as handle, flocked(handle):
            handle.write(line + "\n")
            handle.flush()
        self.invalidate()

    # -- reading --------------------------------------------------------

    def _freshness_token(self) -> Optional[tuple]:
        return stat_token(self.path / GRID_FILE, *self.shard_paths())

    def _load_uncached(
        self,
    ) -> Tuple[Optional[CampaignGrid], Dict[str, CampaignRecord]]:
        """Merged read view: header first, then shards in name order.

        Within a shard, later lines win (retries of a campaign always land
        in its own shard, so this is the complete last-write-wins story);
        header lines are keep-first wherever they appear, so a store
        migrated from a single file that carried its header late still
        reads the same grid.
        """
        grid: Optional[CampaignGrid] = None
        by_id: Dict[str, CampaignRecord] = {}
        sources = [self.path / GRID_FILE] + self.shard_paths()
        for source in sources:
            for payload in iter_payloads(source):
                kind = payload.get("kind")
                if kind == KIND_GRID and grid is None:
                    grid = CampaignGrid.from_dict(payload["grid"])
                elif kind == KIND_RECORD:
                    record = CampaignRecord.from_payload(payload)
                    by_id[record.campaign_id] = record
        return grid, by_id
