"""The single-file JSONL backend — the default, byte-compatible store.

Each completed campaign is appended as one JSON line the moment it
finishes, so an interrupted sweep loses at most the campaigns that were in
flight.  The on-disk format is unchanged from the pre-backend
``CampaignStore``: an optional ``kind="campaign_grid"`` header line, then
``kind="campaign_record"`` lines — every store written before the backend
split loads unmodified, and every store written here is readable by the
old code.

The file is the simplest possible store and the right default for
single-host sweeps up to a few thousand campaigns; beyond that the full
reparse on first read and the single append point start to cost, which is
what the sharded and SQLite backends exist for (see
:mod:`repro.campaigns.store.factory`).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from repro.campaigns.spec import CampaignGrid
from repro.campaigns.store.base import (
    PathLike,
    ResultStore,
    flocked,
    grid_header_payload,
    iter_payloads,
    stat_token,
)
from repro.campaigns.store.record import KIND_GRID, KIND_RECORD, CampaignRecord


class CampaignStore(ResultStore):
    """Append-only single-file JSONL store (the default backend)."""

    backend = "jsonl"

    def __init__(self, path: PathLike):
        super().__init__(path)

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing --------------------------------------------------------

    def write_grid(self, grid: CampaignGrid) -> None:
        """Record the sweep's grid as the store's header line.

        Only meaningful on a fresh store; an existing store keeps its
        original header (the resume contract is per-campaign IDs, not the
        header, so appending with a different grid is allowed — `resume`
        simply re-enumerates the original one).  The emptiness check and
        the header write happen under one append lock on the store file,
        so two near-simultaneous sweep starts cannot both see an empty
        store and write duplicate headers.
        """
        line = json.dumps(grid_header_payload(grid), sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle, flocked(handle):
            if os.fstat(handle.fileno()).st_size > 0:
                return
            handle.write(line + "\n")
            handle.flush()
        self.invalidate()

    def append(self, record: CampaignRecord) -> None:
        """Durably append one finished campaign (the checkpoint step)."""
        self._append_line(record.to_payload())

    def _append_line(self, payload: dict) -> None:
        # Payloads are already plain JSON (to_payload / grid asdict).
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(payload, sort_keys=True)
        with self.path.open("a", encoding="utf-8") as handle, flocked(handle):
            handle.write(line + "\n")
            handle.flush()
        self.invalidate()

    # -- reading --------------------------------------------------------

    def _freshness_token(self) -> Optional[tuple]:
        return stat_token(self.path)

    def _load_uncached(
        self,
    ) -> Tuple[Optional[CampaignGrid], Dict[str, CampaignRecord]]:
        grid: Optional[CampaignGrid] = None
        by_id: Dict[str, CampaignRecord] = {}
        for payload in iter_payloads(self.path):
            kind = payload.get("kind")
            if kind == KIND_GRID and grid is None:
                grid = CampaignGrid.from_dict(payload["grid"])
            elif kind == KIND_RECORD:
                record = CampaignRecord.from_payload(payload)
                by_id[record.campaign_id] = record
        return grid, by_id

    def read_grid(self) -> Optional[CampaignGrid]:
        """The grid this sweep was launched with, if one was recorded.

        Served from the memoised snapshot when one is warm; on a cold
        store it stops at the first header line instead of reconstructing
        the (possibly thousands of) campaign records behind it.
        """
        if self._snapshot is not None:
            return super().read_grid()
        for payload in iter_payloads(self.path):
            if payload.get("kind") == KIND_GRID:
                return CampaignGrid.from_dict(payload["grid"])
        return None
