"""Pluggable on-disk stores of campaign outcomes (the sweep checkpoint).

A sweep over thousands of campaigns is long-running; the store makes it
*restartable*.  Each completed campaign is appended the moment it
finishes, so an interrupted sweep loses at most the campaigns that were
in flight.  On resume, :class:`repro.campaigns.runner.CampaignRunner`
skips every campaign ID already recorded as done and re-runs only the
rest; reports aggregate over everything stored.

Persistence is a *backend* behind one :class:`ResultStore` protocol
(:mod:`~repro.campaigns.store.base`); three ship built in:

* :class:`CampaignStore` (``jsonl``) — one append-only JSONL file, the
  zero-setup default; byte-compatible with every store written before
  backends existed.
* :class:`ShardedStore` (``sharded``) — a directory of JSONL shards
  hashed by campaign ID, per-shard append locks, merged read view; for
  fleets whose writers contend on one file.
* :class:`SqliteStore` (``sqlite``) — one indexed table in WAL mode;
  for stores big enough that reparsing JSONL on every
  resume/status/report hurts.

:func:`open_store` picks the backend from what is on disk (or, for fresh
paths, the suffix); :func:`migrate_store` moves a store between backends
losslessly.  All backends persist identical JSON payloads, tolerate torn
writes, keep the first grid header, and resolve duplicate campaign IDs
last-write-wins — the cross-backend contract suite in
``tests/test_store_backends.py`` holds them to it.
"""

from repro.campaigns.store.base import (
    PathLike,
    ResultStore,
    SIDECAR_LEDGER,
    SIDECAR_PROFILES,
    SIDECAR_TELEMETRY,
    StoreLock,
    iter_payloads,
)
from repro.campaigns.store.factory import (
    BACKEND_NAMES,
    STORE_BACKENDS,
    migrate_store,
    open_store,
    sniff_backend,
)
from repro.campaigns.store.jsonl import CampaignStore
from repro.campaigns.store.record import (
    FORMAT_VERSION,
    STATUS_DONE,
    STATUS_FAILED,
    CampaignRecord,
)
from repro.campaigns.store.sharded import DEFAULT_SHARDS, ShardedStore
from repro.campaigns.store.sqlite import SqliteStore

__all__ = [
    "BACKEND_NAMES",
    "CampaignRecord",
    "CampaignStore",
    "DEFAULT_SHARDS",
    "FORMAT_VERSION",
    "PathLike",
    "ResultStore",
    "SIDECAR_LEDGER",
    "SIDECAR_PROFILES",
    "SIDECAR_TELEMETRY",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STORE_BACKENDS",
    "ShardedStore",
    "SqliteStore",
    "StoreLock",
    "iter_payloads",
    "migrate_store",
    "open_store",
    "sniff_backend",
]
