"""The stored form of one campaign outcome, shared by every store backend.

:class:`CampaignRecord` is the unit every :class:`~repro.campaigns.store.
base.ResultStore` persists: backends differ in *where* the JSON payload
lands (one file, a sharded directory, a SQLite table), never in *what* it
contains.  The payload codec is :mod:`repro.experiments.persistence` — the
same pickle-free JSON representation of :class:`~repro.types.TuningResult`
and :class:`~repro.types.ChoiceEvaluation` used by single-campaign
archives.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.campaigns.spec import CampaignSpec
from repro.errors import ReproError
from repro.types import ChoiceEvaluation, TuningResult


def _persistence():
    """The JSON codec records are built on, imported late.

    :mod:`repro.experiments.persistence` lives inside the experiments
    package, whose ``__init__`` imports the drivers that in turn import
    this package — a cycle at import time, not at run time.
    """
    from repro.experiments import persistence

    return persistence


#: On-disk payload schema version, stamped on every line/row.
FORMAT_VERSION = 1

#: Campaign terminal states.
STATUS_DONE = "done"
STATUS_FAILED = "failed"

#: Payload ``kind`` tags (the line/row discriminator every backend shares).
KIND_GRID = "campaign_grid"
KIND_RECORD = "campaign_record"


@dataclass(frozen=True)
class CampaignRecord:
    """Terminal outcome of one campaign, as stored.

    ``status`` is ``"done"`` or ``"failed"``; a failed campaign carries the
    exception summary in ``error`` plus a truncated ``traceback`` (the last
    ~20 frames — enough to debug a sweep without shipping megabytes of
    text) and ``None`` results — one crash never loses the rest of the
    sweep.  ``attempts`` counts dispatcher executions including retries; a
    record that needed no retry stores ``1``, so fault-free sweeps stay
    byte-identical run to run.
    """

    spec: CampaignSpec
    status: str
    best_index: Optional[int] = None
    core_hours: float = 0.0
    tuning_seconds: float = 0.0
    evaluation: Optional[ChoiceEvaluation] = None
    result: Optional[TuningResult] = None
    error: str = ""
    traceback: str = ""
    attempts: int = 1

    @property
    def campaign_id(self) -> str:
        return self.spec.campaign_id

    @property
    def ok(self) -> bool:
        return self.status == STATUS_DONE

    @property
    def mean_time(self) -> float:
        """Mean cloud execution time of the chosen configuration."""
        if self.evaluation is None:
            raise ReproError(f"campaign {self.campaign_id} has no evaluation")
        return self.evaluation.mean_time

    @property
    def cov_percent(self) -> float:
        if self.evaluation is None:
            raise ReproError(f"campaign {self.campaign_id} has no evaluation")
        return self.evaluation.cov_percent

    def to_strategy_run(self):
        """View this record as the protocol's :class:`StrategyRun`."""
        from repro.experiments.protocol import StrategyRun

        if not self.ok:
            raise ReproError(
                f"campaign {self.campaign_id} failed: {self.error}"
            )
        from repro.campaigns.spec import vm_display_name

        return StrategyRun(
            strategy=self.spec.strategy,
            app_name=self.spec.app,
            vm_name=vm_display_name(self.spec.vm),
            evaluation=self.evaluation,
            core_hours=self.core_hours,
            tuning_seconds=self.tuning_seconds,
            best_index=self.best_index,
            tuning_result=self.result,
        )

    def to_payload(self) -> dict:
        """One store entry's worth of plain JSON (inverse of :meth:`from_payload`)."""
        return _persistence().jsonable(
            {
                "kind": KIND_RECORD,
                "version": FORMAT_VERSION,
                "id": self.campaign_id,
                "status": self.status,
                "spec": self.spec.to_dict(),
                "best_index": self.best_index,
                "core_hours": self.core_hours,
                "tuning_seconds": self.tuning_seconds,
                "evaluation": (
                    asdict(self.evaluation) if self.evaluation is not None else None
                ),
                "result": asdict(self.result) if self.result is not None else None,
                "error": self.error,
                "traceback": self.traceback,
                "attempts": self.attempts,
            }
        )

    #: Payload keys that describe *how* a record was obtained rather than
    #: what the campaign computed.  A chaos run that converges must equal a
    #: fault-free run outside exactly this set.
    ATTEMPT_METADATA = ("attempts", "traceback")

    def stable_payload(self) -> dict:
        """:meth:`to_payload` minus attempt metadata.

        The comparison form for fault-tolerance and cross-backend checks:
        a sweep whose workers were crashed, hung, or transiently failed —
        but which converged — must have the same stable payloads as a
        fault-free run, and the same sweep persisted through any backend
        must have the same stable payloads as any other.
        """
        payload = self.to_payload()
        for key in self.ATTEMPT_METADATA:
            payload.pop(key, None)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "CampaignRecord":
        """Rebuild a record written by :meth:`to_payload`."""
        codec = _persistence()
        return cls(
            spec=CampaignSpec.from_dict(payload["spec"]),
            status=payload["status"],
            best_index=payload["best_index"],
            core_hours=float(payload["core_hours"]),
            tuning_seconds=float(payload["tuning_seconds"]),
            evaluation=(
                codec.evaluation_from_dict(payload["evaluation"])
                if payload["evaluation"] is not None
                else None
            ),
            result=(
                codec.tuning_result_from_dict(payload["result"])
                if payload["result"] is not None
                else None
            ),
            error=payload.get("error", ""),
            traceback=payload.get("traceback", ""),
            attempts=int(payload.get("attempts", 1)),
        )
