"""Append-only on-disk store of campaign outcomes (the sweep checkpoint).

A sweep over thousands of campaigns is long-running; the store makes it
*restartable*.  Each completed campaign is appended as one JSON line the
moment it finishes, so an interrupted sweep loses at most the campaigns that
were in flight.  On resume, :class:`repro.campaigns.runner.CampaignRunner`
skips every campaign ID already recorded as done and re-runs only the rest;
reports aggregate over everything stored.

The format is built on :mod:`repro.experiments.persistence` — the same
pickle-free JSON representation of :class:`~repro.types.TuningResult` and
:class:`~repro.types.ChoiceEvaluation`, one record per line:

* an optional header line, ``kind="campaign_grid"``, remembering the grid a
  sweep was launched with (what ``python -m repro resume`` re-enumerates);
* then ``kind="campaign_record"`` lines, one per finished campaign.

A line truncated by a crash mid-write is tolerated and skipped on load; the
campaign it belonged to simply re-runs.  If an ID appears twice (e.g. a
failed campaign retried on resume), the last record wins.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.campaigns.spec import CampaignGrid, CampaignSpec
from repro.errors import ReproError
from repro.types import ChoiceEvaluation, TuningResult


def _persistence():
    """The JSON codec this store is built on, imported late.

    :mod:`repro.experiments.persistence` lives inside the experiments
    package, whose ``__init__`` imports the drivers that in turn import
    this package — a cycle at import time, not at run time.
    """
    from repro.experiments import persistence

    return persistence

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

#: Campaign terminal states.
STATUS_DONE = "done"
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class CampaignRecord:
    """Terminal outcome of one campaign, as stored.

    ``status`` is ``"done"`` or ``"failed"``; a failed campaign carries the
    exception summary in ``error`` plus a truncated ``traceback`` (the last
    ~20 frames — enough to debug a sweep without shipping megabytes of
    text) and ``None`` results — one crash never loses the rest of the
    sweep.  ``attempts`` counts dispatcher executions including retries; a
    record that needed no retry stores ``1``, so fault-free sweeps stay
    byte-identical run to run.
    """

    spec: CampaignSpec
    status: str
    best_index: Optional[int] = None
    core_hours: float = 0.0
    tuning_seconds: float = 0.0
    evaluation: Optional[ChoiceEvaluation] = None
    result: Optional[TuningResult] = None
    error: str = ""
    traceback: str = ""
    attempts: int = 1

    @property
    def campaign_id(self) -> str:
        return self.spec.campaign_id

    @property
    def ok(self) -> bool:
        return self.status == STATUS_DONE

    @property
    def mean_time(self) -> float:
        """Mean cloud execution time of the chosen configuration."""
        if self.evaluation is None:
            raise ReproError(f"campaign {self.campaign_id} has no evaluation")
        return self.evaluation.mean_time

    @property
    def cov_percent(self) -> float:
        if self.evaluation is None:
            raise ReproError(f"campaign {self.campaign_id} has no evaluation")
        return self.evaluation.cov_percent

    def to_strategy_run(self):
        """View this record as the protocol's :class:`StrategyRun`."""
        from repro.experiments.protocol import StrategyRun

        if not self.ok:
            raise ReproError(
                f"campaign {self.campaign_id} failed: {self.error}"
            )
        from repro.campaigns.spec import vm_display_name

        return StrategyRun(
            strategy=self.spec.strategy,
            app_name=self.spec.app,
            vm_name=vm_display_name(self.spec.vm),
            evaluation=self.evaluation,
            core_hours=self.core_hours,
            tuning_seconds=self.tuning_seconds,
            best_index=self.best_index,
            tuning_result=self.result,
        )

    def to_payload(self) -> dict:
        """One JSONL line's worth of plain JSON (inverse of :meth:`from_payload`)."""
        return _persistence().jsonable(
            {
                "kind": "campaign_record",
                "version": _FORMAT_VERSION,
                "id": self.campaign_id,
                "status": self.status,
                "spec": self.spec.to_dict(),
                "best_index": self.best_index,
                "core_hours": self.core_hours,
                "tuning_seconds": self.tuning_seconds,
                "evaluation": (
                    asdict(self.evaluation) if self.evaluation is not None else None
                ),
                "result": asdict(self.result) if self.result is not None else None,
                "error": self.error,
                "traceback": self.traceback,
                "attempts": self.attempts,
            }
        )

    #: Payload keys that describe *how* a record was obtained rather than
    #: what the campaign computed.  A chaos run that converges must equal a
    #: fault-free run outside exactly this set.
    ATTEMPT_METADATA = ("attempts", "traceback")

    def stable_payload(self) -> dict:
        """:meth:`to_payload` minus attempt metadata.

        The comparison form for fault-tolerance checks: a sweep whose
        workers were crashed, hung, or transiently failed — but which
        converged — must have the same stable payloads as a fault-free run.
        """
        payload = self.to_payload()
        for key in self.ATTEMPT_METADATA:
            payload.pop(key, None)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "CampaignRecord":
        """Rebuild a record written by :meth:`to_payload`."""
        codec = _persistence()
        return cls(
            spec=CampaignSpec.from_dict(payload["spec"]),
            status=payload["status"],
            best_index=payload["best_index"],
            core_hours=float(payload["core_hours"]),
            tuning_seconds=float(payload["tuning_seconds"]),
            evaluation=(
                codec.evaluation_from_dict(payload["evaluation"])
                if payload["evaluation"] is not None
                else None
            ),
            result=(
                codec.tuning_result_from_dict(payload["result"])
                if payload["result"] is not None
                else None
            ),
            error=payload.get("error", ""),
            traceback=payload.get("traceback", ""),
            attempts=int(payload.get("attempts", 1)),
        )


class StoreLock:
    """Advisory exclusive lock guarding a store against concurrent sweeps.

    Two sweeps appending to the same JSONL would interleave silently —
    each would skip-done against a snapshot the other is growing.  The lock
    turns that into a clear :class:`ReproError` up front.  It is ``flock``
    on a ``<store>.lock`` sidecar, so it is advisory (plain readers like
    ``repro report`` are never blocked) and the kernel releases it if the
    holding process dies — a stale lock *file* on disk is harmless.
    """

    def __init__(self, store_path: Path):
        self.store_path = Path(store_path)
        self.path = self.store_path.with_name(self.store_path.name + ".lock")
        self._handle = None

    @property
    def held(self) -> bool:
        return self._handle is not None

    def acquire(self) -> "StoreLock":
        if self.held:
            raise ReproError(f"store lock {self.path} is already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(self.path, "a+", encoding="utf-8")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.seek(0)  # "a+" opens positioned at EOF
                holder = handle.read().strip() or "unknown pid"
                handle.close()
                raise ReproError(
                    f"campaign store {self.store_path} is locked by another "
                    f"running sweep ({holder}); concurrent sweeps on one "
                    f"store would corrupt it — wait for the other sweep or "
                    f"point it at a different --store"
                ) from None
        # Diagnostics only; the lock itself is the flock, not the content.
        handle.seek(0)
        handle.truncate()
        handle.write(f"pid {os.getpid()}\n")
        handle.flush()
        self._handle = handle
        return self

    def release(self) -> None:
        if self._handle is None:
            return
        if fcntl is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


class CampaignStore:
    """Append-only JSONL store shared by sweeps, resume, and reporting."""

    def __init__(self, path: PathLike):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def exclusive(self) -> StoreLock:
        """An (unacquired) writer lock; use as a context manager.

        :class:`repro.campaigns.runner.CampaignRunner` holds it for the
        duration of a sweep so a second concurrent sweep on the same store
        fails fast instead of silently interleaving appends.
        """
        return StoreLock(self.path)

    def __len__(self) -> int:
        return len(self.records())

    # -- writing --------------------------------------------------------

    def write_grid(self, grid: CampaignGrid) -> None:
        """Record the sweep's grid as the store's header line.

        Only meaningful on a fresh store; an existing store keeps its
        original header (the resume contract is per-campaign IDs, not the
        header, so appending with a different grid is allowed — `resume`
        simply re-enumerates the original one).
        """
        if self.exists() and self.path.stat().st_size > 0:
            return
        payload = {
            "kind": "campaign_grid",
            "version": _FORMAT_VERSION,
            "grid": grid.to_dict(),
        }
        self._append_line(payload)

    def append(self, record: CampaignRecord) -> None:
        """Durably append one finished campaign (the checkpoint step)."""
        self._append_line(record.to_payload())

    def _append_line(self, payload: dict) -> None:
        # Payloads are already plain JSON (to_payload / grid asdict).
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(payload, sort_keys=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    # -- reading --------------------------------------------------------

    def _payloads(self):
        """Yield parsed lines lazily (``read_grid`` stops at the header)."""
        if not self.exists():
            return
        # errors="replace": a crash can truncate the tail mid-UTF-8
        # character, which would otherwise raise UnicodeDecodeError before
        # a single line parsed; replaced, the torn line just fails JSON
        # parsing below and is skipped like any other truncation.
        with self.path.open(
            "r", encoding="utf-8", errors="replace"
        ) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves a truncated tail; the
                    # campaign it held will simply be re-run on resume.
                    continue
                if isinstance(payload, dict):
                    yield payload

    def load(self) -> tuple:
        """One pass over the file: ``(grid_or_None, records)``.

        Records are de-duplicated by campaign ID (last write wins — e.g. a
        failed campaign retried on resume).
        """
        grid: Optional[CampaignGrid] = None
        by_id: Dict[str, CampaignRecord] = {}
        for payload in self._payloads():
            kind = payload.get("kind")
            if kind == "campaign_grid" and grid is None:
                grid = CampaignGrid.from_dict(payload["grid"])
            elif kind == "campaign_record":
                record = CampaignRecord.from_payload(payload)
                by_id[record.campaign_id] = record
        return grid, list(by_id.values())

    def read_grid(self) -> Optional[CampaignGrid]:
        """The grid this sweep was launched with, if one was recorded.

        Stops at the first header line — it does not reconstruct the
        (possibly thousands of) campaign records behind it.
        """
        for payload in self._payloads():
            if payload.get("kind") == "campaign_grid":
                return CampaignGrid.from_dict(payload["grid"])
        return None

    def records(self) -> List[CampaignRecord]:
        """Every stored campaign record, de-duplicated (last write wins)."""
        return self.load()[1]

    def completed_ids(self) -> Set[str]:
        """IDs a resumed sweep may skip: campaigns stored as done.

        Failed campaigns are *not* listed — resume retries them.
        """
        return {r.campaign_id for r in self.records() if r.ok}

    def lookup(self, specs: Iterable[CampaignSpec]) -> Dict[str, CampaignRecord]:
        """Stored records for the given specs, keyed by campaign ID."""
        wanted = {spec.campaign_id for spec in specs}
        return {
            r.campaign_id: r for r in self.records() if r.campaign_id in wanted
        }
