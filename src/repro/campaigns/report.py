"""Aggregation of stored campaigns into the sweep-level view.

``python -m repro sweep`` and ``report`` both end here: group every stored
record by (application, VM, strategy) and aggregate the paper's metrics the
same way the headline experiment does — mean/min/max execution time across
seeds, mean CoV, mean tuning core-hours.  The summary payload is plain JSON
(and deterministically ordered), which is what the resume-determinism tests
byte-compare.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.campaigns.spec import vm_display_name
from repro.campaigns.store import CampaignRecord


@dataclass(frozen=True)
class SweepRow:
    """Aggregate of one (application, VM, strategy) cell of a sweep."""

    app: str
    vm: str
    strategy: str
    campaigns: int
    failures: int
    mean_time: float
    time_low: float
    time_high: float
    cov_percent: float
    core_hours: float


@dataclass(frozen=True)
class SweepSummary:
    """The whole sweep, one row per grid cell plus totals."""

    rows: List[SweepRow]
    total: int
    done: int
    failed: int

    def row(self, app: str, vm: str, strategy: str) -> SweepRow:
        for r in self.rows:
            if (r.app, r.vm, r.strategy) == (app, vm, strategy):
                return r
        raise KeyError((app, vm, strategy))

    def to_payload(self) -> dict:
        """Deterministic plain-JSON form (rows sorted by cell key)."""
        return {
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "rows": [asdict(r) for r in self.rows],
        }

    def to_json(self) -> str:
        """Canonical serialisation used by determinism checks."""
        return json.dumps(self.to_payload(), sort_keys=True)


def summarise(records: Sequence[CampaignRecord]) -> SweepSummary:
    """Aggregate campaign records per (app, vm, strategy), sorted by key.

    Records inside a cell are sorted by campaign ID before aggregating:
    float reductions are evaluation-order sensitive in the last ulp, and a
    parallel sweep's store is written in completion order, so without the
    sort the same campaigns could summarise to different bytes.
    """
    groups: Dict[Tuple[str, str, str], List[CampaignRecord]] = {}
    for record in records:
        key = (
            record.spec.app,
            vm_display_name(record.spec.vm),
            record.spec.strategy,
        )
        groups.setdefault(key, []).append(record)

    rows: List[SweepRow] = []
    for key in sorted(groups):
        cell = sorted(groups[key], key=lambda r: r.campaign_id)
        done = [r for r in cell if r.ok]
        times = np.array([r.mean_time for r in done]) if done else np.array([])
        rows.append(
            SweepRow(
                app=key[0],
                vm=key[1],
                strategy=key[2],
                campaigns=len(cell),
                failures=len(cell) - len(done),
                mean_time=float(times.mean()) if done else float("nan"),
                time_low=float(times.min()) if done else float("nan"),
                time_high=float(times.max()) if done else float("nan"),
                cov_percent=(
                    float(np.mean([r.cov_percent for r in done]))
                    if done
                    else float("nan")
                ),
                core_hours=(
                    float(np.mean([r.core_hours for r in done]))
                    if done
                    else float("nan")
                ),
            )
        )
    n_done = sum(1 for r in records if r.ok)
    return SweepSummary(
        rows=rows,
        total=len(records),
        failed=len(records) - n_done,
        done=n_done,
    )


@dataclass(frozen=True)
class ScenarioRow:
    """Aggregate of one (scenario, strategy) cell of a sweep.

    ``vs_darwin_percent`` is the robustness headline: the strategy's mean
    execution time relative to DarwinGame *under the same scenario*,
    averaged over (app, VM) cells so applications with very different
    absolute times weigh equally.  Positive means slower than DarwinGame.
    """

    scenario: str
    strategy: str
    campaigns: int
    failures: int
    mean_time: float
    cov_percent: float
    core_hours: float
    vs_darwin_percent: float


@dataclass(frozen=True)
class ScenarioSummary:
    """The sweep viewed along its scenario axis."""

    rows: List[ScenarioRow]
    scenarios: List[str]
    total: int
    done: int
    failed: int

    def row(self, scenario: str, strategy: str) -> ScenarioRow:
        for r in self.rows:
            if (r.scenario, r.strategy) == (scenario, strategy):
                return r
        raise KeyError((scenario, strategy))

    def to_payload(self) -> dict:
        """Deterministic plain-JSON form (rows sorted by cell key)."""
        return {
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "scenarios": list(self.scenarios),
            "rows": [asdict(r) for r in self.rows],
        }

    def to_json(self) -> str:
        """Canonical serialisation used by determinism checks."""
        return json.dumps(self.to_payload(), sort_keys=True)


def _scenario_of(record: CampaignRecord) -> str:
    return getattr(record.spec, "scenario", "steady")


def _axis_rows(
    records: Sequence[CampaignRecord],
    *,
    axis_of,
    cell_key_of,
    reference_cell,
) -> Tuple[List[dict], List[str], int]:
    """The shared per-axis aggregation behind the scenario and format views.

    Groups records per (axis value, strategy), and computes each group's
    metric means plus its mean per-cell gap against a reference cell
    (``reference_cell(cell_key)`` — e.g. the same cell under DarwinGame, or
    under the ``darwin`` format).  Gaps are computed within matching cells
    — never across applications — and records inside every cell are sorted
    by campaign ID before reducing, so the same campaigns summarise to the
    same bytes regardless of the store's (parallel) append order.
    """
    groups: Dict[Tuple[str, str], List[CampaignRecord]] = {}
    cells: Dict[tuple, List[CampaignRecord]] = {}
    for record in records:
        axis = axis_of(record)
        groups.setdefault((axis, record.spec.strategy), []).append(record)
        cells.setdefault(cell_key_of(record, axis), []).append(record)

    cell_means: Dict[tuple, float] = {}
    for key, members in cells.items():
        done = [r for r in sorted(members, key=lambda r: r.campaign_id)
                if r.ok]
        cell_means[key] = (
            float(np.mean([r.mean_time for r in done]))
            if done
            else float("nan")
        )

    def mean_of(metric, done):
        return (
            float(np.mean([getattr(r, metric) for r in done]))
            if done else float("nan")
        )

    rows: List[dict] = []
    for axis, strategy in sorted(groups):
        cell = sorted(groups[(axis, strategy)], key=lambda r: r.campaign_id)
        done = [r for r in cell if r.ok]
        gaps = []
        for key in sorted(cells):
            if key[0] != axis or key[1] != strategy:
                continue
            mine = cell_means[key]
            reference = cell_means.get(reference_cell(key), float("nan"))
            if np.isfinite(mine) and np.isfinite(reference) and reference > 0:
                gaps.append(100.0 * (mine - reference) / reference)
        rows.append({
            "axis": axis,
            "strategy": strategy,
            "campaigns": len(cell),
            "failures": len(cell) - len(done),
            "mean_time": mean_of("mean_time", done),
            "cov_percent": mean_of("cov_percent", done),
            "core_hours": mean_of("core_hours", done),
            "gap_percent": float(np.mean(gaps)) if gaps else float("nan"),
        })
    return rows, sorted({axis for axis, _ in groups}), \
        sum(1 for r in records if r.ok)


def summarise_by_scenario(records: Sequence[CampaignRecord]) -> ScenarioSummary:
    """Aggregate campaign records per (scenario, strategy).

    The robustness view of a sweep: how does each tuner hold up as the
    cloud's conditions change?  Gaps compare each strategy against
    DarwinGame *under the same scenario*, per (app, VM) cell.
    """
    rows, scenarios, n_done = _axis_rows(
        records,
        axis_of=_scenario_of,
        cell_key_of=lambda record, axis: (
            axis,
            record.spec.strategy,
            record.spec.app,
            vm_display_name(record.spec.vm),
            # Mixed-format sweeps must not dilute the DarwinGame baseline:
            # gaps compare like-for-like tournament shapes.
            _format_of(record),
        ),
        reference_cell=lambda key: (key[0], "DarwinGame") + key[2:],
    )
    return ScenarioSummary(
        rows=[
            ScenarioRow(
                scenario=r["axis"],
                strategy=r["strategy"],
                campaigns=r["campaigns"],
                failures=r["failures"],
                mean_time=r["mean_time"],
                cov_percent=r["cov_percent"],
                core_hours=r["core_hours"],
                vs_darwin_percent=r["gap_percent"],
            )
            for r in rows
        ],
        scenarios=scenarios,
        total=len(records),
        failed=len(records) - n_done,
        done=n_done,
    )


@dataclass(frozen=True)
class FormatRow:
    """Aggregate of one (format, strategy) cell of a sweep.

    ``vs_default_percent`` is the tournament-shape headline: the format's
    mean execution time relative to the paper's ``darwin`` recipe *for the
    same strategy*, averaged over (app, VM, scenario) cells so applications
    with very different absolute times weigh equally.  Positive means the
    alternate shape picked slower configurations.
    """

    format: str
    strategy: str
    campaigns: int
    failures: int
    mean_time: float
    cov_percent: float
    core_hours: float
    vs_default_percent: float


@dataclass(frozen=True)
class FormatSummary:
    """The sweep viewed along its tournament-format axis."""

    rows: List[FormatRow]
    formats: List[str]
    total: int
    done: int
    failed: int

    def row(self, format_name: str, strategy: str) -> FormatRow:
        for r in self.rows:
            if (r.format, r.strategy) == (format_name, strategy):
                return r
        raise KeyError((format_name, strategy))

    def to_payload(self) -> dict:
        """Deterministic plain-JSON form (rows sorted by cell key)."""
        return {
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "formats": list(self.formats),
            "rows": [asdict(r) for r in self.rows],
        }

    def to_json(self) -> str:
        """Canonical serialisation used by determinism checks."""
        return json.dumps(self.to_payload(), sort_keys=True)


def _format_of(record: CampaignRecord) -> str:
    return getattr(record.spec, "format", "darwin")


def summarise_by_format(records: Sequence[CampaignRecord]) -> FormatSummary:
    """Aggregate campaign records per (tournament format, strategy).

    The tournament-shape view of a sweep: which format picks the best
    configurations, at what cost?  Gaps compare each format against the
    ``darwin`` recipe *for the same strategy*, per (app, VM, scenario) cell.
    """
    rows, formats, n_done = _axis_rows(
        records,
        axis_of=_format_of,
        cell_key_of=lambda record, axis: (
            axis,
            record.spec.strategy,
            record.spec.app,
            vm_display_name(record.spec.vm),
            getattr(record.spec, "scenario", "steady"),
        ),
        reference_cell=lambda key: ("darwin",) + key[1:],
    )
    return FormatSummary(
        rows=[
            FormatRow(
                format=r["axis"],
                strategy=r["strategy"],
                campaigns=r["campaigns"],
                failures=r["failures"],
                mean_time=r["mean_time"],
                cov_percent=r["cov_percent"],
                core_hours=r["core_hours"],
                vs_default_percent=r["gap_percent"],
            )
            for r in rows
        ],
        formats=formats,
        total=len(records),
        failed=len(records) - n_done,
        done=n_done,
    )


def format_table(summary: FormatSummary, *, title: str = "by format") -> str:
    """Render the tournament-shape view with the shared table formatter."""
    from repro.experiments.reporting import render_table

    rows = [
        (
            r.format,
            r.strategy,
            r.campaigns,
            r.failures,
            r.mean_time,
            r.cov_percent,
            r.vs_default_percent,
            r.core_hours,
        )
        for r in summary.rows
    ]
    footer = (
        f"{summary.done}/{summary.total} campaigns done across "
        f"{len(summary.formats)} format(s)"
        + (f", {summary.failed} FAILED" if summary.failed else "")
    )
    return (
        render_table(
            ["format", "strategy", "n", "fail", "exec time (s)", "CoV %",
             "vs darwin %", "core-hours"],
            rows,
            title=title,
        )
        + "\n"
        + footer
    )


def scenario_table(summary: ScenarioSummary, *, title: str = "by scenario") -> str:
    """Render the robustness view with the shared table formatter."""
    from repro.experiments.reporting import render_table

    rows = [
        (
            r.scenario,
            r.strategy,
            r.campaigns,
            r.failures,
            r.mean_time,
            r.cov_percent,
            r.vs_darwin_percent,
            r.core_hours,
        )
        for r in summary.rows
    ]
    footer = (
        f"{summary.done}/{summary.total} campaigns done across "
        f"{len(summary.scenarios)} scenario(s)"
        + (f", {summary.failed} FAILED" if summary.failed else "")
    )
    return (
        render_table(
            ["scenario", "strategy", "n", "fail", "exec time (s)", "CoV %",
             "vs DarwinGame %", "core-hours"],
            rows,
            title=title,
        )
        + "\n"
        + footer
    )


@dataclass(frozen=True)
class FailureRow:
    """One failed campaign, as the debugging view shows it.

    ``retries`` is the re-executions the dispatcher granted before giving
    up; ``quarantined`` marks campaigns that burned their whole retry
    budget (errors prefixed ``RetryExhausted:``) rather than failing once
    under ``max_retries=0``-style policies.
    """

    campaign_id: str
    app: str
    vm: str
    strategy: str
    attempts: int
    retries: int
    quarantined: bool
    error: str
    traceback: str


@dataclass(frozen=True)
class FailureSummary:
    """The sweep's failure/retry view — what went wrong and how hard.

    ``total_retries`` counts re-executions across *all* records, including
    campaigns that recovered and finished ``"done"`` — a chaos run with
    every campaign recovered shows zero failures but non-zero retries.
    """

    rows: List[FailureRow]
    total: int
    done: int
    failed: int
    retried: int
    total_retries: int

    def to_payload(self) -> dict:
        """Deterministic plain-JSON form (rows sorted by campaign ID)."""
        return {
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "retried": self.retried,
            "total_retries": self.total_retries,
            "rows": [asdict(r) for r in self.rows],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)


def summarise_failures(records: Sequence[CampaignRecord]) -> FailureSummary:
    """The failure/retry view: one row per failed campaign, sorted by ID.

    The companion to :func:`summarise` for debugging a degraded sweep —
    which campaigns were quarantined, with what error, after how many
    attempts, plus sweep-wide retry counts that include campaigns that
    recovered.
    """
    from repro.errors import RetryExhausted

    prefix = f"{RetryExhausted.__name__}:"
    rows = [
        FailureRow(
            campaign_id=r.campaign_id,
            app=r.spec.app,
            vm=vm_display_name(r.spec.vm),
            strategy=r.spec.strategy,
            attempts=r.attempts,
            retries=max(0, r.attempts - 1),
            quarantined=r.error.startswith(prefix),
            error=r.error,
            traceback=r.traceback,
        )
        for r in sorted(records, key=lambda r: r.campaign_id)
        if not r.ok
    ]
    n_done = sum(1 for r in records if r.ok)
    return FailureSummary(
        rows=rows,
        total=len(records),
        done=n_done,
        failed=len(records) - n_done,
        retried=sum(1 for r in records if r.attempts > 1),
        total_retries=sum(max(0, r.attempts - 1) for r in records),
    )


def failure_table(summary: FailureSummary, *, title: str = "failures") -> str:
    """Render the failure/retry view with the shared table formatter.

    Tracebacks are too wide for a table; the last stored frame of each is
    appended below it so the table stays scannable while the error stays
    debuggable (full tracebacks live in the store).
    """
    from repro.experiments.reporting import render_table

    rows = [
        (
            r.campaign_id,
            r.app,
            r.vm,
            r.strategy,
            r.attempts,
            "yes" if r.quarantined else "no",
            r.error if len(r.error) <= 72 else r.error[:69] + "...",
        )
        for r in summary.rows
    ]
    footer = (
        f"{summary.failed}/{summary.total} campaigns failed, "
        f"{summary.retried} retried ({summary.total_retries} total retries)"
    )
    tails = []
    for r in summary.rows:
        lines = [ln for ln in r.traceback.strip().splitlines() if ln.strip()]
        if lines:
            tails.append(f"{r.campaign_id}: {lines[-1].strip()}")
    rendered = render_table(
        ["campaign", "app", "VM", "strategy", "attempts", "quarantined",
         "error"],
        rows,
        title=title,
    )
    if tails:
        rendered += "\n" + "\n".join(tails)
    return rendered + "\n" + footer


def summary_table(summary: SweepSummary, *, title: str = "sweep") -> str:
    """Render a summary with the shared experiment table formatter."""
    from repro.experiments.reporting import render_table

    rows = [
        (
            r.app,
            r.vm,
            r.strategy,
            r.campaigns,
            r.failures,
            r.mean_time,
            r.cov_percent,
            r.core_hours,
        )
        for r in summary.rows
    ]
    footer = (
        f"{summary.done}/{summary.total} campaigns done"
        + (f", {summary.failed} FAILED" if summary.failed else "")
    )
    return (
        render_table(
            ["app", "VM", "strategy", "n", "fail", "exec time (s)", "CoV %",
             "core-hours"],
            rows,
            title=title,
        )
        + "\n"
        + footer
    )
