"""Campaign runner: fleets of tuning campaigns as a managed workload.

The paper's evaluation is not one tuning run but thousands — every
(application x VM x tuner x seed) cell of Figs. 10-12 and Table 1 is an
independent campaign.  This subsystem executes such fleets: declare them
with :class:`CampaignSpec` / :class:`CampaignGrid`, run them with
:class:`CampaignRunner` (worker pool, failure isolation, deterministic
parallelism), and checkpoint them in a :class:`ResultStore` backend —
single-file JSONL (:class:`CampaignStore`, the default), a sharded JSONL
directory (:class:`ShardedStore`), or SQLite (:class:`SqliteStore`) — so
an interrupted sweep resumes instead of restarting.  :func:`open_store`
picks the backend from what is on disk (or a path suffix);
:func:`migrate_store` converts between them losslessly.

Quickstart::

    from repro.campaigns import CampaignGrid, CampaignRunner, open_store

    grid = CampaignGrid(apps=("redis", "lammps"), seeds=(0, 1, 2), scale="test")
    runner = CampaignRunner(jobs=4, store=open_store("sweep.jsonl"))
    report = runner.run(grid.specs())       # re-run: finished cells skipped

or from the shell: ``python -m repro sweep --apps redis,lammps --seeds 0,1,2
--scale test --jobs 4 --store sweep.jsonl``.
"""

from repro.campaigns.dispatch import Dispatcher, TaskLedger, ledger_path_for
from repro.campaigns.report import (
    FailureRow,
    FailureSummary,
    FormatRow,
    FormatSummary,
    ScenarioRow,
    ScenarioSummary,
    SweepRow,
    SweepSummary,
    failure_table,
    format_table,
    scenario_table,
    summarise,
    summarise_by_format,
    summarise_by_scenario,
    summarise_failures,
    summary_table,
)
from repro.campaigns.runner import (
    CampaignRunner,
    SweepReport,
    cached_application,
    default_jobs,
    execute_campaign,
    parallel_map,
)
from repro.campaigns.spec import CampaignGrid, CampaignSpec, repeat_specs
from repro.campaigns.store import (
    CampaignRecord,
    CampaignStore,
    ResultStore,
    ShardedStore,
    SqliteStore,
    StoreLock,
    migrate_store,
    open_store,
    sniff_backend,
)

__all__ = [
    "CampaignGrid",
    "CampaignRecord",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStore",
    "Dispatcher",
    "FailureRow",
    "FailureSummary",
    "FormatRow",
    "FormatSummary",
    "ResultStore",
    "ScenarioRow",
    "ScenarioSummary",
    "ShardedStore",
    "SqliteStore",
    "StoreLock",
    "SweepReport",
    "SweepRow",
    "SweepSummary",
    "TaskLedger",
    "cached_application",
    "default_jobs",
    "execute_campaign",
    "failure_table",
    "format_table",
    "ledger_path_for",
    "migrate_store",
    "open_store",
    "parallel_map",
    "repeat_specs",
    "scenario_table",
    "sniff_backend",
    "summarise",
    "summarise_by_format",
    "summarise_by_scenario",
    "summarise_failures",
    "summary_table",
]
