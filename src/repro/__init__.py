"""DarwinGame reproduction: tournament-based tuning in noisy clouds.

Quickstart::

    from repro import (
        CloudEnvironment, DarwinGame, DarwinGameConfig, VMSpec, make_application,
    )

    app = make_application("redis", scale="test")
    env = CloudEnvironment(VMSpec.preset("m5.8xlarge"), seed=7)
    result = DarwinGame(DarwinGameConfig(seed=1)).tune(app, env)
    print(result.best_values, result.core_hours)

Campaign sweeps go through the stable :mod:`repro.api` facade — the same
code path ``repro sweep`` and the ``repro serve`` daemon use::

    from repro import CampaignGrid, SweepOptions, submit_grid

    job = submit_grid(
        CampaignGrid(apps=("redis",), scale="test", eval_runs=2),
        SweepOptions(store="sweep.jsonl", jobs=4),
    )
    print(job.report().to_payload())
"""

from repro.apps import (
    APPLICATION_NAMES,
    ApplicationModel,
    make_application,
    make_ffmpeg,
    make_gromacs,
    make_lammps,
    make_redis,
)
from repro.caching import ApplicationCache, SurfaceCache
from repro.campaigns import (
    CampaignGrid,
    CampaignRecord,
    CampaignRunner,
    CampaignSpec,
    CampaignStore,
    ResultStore,
    ShardedStore,
    SqliteStore,
    SweepReport,
    SweepSummary,
    migrate_store,
    open_store,
    summarise,
)
from repro.cloud import (
    DEFAULT_VM,
    PRESETS,
    CloudEnvironment,
    InterferenceProcess,
    InterferenceTrace,
    ReplayedInterference,
    VMSpec,
    record_trace,
)
from repro.core import ABLATION_NAMES, DarwinGame, DarwinGameConfig
from repro.core.dynamic import DynamicFeedbackDarwinGame, FeedbackConfig
from repro.scenarios import (
    SCENARIO_NAMES,
    Scenario,
    get_scenario,
    register_scenario,
)
from repro.space import Parameter, SearchSpace, partition_regions, split_subspaces
from repro.tuners import (
    ActiveHarmonyLike,
    BlissLike,
    ExhaustiveSearch,
    HybridTuner,
    OpenTunerLike,
    QuantileRegressionTuner,
    RandomSearch,
    ThompsonSamplingTuner,
    Tuner,
)
from repro.types import ChoiceEvaluation, TuningResult

# The array-namespace facade of the simulation hot path and its backend
# registry (numpy default; cupy/jax via REPRO_ARRAY_BACKEND/--array-backend).
from repro import xp
from repro.backend import active_backend, set_array_backend

# The supported programmatic surface (repro.api.__all__); imported last so
# the facade may lean on everything above.
from repro import api
from repro.api import (
    SUPPORTED_STRATEGIES,
    JobCancelled,
    JobHandle,
    SchemaError,
    SweepOptions,
    fetch_report,
    iter_results,
    job_status,
    render_report,
    submit_grid,
    validate_grid,
)

__version__ = "1.0.0"

__all__ = [
    "ABLATION_NAMES",
    "APPLICATION_NAMES",
    "SUPPORTED_STRATEGIES",
    "ActiveHarmonyLike",
    "ApplicationCache",
    "ApplicationModel",
    "BlissLike",
    "CampaignGrid",
    "CampaignRecord",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStore",
    "ChoiceEvaluation",
    "CloudEnvironment",
    "DEFAULT_VM",
    "DarwinGame",
    "DarwinGameConfig",
    "DynamicFeedbackDarwinGame",
    "ExhaustiveSearch",
    "FeedbackConfig",
    "HybridTuner",
    "InterferenceProcess",
    "InterferenceTrace",
    "JobCancelled",
    "JobHandle",
    "OpenTunerLike",
    "PRESETS",
    "Parameter",
    "QuantileRegressionTuner",
    "RandomSearch",
    "ReplayedInterference",
    "ResultStore",
    "SCENARIO_NAMES",
    "Scenario",
    "SchemaError",
    "SearchSpace",
    "ShardedStore",
    "SqliteStore",
    "SurfaceCache",
    "SweepOptions",
    "SweepReport",
    "SweepSummary",
    "ThompsonSamplingTuner",
    "Tuner",
    "TuningResult",
    "VMSpec",
    "active_backend",
    "api",
    "fetch_report",
    "iter_results",
    "job_status",
    "make_application",
    "make_ffmpeg",
    "make_gromacs",
    "make_lammps",
    "make_redis",
    "get_scenario",
    "migrate_store",
    "open_store",
    "partition_regions",
    "record_trace",
    "register_scenario",
    "render_report",
    "set_array_backend",
    "split_subspaces",
    "submit_grid",
    "summarise",
    "validate_grid",
    "xp",
    "__version__",
]
