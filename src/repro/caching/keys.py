"""Content-addressed identity of a persisted application surface.

A cache entry is valid for exactly one surface realisation.  The key
therefore captures everything the surface outputs depend on:

* the application name and scale label (human-readable prefix, and the
  level at which grids were truncated),
* a content fingerprint — :meth:`repro.apps.surfaces.PerformanceSurface.
  content_hash` over the spec constants, parameter grids, realised effect
  tables and hash salts, so *any* change to the surface construction (a
  recalibrated constant, a different seed, a new RNG stream) yields a new
  key instead of serving stale tables, and
* the calibration version — bumped by hand when the *formulas* that map
  tables to times/sensitivities change without changing the tables
  themselves (e.g. the soft-knee in ``quality_of_levels``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.model import ApplicationModel

#: Version of the surface *evaluation* code (see module docstring).  Bump
#: whenever :mod:`repro.apps.surfaces` changes how tables become outputs.
CALIBRATION_VERSION = 1


@dataclass(frozen=True)
class SurfaceKey:
    """Identity of one application's persisted surface tables."""

    app: str
    scale: str
    fingerprint: str
    calibration_version: int = CALIBRATION_VERSION

    @property
    def filename(self) -> str:
        """Content-addressed file name of this entry in the disk tier."""
        return (
            f"{self.app}-{self.scale}-v{self.calibration_version}"
            f"-{self.fingerprint[:16]}.npz"
        )


def surface_key(app: ApplicationModel) -> SurfaceKey:
    """The cache key of an application model's surface."""
    return SurfaceKey(
        app=app.name,
        scale=app.scale,
        fingerprint=app.surface.content_hash(),
    )
