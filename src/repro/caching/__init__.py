"""Shared surface cache: persistent, prewarmed application surfaces.

The paper's sweeps run fleets of campaigns over the *same* four application
surfaces; recomputing those deterministic tables in every process is pure
overhead.  This subsystem caches them at two tiers:

* **disk** — :class:`SurfaceCache` persists each application's full
  ``true_time``/``sensitivity`` tables as content-addressed ``.npz`` files
  (keyed by app, scale, surface fingerprint and calibration version),
  validated on open and written atomically; and
* **memory** — :class:`ApplicationCache`, a bounded LRU of built
  application models shared by every campaign in a process, plus a small
  array tier inside :class:`SurfaceCache` itself.

Quickstart::

    from repro.caching import SurfaceCache

    cache = SurfaceCache("~/.cache/repro/surfaces")
    cache.warm([("redis", "bench"), ("lammps", "bench")])   # once per machine
    app = make_application("redis", cache=cache)            # starts hot

or from the shell: ``python -m repro cache warm --apps redis,lammps``, then
``python -m repro sweep ... --cache-dir ~/.cache/repro/surfaces``.
"""

from repro.caching.app_cache import (
    ApplicationCache,
    clear_process_caches,
    process_app_cache,
    process_surface_cache,
    set_process_surface_cache,
)
from repro.caching.keys import CALIBRATION_VERSION, SurfaceKey, surface_key
from repro.caching.surface_cache import (
    SurfaceCache,
    SurfaceEntry,
    WARM_COMPUTED,
    WARM_REUSED,
    WARM_UNMEMOISABLE,
    default_cache_dir,
    grid_app_pairs,
)

__all__ = [
    "ApplicationCache",
    "CALIBRATION_VERSION",
    "SurfaceCache",
    "SurfaceEntry",
    "SurfaceKey",
    "WARM_COMPUTED",
    "WARM_REUSED",
    "WARM_UNMEMOISABLE",
    "clear_process_caches",
    "default_cache_dir",
    "grid_app_pairs",
    "process_app_cache",
    "process_surface_cache",
    "set_process_surface_cache",
    "surface_key",
]
