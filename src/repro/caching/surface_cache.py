"""The two-tier (memory + disk) cache of application surface tables.

Campaign fleets tune the *same* four applications thousands of times; the
surfaces those campaigns evaluate are deterministic functions of the
application definition.  This module persists each application's full
``true_time``/``sensitivity`` tables as content-addressed ``.npz`` files so
the expensive first-touch computation happens once per machine instead of
once per process, and shares loaded tables through a small in-memory tier
so repeated lookups within a process never touch the disk twice.

Correctness rests on content addressing: an entry's file name and embedded
metadata carry the surface's :meth:`~repro.apps.surfaces.PerformanceSurface.
content_hash`, so a recalibrated or re-seeded surface can never be served
stale tables — it simply misses and recomputes.  Entries are validated on
open (metadata match + array shape/dtype); anything invalid or truncated is
treated as a miss and overwritten by the next :meth:`SurfaceCache.warm`.
Writes go through a temporary file and ``os.replace``, so readers never see
a partially written entry even with concurrent warmers.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.apps.model import ApplicationModel
from repro.caching.keys import CALIBRATION_VERSION, SurfaceKey, surface_key
from repro.errors import ReproError

PathLike = Union[str, Path]
Arrays = Tuple[np.ndarray, np.ndarray]

#: Statuses :meth:`SurfaceCache.warm` reports per application.
WARM_COMPUTED = "computed"
WARM_REUSED = "reused"
WARM_UNMEMOISABLE = "unmemoisable"


def default_cache_dir() -> Path:
    """Where surface tables live unless a directory is given explicitly.

    ``$REPRO_CACHE_DIR`` overrides the per-user default, so CI jobs and
    shared machines can point every process at one warm directory.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro/surfaces").expanduser()


@dataclass(frozen=True)
class SurfaceEntry:
    """One cache entry, as reported by :meth:`SurfaceCache.info` / ``warm``."""

    app: str
    scale: str
    points: int
    path: Path
    size_bytes: int
    fingerprint: str
    calibration_version: int
    status: str = ""


class SurfaceCache:
    """Two-tier surface cache: bounded in-memory arrays over ``.npz`` files.

    Args:
        directory: disk-tier location; defaults to :func:`default_cache_dir`.
        memory_entries: how many applications' tables the in-memory tier
            holds (LRU-evicted; a full-scale pair is ~128 MB, typical bench
            pairs are a few MB).
    """

    def __init__(
        self, directory: Optional[PathLike] = None, *, memory_entries: int = 8
    ) -> None:
        if memory_entries < 1:
            raise ReproError(
                f"memory_entries must be >= 1, got {memory_entries}"
            )
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[str, Arrays]" = OrderedDict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SurfaceCache({str(self.directory)!r})"

    def path_for(self, key: SurfaceKey) -> Path:
        return self.directory / key.filename

    # -- the read path (lazy, validated) --------------------------------

    def install(self, app: ApplicationModel) -> None:
        """Attach this cache as the application's lazy surface source.

        The application pulls the tables the first time a surface query
        needs them; a miss silently falls back to incremental computation.
        Unmemoisable (too large) spaces are left untouched.
        """
        if not app.memoisable:
            return
        key = surface_key(app)
        app.set_surface_loader(lambda: self.fetch(key, app.space.size))

    def fetch(self, key: SurfaceKey, expected_points: int) -> Optional[Arrays]:
        """Tables for ``key``: memory tier, then validated disk read.

        Each lookup lands one telemetry counter — ``cache.hit`` with the
        tier that served it, or ``cache.miss`` — so a sweep's sidecar
        answers "did the cache actually carry the fleet?" after the fact.
        """
        from repro.telemetry.events import counter as _telemetry_counter

        hit = self._memory.get(key.fingerprint)
        if hit is not None:
            self._memory.move_to_end(key.fingerprint)
            _telemetry_counter("cache.hit", tier="memory")
            return hit
        arrays = self._read(key, expected_points)
        if arrays is not None:
            self._remember(key.fingerprint, arrays)
            _telemetry_counter("cache.hit", tier="disk")
        else:
            _telemetry_counter("cache.miss")
        return arrays

    def _remember(self, fingerprint: str, arrays: Arrays) -> None:
        self._memory[fingerprint] = arrays
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _read(self, key: SurfaceKey, expected_points: int) -> Optional[Arrays]:
        """Validated disk read; any mismatch or corruption is a miss."""
        path = self.path_for(key)
        try:
            with np.load(path, allow_pickle=False) as npz:
                meta = json.loads(str(npz["meta"][()]))
                if (
                    meta.get("fingerprint") != key.fingerprint
                    or meta.get("calibration_version") != key.calibration_version
                    or meta.get("points") != expected_points
                ):
                    return None
                times = np.ascontiguousarray(npz["true_time"], dtype=np.float64)
                sens = np.ascontiguousarray(npz["sensitivity"], dtype=np.float64)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return None
        if times.shape != (expected_points,) or sens.shape != (expected_points,):
            return None
        return times, sens

    # -- the write path (atomic) -----------------------------------------

    def store(self, app: ApplicationModel) -> Path:
        """Compute (if needed) and persist the application's full tables."""
        key = surface_key(app)
        arrays = app.export_surfaces()
        meta = {
            "app": key.app,
            "scale": key.scale,
            "fingerprint": key.fingerprint,
            "calibration_version": key.calibration_version,
            "points": int(app.space.size),
        }
        path = self.path_for(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=key.filename, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    meta=np.array(json.dumps(meta, sort_keys=True)),
                    true_time=arrays["true_time"],
                    sensitivity=arrays["sensitivity"],
                )
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._remember(
            key.fingerprint, (arrays["true_time"], arrays["sensitivity"])
        )
        return path

    # -- operations (CLI: repro cache warm / info / clear) ----------------

    def warm(
        self,
        pairs: Iterable[Tuple[str, object]],
        *,
        builder: Optional[Callable[[str, object], ApplicationModel]] = None,
    ) -> List[SurfaceEntry]:
        """Ensure a valid disk entry exists for every ``(app, scale)`` pair.

        Valid existing entries are reused untouched; missing or invalid ones
        are computed and persisted.  ``builder`` lets callers reuse an
        in-memory application tier (the warmed model ends up with complete
        tables either way); the default builds throwaway models via the
        registry.  Spaces above the memoisation limit are reported as
        ``"unmemoisable"`` and skipped rather than failing the warm.
        """
        from repro.apps.registry import make_application

        entries: List[SurfaceEntry] = []
        for name, scale in dict.fromkeys(pairs):
            app = (
                builder(name, scale)
                if builder is not None
                else make_application(name, scale=scale, cache=self)
            )
            if not app.memoisable:
                entries.append(
                    SurfaceEntry(
                        app=app.name,
                        scale=app.scale,
                        points=app.space.size,
                        path=self.directory,
                        size_bytes=0,
                        fingerprint="",
                        calibration_version=CALIBRATION_VERSION,
                        status=WARM_UNMEMOISABLE,
                    )
                )
                continue
            key = surface_key(app)
            path = self.path_for(key)
            # Validate the *disk* entry, not the memory tier: warm's
            # contract is that workers can read the persisted file, which
            # another process may have cleared since we last loaded it.
            if self._read(key, app.space.size) is not None:
                status = WARM_REUSED
            else:
                path = self.store(app)
                status = WARM_COMPUTED
            entries.append(
                SurfaceEntry(
                    app=app.name,
                    scale=app.scale,
                    points=app.space.size,
                    path=path,
                    size_bytes=path.stat().st_size,
                    fingerprint=key.fingerprint,
                    calibration_version=key.calibration_version,
                    status=status,
                )
            )
        return entries

    def info(self) -> List[SurfaceEntry]:
        """Metadata of every entry in the disk tier (no table loads)."""
        entries: List[SurfaceEntry] = []
        if not self.directory.is_dir():
            return entries
        for path in sorted(self.directory.glob("*.npz")):
            try:
                with np.load(path, allow_pickle=False) as npz:
                    meta = json.loads(str(npz["meta"][()]))
            except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                continue
            entries.append(
                SurfaceEntry(
                    app=str(meta.get("app", "?")),
                    scale=str(meta.get("scale", "?")),
                    points=int(meta.get("points", 0)),
                    path=path,
                    size_bytes=path.stat().st_size,
                    fingerprint=str(meta.get("fingerprint", "")),
                    calibration_version=int(meta.get("calibration_version", 0)),
                )
            )
        return entries

    def clear(self) -> int:
        """Drop both tiers; returns how many disk entries were removed."""
        self.clear_memory()
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.npz"):
                path.unlink()
                removed += 1
        return removed

    def clear_memory(self) -> None:
        """Drop the in-memory tier only (disk entries stay warm)."""
        self._memory.clear()


def grid_app_pairs(specs: Sequence) -> List[Tuple[str, object]]:
    """Ordered-unique ``(app, scale)`` pairs of a list of campaign specs."""
    return list(dict.fromkeys((spec.app, spec.scale) for spec in specs))
