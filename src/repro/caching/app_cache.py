"""The in-memory application tier, and this process's cache handles.

:class:`ApplicationCache` replaces the campaign runner's former ad-hoc
module-global dict: a *bounded* LRU of built
:class:`~repro.apps.model.ApplicationModel` instances keyed by
``(name, scale)``, with an explicit :meth:`~ApplicationCache.clear` hook so
long-lived service processes cannot grow without limit and test fixtures
can reset shared state between tests.

The module also owns the two process-global handles the campaign stack
shares: the application tier itself, and the optional
:class:`~repro.caching.surface_cache.SurfaceCache` newly built applications
are attached to (set by the runner / pool initializer before a sweep, so
every worker starts hot).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.apps.model import ApplicationModel
from repro.caching.surface_cache import SurfaceCache
from repro.errors import ReproError

AppKey = Tuple[str, object]


class ApplicationCache:
    """Bounded LRU of built application models, keyed by ``(name, scale)``.

    Campaigns of one sweep share surfaces (and their memoised tables) the
    way the former serial drivers shared one ``ApplicationModel`` instance;
    the bound keeps a long-lived process serving many different
    (app, scale) combinations at a predictable memory ceiling.
    """

    def __init__(self, maxsize: int = 16) -> None:
        if maxsize < 1:
            raise ReproError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[AppKey, ApplicationModel]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str, scale) -> ApplicationModel:
        """The shared application instance for ``(name, scale)``.

        Built on first use via the registry — attached to the process's
        surface cache if one is set — then served from memory, evicting the
        least recently used entry beyond :attr:`maxsize`.
        """
        from repro.telemetry.events import counter as _telemetry_counter

        key: AppKey = (name, scale)
        app = self._entries.get(key)
        if app is not None:
            self._entries.move_to_end(key)
            # The LRU serves a fully-built model, so the surface cache below
            # never even sees the lookup; without this counter a warm
            # process would (wrongly) report no cache activity at all.
            _telemetry_counter("app_cache.hit", app=name)
            return app
        from repro.apps.registry import make_application

        _telemetry_counter("app_cache.miss", app=name)
        app = make_application(name, scale=scale, cache=process_surface_cache())
        self._entries[key] = app
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return app

    def clear(self) -> None:
        """Drop every cached application (tests; bounded-lifetime services)."""
        self._entries.clear()


#: This process's shared application tier (what the runner's
#: ``cached_application`` serves from).
_PROCESS_APP_CACHE = ApplicationCache()

#: The surface cache newly built applications attach to, if any.
_PROCESS_SURFACE_CACHE: Optional[SurfaceCache] = None


def process_app_cache() -> ApplicationCache:
    """This process's shared in-memory application tier."""
    return _PROCESS_APP_CACHE


def process_surface_cache() -> Optional[SurfaceCache]:
    """The process-wide surface cache handle (``None`` = caching disabled)."""
    return _PROCESS_SURFACE_CACHE


def set_process_surface_cache(cache: Optional[SurfaceCache]) -> None:
    """Point this process at a surface cache (or detach with ``None``).

    Only applications built *after* the call attach to the cache; the
    runner sets it before building or warming anything.
    """
    global _PROCESS_SURFACE_CACHE
    _PROCESS_SURFACE_CACHE = cache


def clear_process_caches() -> None:
    """Reset both process-global handles (the test-fixture hook).

    Drops every cached application, detaches the surface cache, and empties
    its in-memory tier — disk entries are left alone, they are validated
    on every open.
    """
    _PROCESS_APP_CACHE.clear()
    if _PROCESS_SURFACE_CACHE is not None:
        _PROCESS_SURFACE_CACHE.clear_memory()
    set_process_surface_cache(None)
