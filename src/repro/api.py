"""The stable programmatic facade over the campaign engine.

Every way of running a sweep — the ``repro sweep``/``resume`` CLI, the
``repro serve`` HTTP daemon (:mod:`repro.service`), and library callers —
drives the four entry points here, so there is exactly one code path from
"a declared grid" to "records in a store":

* :func:`submit_grid` — validate a :class:`~repro.campaigns.spec.
  CampaignGrid`, open (or reuse) its :class:`~repro.campaigns.store.base.
  ResultStore`, and execute it through the
  :class:`~repro.campaigns.runner.CampaignRunner`, returning a
  :class:`JobHandle` (blocking by default; ``block=False`` runs the sweep
  on a background thread — the daemon's submission path).
* :func:`job_status` — the live done/running/queued/failed view, reusing
  :func:`repro.telemetry.status.snapshot` over the store and its sidecars.
* :func:`iter_results` — the stored records in deterministic (campaign-ID)
  order, paginated with ``offset``/``limit``.
* :func:`fetch_report` — the sweep summaries (overall, ``by-scenario``,
  ``by-format``, ``failures``), each a dataclass with ``to_payload()``.

The wire format is part of the facade: :data:`SWEEP_REQUEST_SCHEMA` (and
its parts :data:`GRID_SCHEMA` / :data:`OPTIONS_SCHEMA`) document the JSON
request shape, :func:`validate_payload` checks a payload against a schema
with stdlib code only, and :func:`grid_from_payload` /
:func:`options_from_payload` turn validated JSON into typed values.  A
malformed payload raises :class:`SchemaError` with the offending path — the
daemon's 400 — and a well-formed payload naming an unregistered axis entry
raises :class:`~repro.errors.ReproError` from :func:`validate_grid` before
any worker is started, so a typo costs one actionable line instead of a
sweep's whole retry budget.

``__all__`` below is the supported surface: names in it are re-exported
from :mod:`repro` and covered by the deprecation policy; everything else in
this module is internal.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Union

from repro.apps.registry import APPLICATION_NAMES
from repro.campaigns.report import (
    failure_table,
    format_table,
    scenario_table,
    summarise,
    summarise_by_format,
    summarise_by_scenario,
    summarise_failures,
    summary_table,
)
from repro.campaigns.runner import CampaignRunner, SweepReport
from repro.campaigns.spec import CampaignGrid, CampaignSpec
from repro.campaigns.store import BACKEND_NAMES, CampaignRecord, ResultStore, open_store
from repro.apps.scaling import level_cap
from repro.cloud.vm import PRESETS
from repro.errors import ReproError, SpaceError
from repro.faults import FaultPlan

PathLike = Union[str, Path]
StoreLike = Union["JobHandle", ResultStore, str, Path]
ProgressFn = Callable[[int, int, CampaignRecord], None]

__all__ = [
    "GRID_SCHEMA",
    "JobCancelled",
    "JobHandle",
    "OPTIONS_SCHEMA",
    "REPORT_VIEWS",
    "SUPPORTED_STRATEGIES",
    "SWEEP_REQUEST_SCHEMA",
    "SchemaError",
    "SweepOptions",
    "fetch_report",
    "grid_from_payload",
    "iter_results",
    "job_status",
    "options_from_payload",
    "render_report",
    "submit_grid",
    "validate_grid",
    "validate_payload",
]


def _strategy_names() -> tuple:
    """Every strategy a grid may name (protocol set + extra tuners)."""
    from repro.experiments import STRATEGY_NAMES

    return tuple(STRATEGY_NAMES) + (
        "QuantileRegression",
        "ThompsonSampling",
        "GeneticAlgorithm",
        "SimulatedAnnealing",
    )


class _StrategyNames(Sequence):
    """Lazy view of the supported strategy names.

    :mod:`repro.experiments` imports the campaign stack; resolving the
    names on first use instead of at import time keeps ``repro.api``
    importable from anywhere in the package without a cycle.
    """

    _names: Optional[tuple] = None

    def _resolve(self) -> tuple:
        if self._names is None:
            self._names = _strategy_names()
        return self._names

    def __iter__(self):
        return iter(self._resolve())

    def __len__(self) -> int:
        return len(self._resolve())

    def __getitem__(self, index):
        return self._resolve()[index]

    def __contains__(self, name) -> bool:
        return name in self._resolve()

    def __repr__(self) -> str:
        return repr(self._resolve())


#: The strategy names :func:`validate_grid` accepts (lazy; see above).
SUPPORTED_STRATEGIES = _StrategyNames()


# -- grid validation ----------------------------------------------------


def _unknown(names, known) -> list:
    return [n for n in names if n not in known]


def validate_grid(grid: CampaignGrid) -> CampaignGrid:
    """Check every grid axis against its registry before any dispatch.

    One typo'd entry on *any* axis — application, strategy, VM preset,
    scenario pack, tournament format, or scale — would otherwise fail inside the
    workers, burning the whole retry budget per campaign before the sweep
    quarantines it.  This is the single pre-dispatch gate all entry points
    (CLI, daemon, library) share; it raises :class:`~repro.errors.
    ReproError` with a one-line actionable message and returns the grid
    unchanged when everything is registered.
    """
    from repro.formats.recipes import tournament_format_names
    from repro.scenarios import scenario_names

    unknown = _unknown(grid.apps, APPLICATION_NAMES)
    if unknown:
        raise ReproError(
            f"unknown applications: {unknown}; available: "
            f"{list(APPLICATION_NAMES)} (fix --apps)"
        )
    unknown = _unknown(grid.strategies, SUPPORTED_STRATEGIES)
    if unknown:
        raise ReproError(
            f"unknown strategies: {unknown}; available: "
            f"{list(SUPPORTED_STRATEGIES)} (fix --strategies)"
        )
    unknown = [
        vm for vm in grid.vms if isinstance(vm, str) and vm not in PRESETS
    ]
    if unknown:
        raise ReproError(
            f"unknown VM presets: {unknown}; available: "
            f"{sorted(PRESETS)} (fix --vms)"
        )
    unknown = _unknown(grid.scenarios, scenario_names())
    if unknown:
        raise ReproError(
            f"unknown scenarios: {unknown}; registered: "
            f"{list(scenario_names())} (fix --scenarios)"
        )
    unknown = _unknown(grid.formats, tournament_format_names())
    if unknown:
        raise ReproError(
            f"unknown tournament formats: {unknown}; registered: "
            f"{list(tournament_format_names())} (fix --formats)"
        )
    try:
        level_cap(grid.scale)
    except SpaceError as exc:
        raise ReproError(f"{exc} (fix --scale)") from None
    if grid.eval_runs < 1:
        raise ReproError(
            f"eval_runs must be >= 1, got {grid.eval_runs} (fix --eval-runs)"
        )
    if not grid.seeds:
        raise ReproError("a grid needs at least one seed (fix --seeds)")
    return grid


# -- options ------------------------------------------------------------


@dataclass(frozen=True)
class SweepOptions:
    """How a grid is executed — everything orthogonal to *what* runs.

    The runner knobs the CLI exposes as flags and the daemon accepts in a
    request's ``options`` object, as one typed value.  All fields have the
    CLI's defaults, so ``SweepOptions()`` is the plain serial sweep.

    ``store`` is facade-side only: the daemon assigns each job its own
    per-tenant store path and therefore rejects ``store`` over the wire
    (see :data:`OPTIONS_SCHEMA`).
    """

    store: Optional[PathLike] = None
    store_backend: Optional[str] = None
    shards: Optional[int] = None
    jobs: int = 1
    cache_dir: Optional[PathLike] = None
    max_retries: int = 2
    backoff: float = 0.1
    task_timeout: Optional[float] = None
    telemetry: bool = False
    profile: bool = False
    fault_plan: Optional[FaultPlan] = None
    exec_mode: str = "process"

    def open_store(self) -> Optional[ResultStore]:
        """The store these options describe (``None`` = in-memory run)."""
        if self.store is None:
            return None
        return open_store(
            self.store, backend=self.store_backend, shards=self.shards
        )


# -- job handles ---------------------------------------------------------


class JobCancelled(ReproError):
    """A sweep was cancelled between campaigns (finished work is stored)."""


#: Job lifecycle states a :class:`JobHandle` reports.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class JobHandle:
    """Handle on one submitted sweep: its identity, store, and outcome.

    Returned by :func:`submit_grid`.  For a blocking submission the handle
    is already terminal; for ``block=False`` it tracks the background
    thread.  The handle is also the argument every read-side facade call
    accepts, so ``submit → status → results → report`` composes without
    the caller ever touching store paths again.
    """

    def __init__(
        self,
        grid: CampaignGrid,
        options: SweepOptions,
        store: Optional[ResultStore] = None,
        job_id: Optional[str] = None,
    ):
        self.grid = grid
        self.options = options
        self.store = store
        self.job_id = job_id if job_id is not None else job_id_for(grid)
        self._thread: Optional[threading.Thread] = None
        self._cancel = threading.Event()
        self._lock = threading.Lock()
        self._state = "queued"
        self._report: Optional[SweepReport] = None
        self._error: Optional[BaseException] = None

    def __repr__(self) -> str:
        return f"JobHandle({self.job_id!r}, state={self.state!r})"

    # -- lifecycle -------------------------------------------------------

    @property
    def state(self) -> str:
        """One of :data:`JOB_STATES`."""
        with self._lock:
            return self._state

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in ("done", "failed", "cancelled")

    @property
    def error(self) -> Optional[BaseException]:
        """The exception that ended a ``failed`` job, if any."""
        with self._lock:
            return self._error

    def cancel(self) -> None:
        """Ask the job to stop between campaigns.

        A queued job never starts; a running job stops after the campaign
        in flight (its finished records are already checkpointed, so the
        store stays resumable).  Terminal jobs ignore the call.
        """
        self._cancel.set()

    def wait(self, timeout: Optional[float] = None) -> "JobHandle":
        """Block until the job is terminal (or ``timeout`` elapses)."""
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        return self

    def result(self, timeout: Optional[float] = None) -> SweepReport:
        """The finished :class:`~repro.campaigns.runner.SweepReport`.

        Re-raises the job's exception if it failed; raises
        :class:`JobCancelled` if it was cancelled before finishing.
        """
        self.wait(timeout)
        with self._lock:
            if self._report is not None:
                return self._report
            if self._error is not None:
                raise self._error
        raise JobCancelled(f"job {self.job_id} was cancelled before finishing")

    # -- the one execution path -----------------------------------------

    def execute(self, progress: Optional[ProgressFn] = None) -> None:
        """Run the sweep inline in the calling thread; the only place
        jobs execute.

        :func:`submit_grid` calls this for you (directly, or on a daemon
        thread with ``block=False``).  The service's job executor calls it
        from its single worker thread so concurrently submitted jobs
        execute one at a time against the shared warm engine."""
        if self._cancel.is_set():
            with self._lock:
                self._state = "cancelled"
            return
        with self._lock:
            self._state = "running"

        def checked_progress(finished: int, total: int, record) -> None:
            if self._cancel.is_set():
                raise JobCancelled(
                    f"job {self.job_id} cancelled after {finished}/{total} "
                    f"campaigns (finished work is stored)"
                )
            if progress is not None:
                progress(finished, total, record)

        options = self.options
        runner = CampaignRunner(
            jobs=options.jobs,
            store=self.store,
            progress=checked_progress,
            cache_dir=options.cache_dir,
            max_retries=options.max_retries,
            backoff=options.backoff,
            task_timeout=options.task_timeout or None,
            fault_plan=options.fault_plan,
            telemetry=options.telemetry,
            profile=options.profile,
            exec_mode=options.exec_mode,
        )
        try:
            report = runner.run(self.grid.specs(), grid=self.grid)
        except JobCancelled as exc:
            with self._lock:
                self._state = "cancelled"
                self._error = exc
        except BaseException as exc:  # noqa: BLE001 - surfaced via .result()
            with self._lock:
                self._state = "failed"
                self._error = exc
            if self._thread is None:
                raise
        else:
            with self._lock:
                self._state = "done"
                self._report = report

    # -- read-side conveniences ------------------------------------------

    def status(self):
        """Live :class:`~repro.telemetry.status.StatusSnapshot` (see
        :func:`job_status`)."""
        return job_status(self)

    def results(self, *, offset: int = 0, limit: Optional[int] = None):
        """Stored records in campaign-ID order (see :func:`iter_results`)."""
        return iter_results(self, offset=offset, limit=limit)

    def report(self, *, view: str = "summary"):
        """A sweep summary view (see :func:`fetch_report`)."""
        return fetch_report(self, view=view)


def job_id_for(grid: CampaignGrid, *, salt: str = "") -> str:
    """Deterministic job identifier: a content hash of the grid (+ salt).

    The same grid submitted twice names the same job unless the caller
    salts it (the daemon salts with the tenant so tenants never collide).
    """
    blob = json.dumps(grid.to_dict(), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha1((salt + "|" + blob).encode("utf-8")).hexdigest()
    return f"job-{digest[:12]}"


def submit_grid(
    grid: CampaignGrid,
    options: Optional[SweepOptions] = None,
    *,
    progress: Optional[ProgressFn] = None,
    block: bool = True,
) -> JobHandle:
    """Validate and execute a campaign grid; the one sweep entry point.

    Validates every axis up front (:func:`validate_grid`), opens the store
    the options describe, and runs the grid through
    :class:`~repro.campaigns.runner.CampaignRunner` — skipping campaigns
    the store already holds as done, which is also how *resume* works:
    re-submit the stored grid against the same store.

    With ``block=True`` (default) the call returns a terminal
    :class:`JobHandle`; ``block=False`` starts a daemon thread and returns
    immediately.  Note the runner installs process-global observability
    state while executing, so concurrent *executing* jobs in one process
    must be serialised by the caller (the service runs one executor).
    """
    options = options if options is not None else SweepOptions()
    validate_grid(grid)
    handle = JobHandle(grid=grid, options=options, store=options.open_store())
    if block:
        handle.execute(progress)
    else:
        thread = threading.Thread(
            target=handle.execute,
            args=(progress,),
            name=f"repro-{handle.job_id}",
            daemon=True,
        )
        handle._thread = thread
        thread.start()
    return handle


# -- read side -----------------------------------------------------------


def _store_of(job: StoreLike) -> ResultStore:
    """Resolve any facade argument to its concrete store."""
    if isinstance(job, JobHandle):
        if job.store is None:
            raise ReproError(
                f"job {job.job_id} runs without a store; submit with "
                f"SweepOptions(store=...) to read results back"
            )
        return job.store
    if isinstance(job, ResultStore):
        return job
    return open_store(job)


def _records_of(job: StoreLike) -> List[CampaignRecord]:
    """Every record of a job — from its store, or (storeless handles
    only) from the in-memory :class:`~repro.campaigns.runner.SweepReport`."""
    if isinstance(job, JobHandle) and job.store is None:
        return list(job.result().records)
    return _store_of(job).records()


def job_status(job: StoreLike):
    """Live status of a sweep: the fused store/ledger/telemetry snapshot.

    Accepts a :class:`JobHandle`, a store object, or a store path —
    ``repro status`` and the daemon's ``GET /v1/sweeps/{id}`` both land
    here.  Works mid-sweep (another process or thread may be writing).
    """
    from repro.telemetry.status import snapshot

    return snapshot(_store_of(job).path)


def iter_results(
    job: StoreLike,
    *,
    offset: int = 0,
    limit: Optional[int] = None,
    only_ok: bool = False,
) -> Iterator[CampaignRecord]:
    """Stored records in deterministic campaign-ID order, paginated.

    ``offset``/``limit`` page through the sorted sequence — the daemon's
    results endpoint maps its query parameters straight onto them.  With
    ``only_ok`` failed/quarantined records are dropped first, so pages
    stay stable while a resume retries failures.
    """
    if offset < 0:
        raise ReproError(f"offset must be >= 0, got {offset}")
    if limit is not None and limit < 0:
        raise ReproError(f"limit must be >= 0, got {limit}")
    records = sorted(_records_of(job), key=lambda r: r.campaign_id)
    if only_ok:
        records = [r for r in records if r.ok]
    end = None if limit is None else offset + limit
    yield from records[offset:end]


#: Report views :func:`fetch_report` serves, in the CLI's flag spelling.
REPORT_VIEWS = ("summary", "by-scenario", "by-format", "failures")

_VIEW_SUMMARISERS = {
    "summary": summarise,
    "by-scenario": summarise_by_scenario,
    "by-format": summarise_by_format,
    "failures": summarise_failures,
}

_VIEW_TABLES = {
    "summary": summary_table,
    "by-scenario": scenario_table,
    "by-format": format_table,
    "failures": failure_table,
}


def fetch_report(job: StoreLike, *, view: str = "summary"):
    """Aggregate a sweep into one of its summary views.

    Returns the view's summary dataclass (each carries ``to_payload()``
    for JSON and is accepted by :func:`render_report` for text).  The
    views match ``repro report``'s flags: ``summary`` (the default
    per-cell table), ``by-scenario``, ``by-format``, and ``failures``.
    """
    if view not in _VIEW_SUMMARISERS:
        raise ReproError(
            f"unknown report view {view!r}; available: {list(REPORT_VIEWS)}"
        )
    return _VIEW_SUMMARISERS[view](_records_of(job))


def render_report(summary, *, title: str = "sweep") -> str:
    """The text table for any summary :func:`fetch_report` returns."""
    from repro.campaigns.report import (
        FailureSummary,
        FormatSummary,
        ScenarioSummary,
        SweepSummary,
    )

    tables = {
        SweepSummary: summary_table,
        ScenarioSummary: scenario_table,
        FormatSummary: format_table,
        FailureSummary: failure_table,
    }
    try:
        table = tables[type(summary)]
    except KeyError:
        raise ReproError(
            f"cannot render {type(summary).__name__}; expected one of "
            f"{[t.__name__ for t in tables]}"
        ) from None
    return table(summary, title=title)


# -- wire format ----------------------------------------------------------


class SchemaError(ReproError):
    """A JSON payload does not match its documented schema (HTTP 400)."""


def _string_array(minimum: int = 0) -> dict:
    schema = {"type": "array", "items": {"type": "string"}}
    if minimum:
        schema["minItems"] = minimum
    return schema


#: JSON shape of a :class:`~repro.campaigns.spec.CampaignGrid` on the wire.
GRID_SCHEMA = {
    "type": "object",
    "required": ["apps"],
    "additionalProperties": False,
    "properties": {
        "apps": _string_array(1),
        "strategies": _string_array(),
        "vms": _string_array(),
        "seeds": {"type": "array", "items": {"type": "integer"}},
        "scale": {"type": ["string", "integer"]},
        "eval_runs": {"type": "integer", "minimum": 1},
        "start_time_step": {"type": "number"},
        "tag": {"type": "string"},
        "scenarios": _string_array(),
        "formats": _string_array(),
    },
}

#: JSON shape of the execution options a request may set.  ``store`` is
#: deliberately absent: the daemon owns store placement (per tenant, under
#: its data root), so a request cannot write outside it.
OPTIONS_SCHEMA = {
    "type": "object",
    "additionalProperties": False,
    "properties": {
        "jobs": {"type": "integer", "minimum": 1},
        "store_backend": {"type": "string", "enum": list(BACKEND_NAMES)},
        "shards": {"type": "integer", "minimum": 1},
        "max_retries": {"type": "integer", "minimum": 0},
        "backoff": {"type": "number", "minimum": 0},
        "task_timeout": {"type": "number", "minimum": 0},
        "telemetry": {"type": "boolean"},
        "profile": {"type": "boolean"},
        "exec_mode": {"type": "string", "enum": ["process", "stacked"]},
    },
}

#: JSON shape of ``POST /v1/sweeps``.
SWEEP_REQUEST_SCHEMA = {
    "type": "object",
    "required": ["grid"],
    "additionalProperties": False,
    "properties": {
        "grid": GRID_SCHEMA,
        "options": OPTIONS_SCHEMA,
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    # Tuples count as arrays so in-process callers can validate the dicts
    # CampaignGrid.to_dict() produces without a JSON round-trip first.
    "array": lambda v: isinstance(v, (list, tuple)),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def validate_payload(payload, schema: dict, *, path: str = "$") -> None:
    """Check a decoded JSON value against a (subset of) JSON Schema.

    Supports the keywords the facade's schemas use — ``type`` (including
    union lists), ``required``, ``properties`` with
    ``additionalProperties: false``, ``items``, ``enum``, ``minimum``,
    ``minItems`` — with stdlib code only, so the daemon takes no new
    dependency.  Raises :class:`SchemaError` naming the offending path.
    """
    types = schema.get("type")
    if types is not None:
        allowed = types if isinstance(types, list) else [types]
        if not any(_TYPE_CHECKS[t](payload) for t in allowed):
            raise SchemaError(
                f"{path}: expected {' or '.join(allowed)}, "
                f"got {type(payload).__name__}"
            )
    if "enum" in schema and payload not in schema["enum"]:
        raise SchemaError(
            f"{path}: {payload!r} is not one of {schema['enum']}"
        )
    if isinstance(payload, (int, float)) and not isinstance(payload, bool):
        minimum = schema.get("minimum")
        if minimum is not None and payload < minimum:
            raise SchemaError(f"{path}: {payload} is below minimum {minimum}")
    if isinstance(payload, dict):
        for key in schema.get("required", ()):
            if key not in payload:
                raise SchemaError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            unknown = sorted(set(payload) - set(properties))
            if unknown:
                raise SchemaError(
                    f"{path}: unknown key(s) {unknown}; allowed: "
                    f"{sorted(properties)}"
                )
        for key, value in payload.items():
            if key in properties:
                validate_payload(value, properties[key], path=f"{path}.{key}")
    if isinstance(payload, list):
        min_items = schema.get("minItems")
        if min_items is not None and len(payload) < min_items:
            raise SchemaError(
                f"{path}: needs at least {min_items} item(s), "
                f"got {len(payload)}"
            )
        items = schema.get("items")
        if items is not None:
            for index, value in enumerate(payload):
                validate_payload(value, items, path=f"{path}[{index}]")


def grid_from_payload(payload: dict) -> CampaignGrid:
    """A validated :class:`~repro.campaigns.spec.CampaignGrid` from JSON.

    Schema-checks the shape (:class:`SchemaError` on mismatch), builds the
    grid, then registry-checks every axis (:func:`validate_grid`), so the
    returned grid is safe to dispatch.
    """
    validate_payload(payload, GRID_SCHEMA, path="$.grid")
    grid = CampaignGrid.from_dict(payload)
    return validate_grid(grid)


def options_from_payload(
    payload: dict, *, defaults: Optional[SweepOptions] = None
) -> SweepOptions:
    """A :class:`SweepOptions` from a request's ``options`` object.

    Unset keys inherit from ``defaults`` (the daemon passes its own
    configured options, so e.g. telemetry stays on service-wide unless a
    request turns it off).  ``store`` cannot be set over the wire.
    """
    validate_payload(payload, OPTIONS_SCHEMA, path="$.options")
    base = defaults if defaults is not None else SweepOptions()
    # Shallow field copy — asdict() would deep-convert nested values like
    # an installed FaultPlan into plain dicts.
    merged = {f.name: getattr(base, f.name) for f in fields(base)}
    merged.update(payload)
    return SweepOptions(**merged)
