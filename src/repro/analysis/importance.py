"""Parameter-importance analysis over a search space.

After (or before) tuning, developers ask *which knobs actually matter*.
This module estimates per-parameter main effects with a sampling-based
functional-ANOVA decomposition:

* draw a sample of configurations and their dedicated-environment times
  (or noisy cloud observations — the caller chooses the time source);
* for each parameter, group the sampled times by the parameter's level and
  measure the variance of the group means — the share of total variance a
  parameter explains on its own is its **main-effect importance**.

The same decomposition applied to the noise-sensitivity surface reveals
which knobs drive *fragility* — useful when the goal is a stable
configuration rather than the fastest one (Takeaway II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.apps.model import ApplicationModel
from repro.errors import ReproError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class ParameterImportance:
    """Main-effect share of one parameter."""

    name: str
    dimension: int
    importance: float          # fraction of total variance explained
    best_level: int            # level with the lowest mean response
    level_means: tuple         # mean response per level

    @property
    def best_value(self):
        """Placeholder kept simple; decode via the space if needed."""
        return self.best_level


@dataclass(frozen=True)
class ImportanceReport:
    """Main-effect decomposition of one response surface."""

    app_name: str
    response: str
    sample_size: int
    parameters: List[ParameterImportance]

    def ranked(self) -> List[ParameterImportance]:
        """Parameters from most to least important."""
        return sorted(self.parameters, key=lambda p: -p.importance)

    def parameter(self, name: str) -> ParameterImportance:
        for p in self.parameters:
            if p.name == name:
                return p
        raise KeyError(name)

    def render(self, top: Optional[int] = None) -> str:
        """Readable ranking with importance bars."""
        rows = self.ranked()[: top or len(self.parameters)]
        width = max(len(p.name) for p in rows)
        lines = [f"Main-effect importance of {self.response} ({self.app_name}, "
                 f"n={self.sample_size}):"]
        for p in rows:
            bar = "#" * max(1, int(round(40 * p.importance)))
            lines.append(
                f"  {p.name.ljust(width)} {100 * p.importance:6.2f}%  {bar}"
            )
        return "\n".join(lines)


def main_effects(
    app: ApplicationModel,
    *,
    response: str = "time",
    n: int = 4000,
    seed: SeedLike = 0,
    observe: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> ImportanceReport:
    """Estimate per-parameter main effects by level-wise group means.

    Args:
        app: the application whose space is analysed.
        response: ``"time"`` (dedicated-environment execution time),
            ``"sensitivity"`` (noise fragility), or ``"custom"`` with an
            ``observe`` callable mapping index arrays to responses.
        n: sample size.
        seed: sampling seed.
        observe: custom response source (required iff ``response="custom"``),
            e.g. noisy cloud observations from a ``CloudEnvironment``.
    """
    if n < 50:
        raise ReproError(f"need at least 50 samples, got {n}")
    sources: dict = {
        "time": lambda idx: app.true_time(idx),
        "sensitivity": lambda idx: app.sensitivity(idx),
    }
    if response == "custom":
        if observe is None:
            raise ReproError("response='custom' requires an observe callable")
        source = observe
    else:
        try:
            source = sources[response]
        except KeyError:
            raise ReproError(
                f"unknown response {response!r}; expected 'time', "
                "'sensitivity' or 'custom'"
            ) from None

    rng = ensure_rng(seed)
    indices = app.space.sample_indices(min(n, app.space.size), rng)
    responses = np.asarray(source(indices), dtype=float)
    if responses.shape != indices.shape:
        raise ReproError("observe must return one response per index")
    levels = app.space.levels_matrix(indices)
    total_var = float(responses.var())

    parameters: List[ParameterImportance] = []
    for dim, parameter in enumerate(app.space.parameters):
        card = parameter.cardinality
        means = np.empty(card)
        for level in range(card):
            mask = levels[:, dim] == level
            means[level] = float(responses[mask].mean()) if mask.any() else np.nan
        counts = np.array([
            int((levels[:, dim] == level).sum()) for level in range(card)
        ])
        valid = counts > 0
        grand = float(responses.mean())
        between = float(
            (counts[valid] * (means[valid] - grand) ** 2).sum() / max(1, n)
        )
        importance = between / total_var if total_var > 0 else 0.0
        best_level = int(np.nanargmin(means))
        parameters.append(
            ParameterImportance(
                name=parameter.name,
                dimension=dim,
                importance=float(importance),
                best_level=best_level,
                level_means=tuple(float(m) for m in means),
            )
        )
    return ImportanceReport(
        app_name=app.name,
        response=response,
        sample_size=int(indices.size),
        parameters=parameters,
    )
