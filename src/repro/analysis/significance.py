"""Statistical comparison helpers for strategy A-vs-B claims.

The benchmark harness asserts orderings ("DarwinGame beats BLISS") from a
handful of repeats; these helpers make such claims statistically honest:

* :func:`mann_whitney` — non-parametric two-sample test on execution times
  (no normality assumption, right for skewed cloud measurements);
* :func:`bootstrap_mean_diff` — bootstrap CI of the mean difference;
* :func:`cliffs_delta` — effect size on an interpretable [-1, 1] scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import mannwhitneyu

from repro.errors import ReproError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of one A-vs-B comparison (A is "better" when lower)."""

    p_value: float
    a_mean: float
    b_mean: float
    effect_size: float          # Cliff's delta: -1 (A always lower) .. +1
    significant: bool

    @property
    def a_is_lower(self) -> bool:
        return self.a_mean < self.b_mean


def _validate(a, b) -> tuple:
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size < 2 or y.size < 2:
        raise ReproError("need at least two samples per side")
    return x, y


def cliffs_delta(a, b) -> float:
    """Cliff's delta: P(a > b) - P(a < b) over all sample pairs."""
    x, y = _validate(a, b)
    greater = (x[:, None] > y[None, :]).sum()
    less = (x[:, None] < y[None, :]).sum()
    return float((greater - less) / (x.size * y.size))


def mann_whitney(a, b, *, alpha: float = 0.05) -> ComparisonResult:
    """Two-sided Mann-Whitney U test plus effect size.

    Args:
        a, b: samples (e.g. per-repeat execution times of two strategies).
        alpha: significance level for the ``significant`` flag.
    """
    x, y = _validate(a, b)
    if np.all(x == x[0]) and np.all(y == y[0]) and x[0] == y[0]:
        # Degenerate identical-constant samples: no evidence either way.
        return ComparisonResult(
            p_value=1.0, a_mean=float(x.mean()), b_mean=float(y.mean()),
            effect_size=0.0, significant=False,
        )
    stat = mannwhitneyu(x, y, alternative="two-sided")
    return ComparisonResult(
        p_value=float(stat.pvalue),
        a_mean=float(x.mean()),
        b_mean=float(y.mean()),
        effect_size=cliffs_delta(x, y),
        significant=bool(stat.pvalue < alpha),
    )


def bootstrap_mean_diff(
    a,
    b,
    *,
    n_boot: int = 2000,
    confidence: float = 0.95,
    seed: SeedLike = 0,
) -> tuple:
    """Bootstrap CI of ``mean(a) - mean(b)``; returns ``(low, high)``."""
    x, y = _validate(a, b)
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence must be in (0, 1), got {confidence}")
    rng = ensure_rng(seed)
    diffs = np.empty(n_boot)
    for k in range(n_boot):
        xs = x[rng.integers(0, x.size, x.size)]
        ys = y[rng.integers(0, y.size, y.size)]
        diffs[k] = xs.mean() - ys.mean()
    tail = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(diffs, tail)),
        float(np.quantile(diffs, 1.0 - tail)),
    )
