"""Small, dependency-light statistics used throughout the reproduction.

The paper's metrics are simple (coefficient of variation, percent deltas,
empirical CDFs); we centralise them here so every experiment computes them
identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.rng import SeedLike, ensure_rng


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Return the coefficient of variation of ``values`` in percent.

    Defined as ``100 * std / mean`` (population standard deviation), the
    paper's measure of run-to-run performance variability.  Raises
    ``ValueError`` for empty input or a zero mean, where CoV is undefined.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("coefficient of variation of empty sequence")
    mean = float(arr.mean())
    if mean == 0.0:
        raise ValueError("coefficient of variation undefined for zero mean")
    return 100.0 * float(arr.std()) / abs(mean)


def percent_increase(value: float, baseline: float) -> float:
    """Return how much larger ``value`` is than ``baseline``, in percent."""
    if baseline == 0.0:
        raise ValueError("percent increase undefined for zero baseline")
    return 100.0 * (value - baseline) / baseline


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def cdf_points(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_percent)`` for an empirical CDF.

    ``cumulative_percent[i]`` is the percentage of observations that are
    ``<= sorted_values[i]`` — the representation used by Fig. 1.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("cdf of empty sequence")
    pct = 100.0 * (np.arange(1, arr.size + 1) / arr.size)
    return arr, pct


def rank_with_ties(values: Sequence[float], *, descending: bool = False) -> np.ndarray:
    """Competition-rank ``values`` starting at 1; equal values share a rank.

    With ``descending=True`` the largest value gets rank 1 (the convention
    for execution scores, where more work done is better).
    """
    arr = np.asarray(values, dtype=float)
    if descending:
        arr = -arr
    n = arr.size
    ranks = np.empty(n, dtype=np.int64)
    if n == 0:
        return ranks
    order = np.argsort(arr, kind="stable")
    sorted_vals = arr[order]
    # Competition rank = 1 + sorted position of the value's first occurrence
    # (ties share their group's first position; a strict inequality starts a
    # new group, so NaNs — never equal to anything — each start their own).
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_vals[1:], sorted_vals[:-1], out=new_group[1:])
    group_first = np.maximum.accumulate(
        np.where(new_group, np.arange(1, n + 1), 0)
    )
    ranks[order] = group_first
    return ranks


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary used in experiment reports."""

    mean: float
    std: float
    minimum: float
    maximum: float
    cov_percent: float
    n: int


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("summary of empty sequence")
    return Summary(
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        cov_percent=coefficient_of_variation(arr),
        n=int(arr.size),
    )


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: SeedLike = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean of ``values``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("bootstrap of empty sequence")
    rng = ensure_rng(seed)
    samples = rng.choice(arr, size=(n_resamples, arr.size), replace=True)
    means = samples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(lo), float(hi)
