"""Plain-text plots for terminal experiment reports.

The benchmark harness regenerates the paper's figures as printed tables;
for the figures whose message is a *shape* (CDFs, scatters, degradation
curves) these renderers add a terminal-friendly visual so "regenerating
Fig. 2" genuinely shows the trend, not just numbers.

Everything renders to a plain string, uses ASCII only, and never depends on
a display — safe in CI logs and pytest output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ReproError

_BAR_CHAR = "#"
_POINT_CHAR = "*"
_DENSE_CHAR = "@"


def _check_width(width: int, height: int = 1) -> None:
    if width < 10:
        raise ReproError(f"plot width must be >= 10 columns, got {width}")
    if height < 3:
        raise ReproError(f"plot height must be >= 3 rows, got {height}")


def hbar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 60,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label.

    Bars scale to the maximum value; each row prints the numeric value so
    the chart is lossless.
    """
    _check_width(width, height=3)
    if len(labels) != len(values):
        raise ReproError("labels and values must have equal length")
    if len(labels) == 0:
        raise ReproError("nothing to plot")
    vals = np.asarray(values, dtype=float)
    if np.any(vals < 0):
        raise ReproError("bar values must be non-negative")
    vmax = float(vals.max()) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, vals):
        bar = _BAR_CHAR * max(1 if value > 0 else 0, int(round(width * value / vmax)))
        lines.append(f"{str(label).ljust(label_w)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def cdf_plot(
    samples: Sequence[float],
    *,
    width: int = 64,
    height: int = 12,
    title: str = "",
    x_label: str = "",
) -> str:
    """Empirical CDF as an ASCII line plot (Fig. 1's presentation)."""
    _check_width(width, height)
    data = np.sort(np.asarray(samples, dtype=float))
    if data.size == 0:
        raise ReproError("nothing to plot")
    lo, hi = float(data[0]), float(data[-1])
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for col in range(width):
        x = lo + span * col / (width - 1)
        fraction = float(np.searchsorted(data, x, side="right")) / data.size
        row = height - 1 - int(round(fraction * (height - 1)))
        grid[row][col] = _POINT_CHAR
    lines: List[str] = [title] if title else []
    for r, row in enumerate(grid):
        pct = 100.0 * (height - 1 - r) / (height - 1)
        lines.append(f"{pct:5.0f}% |" + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    footer = f"{lo:.3g}".ljust(width - 6) + f"{hi:.3g}"
    lines.append(" " * 8 + footer)
    if x_label:
        lines.append(" " * 8 + x_label)
    return "\n".join(lines)


def scatter_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    highlight: Optional[Sequence[bool]] = None,
) -> str:
    """ASCII scatter plot; ``highlight`` marks points with ``@`` (Fig. 2's blues)."""
    _check_width(width, height)
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size == 0 or x.shape != y.shape:
        raise ReproError("need equal-length non-empty x and y")
    marks = (
        np.asarray(highlight, dtype=bool)
        if highlight is not None
        else np.zeros(x.shape, dtype=bool)
    )
    if marks.shape != x.shape:
        raise ReproError("highlight mask must match the data length")
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi, hot in zip(x, y, marks):
        col = int(round((xi - x_lo) / x_span * (width - 1)))
        row = height - 1 - int(round((yi - y_lo) / y_span * (height - 1)))
        current = grid[row][col]
        grid[row][col] = _DENSE_CHAR if hot else (current if current == _DENSE_CHAR else _POINT_CHAR)
    lines: List[str] = [title] if title else []
    if y_label:
        lines.append(y_label)
    for r, row in enumerate(grid):
        y_val = y_hi - y_span * r / (height - 1)
        lines.append(f"{y_val:9.3g} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    footer = f"{x_lo:.3g}".ljust(width - 6) + f"{x_hi:.3g}"
    lines.append(" " * 11 + footer)
    if x_label:
        lines.append(" " * 11 + x_label)
    return "\n".join(lines)


def series_plot(
    x: Sequence[float],
    series: dict,
    *,
    width: int = 64,
    height: int = 14,
    title: str = "",
    x_label: str = "",
) -> str:
    """Several named y-series over a shared x axis (degradation curves).

    Each series is drawn with its own letter (its name's first character,
    uppercased, de-duplicated alphabetically on collision).
    """
    _check_width(width, height)
    xs = np.asarray(x, dtype=float)
    if xs.size < 2:
        raise ReproError("series plots need at least two x positions")
    if not series:
        raise ReproError("no series to plot")
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    y_span = (y_hi - y_lo) or 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())
    x_span = (x_hi - x_lo) or 1.0

    used: set = set()
    symbols = {}
    for name in series:
        char = str(name)[:1].upper() or "?"
        while char in used:
            char = chr(ord(char) + 1) if char < "Z" else "?"
        used.add(char)
        symbols[name] = char

    grid = [[" "] * width for _ in range(height)]
    for name, ys in series.items():
        yv = np.asarray(ys, dtype=float)
        if yv.shape != xs.shape:
            raise ReproError(f"series {name!r} length does not match x")
        for xi, yi in zip(xs, yv):
            col = int(round((xi - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((yi - y_lo) / y_span * (height - 1)))
            grid[row][col] = symbols[name]
    lines: List[str] = [title] if title else []
    for r, row in enumerate(grid):
        y_val = y_hi - y_span * r / (height - 1)
        lines.append(f"{y_val:9.3g} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    footer = f"{x_lo:.3g}".ljust(width - 6) + f"{x_hi:.3g}"
    lines.append(" " * 11 + footer)
    if x_label:
        lines.append(" " * 11 + x_label)
    legend = "   ".join(f"{sym}={name}" for name, sym in symbols.items())
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
