"""Statistical helpers and text plotting shared by experiments and tests."""

from repro.analysis.importance import (
    ImportanceReport,
    ParameterImportance,
    main_effects,
)
from repro.analysis.significance import (
    ComparisonResult,
    bootstrap_mean_diff,
    cliffs_delta,
    mann_whitney,
)
from repro.analysis.stats import (
    bootstrap_ci,
    cdf_points,
    coefficient_of_variation,
    geometric_mean,
    percent_increase,
    rank_with_ties,
    summarize,
)
from repro.analysis.textplots import (
    cdf_plot,
    hbar_chart,
    scatter_plot,
    series_plot,
)

__all__ = [
    "ImportanceReport",
    "ParameterImportance",
    "ComparisonResult",
    "bootstrap_ci",
    "bootstrap_mean_diff",
    "cliffs_delta",
    "cdf_plot",
    "cdf_points",
    "coefficient_of_variation",
    "geometric_mean",
    "hbar_chart",
    "main_effects",
    "mann_whitney",
    "percent_increase",
    "rank_with_ties",
    "scatter_plot",
    "series_plot",
    "summarize",
]
