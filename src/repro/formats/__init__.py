"""Tournament formats: the scheduler half of the unified tournament engine.

DarwinGame's phases (Sec. 3) are built from three classic playing styles —
Swiss, double elimination, and barrage — and the paper grounds its choices
in the tournament-design literature (its refs. [26, 35, 44, 58, 64]).  This
package provides those formats as *schedulers* over abstract player ids:
pure state machines that emit rounds of matches and ingest results, with no
opinion about how a match is decided (see :mod:`repro.formats.scheduler`).

One set of schedulers serves every consumer:

* the tournament core in :mod:`repro.core` composes them with its batched
  :class:`~repro.core.executor.MatchExecutor` — real co-located cloud games,
  scores, early termination, and core-hour accounting — to run the actual
  tuner, under any registered :class:`~repro.formats.recipes.TournamentRecipe`;
* :mod:`repro.experiments.format_power` drives the very same state machines
  with a noisy-strength :class:`~repro.formats.match.MatchOracle` to measure
  each format's predictive power, reproducing the style of analysis the
  paper cites when motivating its phase structure.

There is no separate clean-room implementation anywhere: what the studies
measure is what the tuner plays.
"""

from repro.formats.barrage import Barrage, BarrageResult, BarrageRun
from repro.formats.double_elimination import (
    DoubleElimination,
    DoubleEliminationResult,
    DoubleEliminationRun,
    GroupedDoubleElimination,
    GroupedDoubleEliminationResult,
    GroupedDoubleEliminationRun,
    form_groups,
)
from repro.formats.match import MatchOracle, NoisyStrengthOracle, RecordedMatch
from repro.formats.recipes import (
    DEFAULT_FORMAT,
    PLAYOFF_FORMATS,
    TOURNAMENT_FORMAT_NAMES,
    TournamentRecipe,
    register_tournament_format,
    tournament_format,
    tournament_format_names,
)
from repro.formats.round_robin import RoundRobin, RoundRobinResult, RoundRobinRun
from repro.formats.scheduler import (
    Match,
    PlayerPool,
    Round,
    ScheduledRun,
    run_schedule,
)
from repro.formats.single_elimination import (
    SingleElimination,
    SingleEliminationResult,
    SingleEliminationRun,
)
from repro.formats.swiss import (
    StreakSwiss,
    StreakSwissRun,
    SwissResult,
    SwissSystem,
    SwissSystemRun,
)

__all__ = [
    "Barrage",
    "BarrageResult",
    "BarrageRun",
    "DEFAULT_FORMAT",
    "DoubleElimination",
    "DoubleEliminationResult",
    "DoubleEliminationRun",
    "GroupedDoubleElimination",
    "GroupedDoubleEliminationResult",
    "GroupedDoubleEliminationRun",
    "Match",
    "MatchOracle",
    "NoisyStrengthOracle",
    "PLAYOFF_FORMATS",
    "PlayerPool",
    "RecordedMatch",
    "Round",
    "RoundRobin",
    "RoundRobinResult",
    "RoundRobinRun",
    "ScheduledRun",
    "SingleElimination",
    "SingleEliminationResult",
    "SingleEliminationRun",
    "StreakSwiss",
    "StreakSwissRun",
    "SwissResult",
    "SwissSystem",
    "SwissSystemRun",
    "TOURNAMENT_FORMAT_NAMES",
    "TournamentRecipe",
    "form_groups",
    "register_tournament_format",
    "run_schedule",
    "tournament_format",
    "tournament_format_names",
]
