"""Generic tournament formats over abstract players.

DarwinGame's phases (Sec. 3) are built from three classic playing styles —
Swiss, double elimination, and barrage — and the paper grounds its choices
in the tournament-design literature (its refs. [26, 35, 44, 58, 64]).  This
package provides those formats as *reusable schedulers* over abstract player
ids with a pluggable match oracle, so that

* the format mechanics can be unit- and property-tested in isolation from
  the cloud simulator, and
* the predictive power of each format under noise can be studied directly
  (:mod:`repro.experiments.format_power`), reproducing the style of analysis
  the paper cites when motivating its phase structure.

The tournament core in :mod:`repro.core` keeps its own phase implementations
(they are entangled with scores, early termination and core-hour accounting);
this package is the clean-room counterpart used for studies and validation.
"""

from repro.formats.match import MatchOracle, NoisyStrengthOracle, RecordedMatch
from repro.formats.round_robin import RoundRobin
from repro.formats.single_elimination import SingleElimination
from repro.formats.swiss import SwissSystem
from repro.formats.double_elimination import DoubleElimination
from repro.formats.barrage import Barrage

__all__ = [
    "Barrage",
    "DoubleElimination",
    "MatchOracle",
    "NoisyStrengthOracle",
    "RecordedMatch",
    "RoundRobin",
    "SingleElimination",
    "SwissSystem",
]
