"""Single elimination: lose once and you are out.

The cheapest knockout format (``n - 1`` games for ``n`` players) and the
most fragile under noise — one unlucky game eliminates the strongest player.
Included as the baseline that motivates double elimination (Sec. 3.4's
"one bad day" argument), and available as a playoff format recipe for the
unified tournament engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.formats.match import MatchOracle
from repro.formats.scheduler import (
    Match,
    Round,
    RunLog,
    pair_off,
    run_schedule,
    validated_players,
)


@dataclass(frozen=True)
class SingleEliminationResult:
    """Winner and per-round survivors of a knockout bracket."""

    winner: int
    rounds: Tuple[Tuple[int, ...], ...]  # survivors entering each round
    games: int
    byes: int


class SingleEliminationRun:
    """State machine: pair off survivors each round; odd player out byes."""

    def __init__(self, players: Sequence[int]) -> None:
        self.alive: List[int] = validated_players(
            players, minimum=1, what="single elimination"
        )
        self.log = RunLog()
        self.byes = 0
        self._round_fields: List[Tuple[int, ...]] = []
        self._pending_bye: Optional[int] = None

    @property
    def done(self) -> bool:
        return len(self.alive) <= 1

    def pairings(self) -> Optional[Round]:
        if self.done:
            return None
        self._round_fields.append(tuple(self.alive))
        pairs, bye = pair_off(self.alive)
        self._pending_bye = bye
        return Round(
            matches=tuple(Match(pair) for pair in pairs),
            byes=(bye,) if bye is not None else (),
        )

    def advance(self, results) -> None:
        survivors: List[int] = []
        if self._pending_bye is not None:
            survivors.append(self._pending_bye)  # bye for the odd one out
            self.byes += 1
            self._pending_bye = None
        survivors.extend(match.winner for match in results)
        self.alive = survivors
        self.log.book(results)

    def result(self) -> SingleEliminationResult:
        return SingleEliminationResult(
            winner=self.alive[0],
            rounds=tuple(self._round_fields) + (tuple(self.alive),),
            games=self.log.games,
            byes=self.byes,
        )


class SingleElimination:
    """The stateless format recipe; ``schedule`` opens one bracket run."""

    def schedule(self, players: Sequence[int]) -> SingleEliminationRun:
        return SingleEliminationRun(players)

    def run(
        self, players: Sequence[int], oracle: MatchOracle
    ) -> SingleEliminationResult:
        """Play a whole bracket through a match oracle (reference executor)."""
        return run_schedule(self.schedule(players), oracle).result()
