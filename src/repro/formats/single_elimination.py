"""Single elimination: lose once and you are out.

The cheapest knockout format (``n - 1`` games for ``n`` players) and the
most fragile under noise — one unlucky game eliminates the strongest player.
Included as the baseline that motivates double elimination (Sec. 3.4's
"one bad day" argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ReproError
from repro.formats.match import MatchOracle, RecordedMatch


@dataclass(frozen=True)
class SingleEliminationResult:
    """Winner and per-round survivors of a knockout bracket."""

    winner: int
    rounds: Tuple[Tuple[int, ...], ...]  # survivors entering each round
    games: int
    byes: int


class SingleElimination:
    """Pair off survivors each round; odd player out gets a bye."""

    def run(
        self, players: Sequence[int], oracle: MatchOracle
    ) -> SingleEliminationResult:
        alive = [int(p) for p in players]
        if len(alive) < 1:
            raise ReproError("single elimination needs at least one player")
        if len(set(alive)) != len(alive):
            raise ReproError(f"duplicate players: {alive}")

        rounds: List[Tuple[int, ...]] = []
        games = 0
        byes = 0
        while len(alive) > 1:
            rounds.append(tuple(alive))
            survivors: List[int] = []
            if len(alive) % 2 == 1:
                survivors.append(alive[-1])  # bye for the odd one out
                byes += 1
            for k in range(0, len(alive) - len(alive) % 2, 2):
                match: RecordedMatch = oracle.play([alive[k], alive[k + 1]])
                survivors.append(match.winner)
                games += 1
            alive = survivors
        rounds.append(tuple(alive))
        return SingleEliminationResult(
            winner=alive[0], rounds=tuple(rounds), games=games, byes=byes
        )
