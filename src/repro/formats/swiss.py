"""Swiss system: rounds of score-group pairings, no eliminations.

Every round pairs players with (near-)equal running scores against each
other; nobody is eliminated, and the standings after ``r ~ log2(n)`` rounds
identify the strongest players with far fewer games than a round-robin.
This is the format of DarwinGame's regional phase (Sec. 3.3): "the most
promising players directly compete with each other".

Pairing rule (standard Swiss with a simple rematch-avoidance pass): sort by
score, walk down the list pairing each unpaired player with the highest
unpaired opponent they have not met; if everyone remaining has been met,
allow the rematch rather than leave players idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.formats.match import MatchOracle


@dataclass(frozen=True)
class SwissResult:
    """Standings after all Swiss rounds (best first)."""

    standings: Tuple[int, ...]
    scores: Dict[int, float]
    games: int
    rounds: int

    @property
    def winner(self) -> int:
        return self.standings[0]


class SwissSystem:
    """Score-group pairing for a fixed number of rounds.

    Args:
        rounds: number of Swiss rounds; ``None`` uses ``ceil(log2(n))``,
            the conventional minimum for a unique leader.
    """

    def __init__(self, rounds=None) -> None:
        if rounds is not None and rounds < 1:
            raise ReproError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds

    def run(self, players: Sequence[int], oracle: MatchOracle) -> SwissResult:
        ids = [int(p) for p in players]
        if len(ids) < 2:
            raise ReproError("a Swiss tournament needs at least two players")
        if len(set(ids)) != len(ids):
            raise ReproError(f"duplicate players: {ids}")

        n_rounds = self.rounds
        if n_rounds is None:
            n_rounds = max(1, (len(ids) - 1).bit_length())

        scores: Dict[int, float] = {p: 0.0 for p in ids}
        met: Set[Tuple[int, int]] = set()
        games = 0
        for _ in range(n_rounds):
            pairs, bye = self._pair(ids, scores, met)
            if bye is not None:
                scores[bye] += 1.0  # a bye scores like a win
            for a, b in pairs:
                match = oracle.play([a, b])
                scores[match.winner] += 1.0
                met.add((min(a, b), max(a, b)))
                games += 1

        standings = sorted(ids, key=lambda p: (-scores[p], p))
        return SwissResult(
            standings=tuple(standings),
            scores=scores,
            games=games,
            rounds=n_rounds,
        )

    @staticmethod
    def _pair(
        ids: List[int],
        scores: Dict[int, float],
        met: Set[Tuple[int, int]],
    ) -> Tuple[List[Tuple[int, int]], int]:
        """Pair by score groups with rematch avoidance; returns (pairs, bye)."""
        order = sorted(ids, key=lambda p: (-scores[p], p))
        unpaired = list(order)
        pairs: List[Tuple[int, int]] = []
        while len(unpaired) >= 2:
            a = unpaired.pop(0)
            pick = None
            for k, b in enumerate(unpaired):
                if (min(a, b), max(a, b)) not in met:
                    pick = k
                    break
            if pick is None:
                pick = 0  # every remaining opponent already met: allow rematch
            pairs.append((a, unpaired.pop(pick)))
        bye = unpaired[0] if unpaired else None
        return pairs, bye
