"""Swiss playing styles: keep the strongest players meeting each other.

Two schedulers share this module:

* :class:`SwissSystem` — the textbook Swiss system of the tournament-design
  literature: rounds of score-group *pairings*, nobody eliminated, and the
  standings after ``r ~ log2(n)`` rounds identify the strongest players with
  far fewer games than a round-robin.

* :class:`StreakSwiss` — DarwinGame's regional variant (Sec. 3.3, Fig. 6):
  rounds of *multi-player* games over a drawable player pool.  Round one
  picks players at random; every later round fills half its seats with
  players that have never played and half with previously scored players
  selected probabilistically — a higher execution score means a higher
  chance of being re-selected, so the most promising configurations keep
  contending with each other (the Swiss property).  A run terminates when
  one player has won consecutively "more than one time" (the champion),
  when the pool of new players is exhausted, or when the round cap is hit.

Both are pure schedulers over abstract player ids: they emit rounds and
ingest results, and the same state machines are driven by the match-oracle
executor (format studies) and by the cloud-game executor (the real tuner).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ReproError
from repro.formats.match import MatchOracle
from repro.formats.scheduler import (
    Match,
    PlayerPool,
    Round,
    RunLog,
    run_schedule,
    validated_players,
)


@dataclass(frozen=True)
class SwissResult:
    """Standings after all Swiss rounds (best first)."""

    standings: Tuple[int, ...]
    scores: Dict[int, float]
    games: int
    rounds: int

    @property
    def winner(self) -> int:
        return self.standings[0]


class SwissSystemRun:
    """State machine of one Swiss-system tournament."""

    def __init__(self, players: Sequence[int], n_rounds: int) -> None:
        self.ids = validated_players(players, minimum=2, what="a Swiss tournament")
        self.n_rounds = n_rounds
        self.scores: Dict[int, float] = {p: 0.0 for p in self.ids}
        self.met: Set[Tuple[int, int]] = set()
        self.log = RunLog()
        self._round_no = 0
        self._pending_bye: Optional[int] = None

    @property
    def done(self) -> bool:
        return self._round_no >= self.n_rounds

    def pairings(self) -> Optional[Round]:
        if self.done:
            return None
        pairs, bye = self._pair(self.ids, self.scores, self.met)
        self._pending_bye = bye
        return Round(
            matches=tuple(Match(pair) for pair in pairs),
            byes=(bye,) if bye is not None else (),
        )

    def advance(self, results) -> None:
        if self._pending_bye is not None:
            self.scores[self._pending_bye] += 1.0  # a bye scores like a win
            self._pending_bye = None
        for match in results:
            self.scores[match.winner] += 1.0
            a, b = match.players[0], match.players[-1]
            self.met.add((min(a, b), max(a, b)))
        self._round_no += 1
        self.log.book(results)

    def result(self) -> SwissResult:
        standings = sorted(self.ids, key=lambda p: (-self.scores[p], p))
        return SwissResult(
            standings=tuple(standings),
            scores=self.scores,
            games=self.log.games,
            rounds=self.n_rounds,
        )

    @staticmethod
    def _pair(
        ids: List[int],
        scores: Dict[int, float],
        met: Set[Tuple[int, int]],
    ) -> Tuple[List[Tuple[int, int]], Optional[int]]:
        """Pair by score groups with rematch avoidance; returns (pairs, bye).

        Sort by score, walk down the list pairing each unpaired player with
        the highest unpaired opponent they have not met; if everyone
        remaining has been met, allow the rematch rather than leave players
        idle.
        """
        order = sorted(ids, key=lambda p: (-scores[p], p))
        unpaired = list(order)
        pairs: List[Tuple[int, int]] = []
        while len(unpaired) >= 2:
            a = unpaired.pop(0)
            pick = None
            for k, b in enumerate(unpaired):
                if (min(a, b), max(a, b)) not in met:
                    pick = k
                    break
            if pick is None:
                pick = 0  # every remaining opponent already met: allow rematch
            pairs.append((a, unpaired.pop(pick)))
        bye = unpaired[0] if unpaired else None
        return pairs, bye


class SwissSystem:
    """Score-group pairing for a fixed number of rounds.

    Args:
        rounds: number of Swiss rounds; ``None`` uses ``ceil(log2(n))``,
            the conventional minimum for a unique leader.
    """

    def __init__(self, rounds=None) -> None:
        if rounds is not None and rounds < 1:
            raise ReproError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds

    def schedule(self, players: Sequence[int]) -> SwissSystemRun:
        n_rounds = self.rounds
        if n_rounds is None:
            n_rounds = max(1, (len(list(players)) - 1).bit_length())
        return SwissSystemRun(players, n_rounds)

    def run(self, players: Sequence[int], oracle: MatchOracle) -> SwissResult:
        """Play a whole Swiss tournament through a match oracle."""
        return run_schedule(self.schedule(players), oracle).result()


# Exponent sharpening score-proportional selection: strong players meet often.
SELECTION_SHARPNESS = 4.0


class StreakSwissRun:
    """State machine of one DarwinGame-style Swiss pool.

    One multi-player lineup per round.  The machine is oblivious to how its
    rounds are simulated — the driver decides whether rounds from many pools
    are batched together (regions in lockstep) or played one at a time.
    """

    def __init__(
        self,
        format_: "StreakSwiss",
        pool: PlayerPool,
        rng: np.random.Generator,
        *,
        scores: Callable[[Sequence[int]], np.ndarray],
        on_assign: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.pool = pool
        self.rng = rng
        self.scores = scores
        self.on_assign = on_assign
        self.log = RunLog()
        self.champion = -1
        self.streak = 0
        self.round_no = 0
        self.done = False
        # Ordered set of everyone who has played (and so carries a score):
        # position map plus the matching list, maintained incrementally.
        self._played: Dict[int, int] = {}
        self._played_list: List[int] = []
        self._assigned: set = set()
        self._lineup: Optional[List[int]] = None
        self.lone: Optional[int] = None
        self._swiss = format_.swiss_style
        self._win_streak = format_.win_streak

        self.players_per_game = max(2, min(format_.players_per_game, pool.size))
        if pool.size == 1:
            # Degenerate single-player pool: the lone player advances unplayed.
            self.lone = pool.start
            self._notify_assigned(self.lone)
            self.done = True
            return

        if self._swiss:
            self._fresh: Optional[List[int]] = (
                [int(i) for i in pool.sample(pool.size, rng, replace=False)]
                if pool.size <= 4 * self.players_per_game else None
            )
            # Large pools draw new players lazily instead of materialising all.
            self._drawn: set = set()
            max_rounds = format_.max_rounds
            if max_rounds is None:
                newcomers = max(1, self.players_per_game // 2)
                max_rounds = min(64, math.ceil(pool.size / newcomers) + 2)
            self.max_rounds = max_rounds
        else:
            self.max_rounds = 1

    # -- drawing newcomers -------------------------------------------------

    def _notify_assigned(self, player: int) -> None:
        if self.on_assign is not None:
            self.on_assign(player)

    def _draw_new(self, n: int) -> List[int]:
        if self._fresh is not None:
            out = self._fresh[:n]
            del self._fresh[:n]
            return [int(i) for i in out]
        out: List[int] = []
        attempts = 0
        while len(out) < n and attempts < 20:
            batch = self.pool.sample(max(2 * n, 8), self.rng)
            for i in batch:
                iv = int(i)
                if iv not in self._drawn:
                    self._drawn.add(iv)
                    out.append(iv)
                    if len(out) == n:
                        break
            attempts += 1
        return out

    def _select_veterans(self, n: int) -> List[int]:
        """Pick ``n`` previously scored players, champion always included.

        ``_played_list`` is the ordered list of scored players and
        ``_played`` its index map, both maintained incrementally — so the
        membership test is O(1) and the selection weights come from one
        vectorised score gather instead of a per-player pool rebuild.
        """
        if n <= 0:
            return []
        members = self._played_list
        champion_pos = self._played.get(self.champion)
        chosen: List[int] = [self.champion] if champion_pos is not None else []
        want = n - len(chosen)
        if want > 0 and len(members) > len(chosen):
            scores = self.scores(members)
            weights = np.power(np.maximum(scores, 1e-6), SELECTION_SHARPNESS)
            if champion_pos is not None:
                weights[champion_pos] = 0.0
            total = weights.sum()
            if total > 0:
                take = min(want, len(members) - len(chosen))
                picks = self.rng.choice(
                    len(members), size=take, replace=False, p=weights / total
                )
                chosen.extend(members[int(p)] for p in picks)
        return chosen[:n]

    # -- the round protocol ------------------------------------------------

    def next_lineup(self) -> Optional[List[int]]:
        """Lineup this pool wants to play now; ``None`` once terminated."""
        if self.done:
            return None
        if not self._swiss:
            lineup = [int(i) for i in self.pool.sample(
                min(self.players_per_game, self.pool.size), self.rng,
                replace=False,
            )]
        elif self.round_no >= self.max_rounds:
            self.done = True
            return None
        elif self.round_no == 0:
            lineup = self._draw_new(self.players_per_game)
        else:
            n_new = self.players_per_game // 2
            newcomers = self._draw_new(n_new)
            veterans = self._select_veterans(
                self.players_per_game - len(newcomers)
            )
            lineup = veterans + newcomers
        lineup = list(dict.fromkeys(lineup))
        if len(lineup) < 2:
            self.done = True
            return None
        for idx in lineup:
            if idx not in self._assigned:
                self._assigned.add(idx)
                self._notify_assigned(idx)
        self._lineup = lineup
        return lineup

    def pairings(self) -> Optional[Round]:
        lineup = self.next_lineup()
        if lineup is None:
            return None
        return Round(matches=(Match(tuple(lineup)),))

    def advance(self, results) -> None:
        """Book one played round (a single multi-player match) back in."""
        (match,) = results
        self.log.book(results)
        self._observe(match.winner)

    @property
    def games(self) -> int:
        """Games played so far (one multi-player game per round)."""
        return self.log.games

    def _observe(self, winner: int) -> None:
        """Fold the played lineup's winner into the streak state."""
        played = self._played
        for idx in self._lineup or ():
            if idx not in played:
                played[idx] = len(played)
                self._played_list.append(idx)
        self._lineup = None
        self.round_no += 1

        if not self._swiss:
            self.champion = winner
            self.done = True
            return
        if winner == self.champion:
            self.streak += 1
        else:
            self.champion = winner
            self.streak = 1
        if self.streak >= self._win_streak:
            self.done = True
        elif self._fresh is not None and not self._fresh:
            self.done = True

    @property
    def played_players(self) -> List[int]:
        """Everyone who has played a game, in first-appearance order."""
        return self._played_list


class StreakSwiss:
    """DarwinGame's regional playing style as a reusable format recipe.

    Args:
        players_per_game: seats per multi-player game (clamped to the pool).
        win_streak: consecutive wins after which the champion is declared.
        max_rounds: hard round cap; ``None`` derives one from the pool size.
        swiss_style: with ``False``, a single random game decides the pool
            (the paper's "w/o Swiss" ablation).
    """

    def __init__(
        self,
        *,
        players_per_game: int,
        win_streak: int,
        max_rounds: Optional[int] = None,
        swiss_style: bool = True,
    ) -> None:
        if players_per_game < 2:
            raise ReproError(
                f"players_per_game must be >= 2, got {players_per_game}"
            )
        if win_streak < 2:
            raise ReproError(f"win_streak must be >= 2, got {win_streak}")
        self.players_per_game = players_per_game
        self.win_streak = win_streak
        self.max_rounds = max_rounds
        self.swiss_style = swiss_style

    def schedule(
        self,
        pool: PlayerPool,
        rng: np.random.Generator,
        *,
        scores: Callable[[Sequence[int]], np.ndarray],
        on_assign: Optional[Callable[[int], None]] = None,
    ) -> StreakSwissRun:
        return StreakSwissRun(
            self, pool, rng, scores=scores, on_assign=on_assign
        )
