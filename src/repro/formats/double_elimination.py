"""Double elimination: a loss sends you to the loser bracket, not home.

Players must lose twice to be eliminated: the first loss moves them from
the main (winners) bracket to the loser bracket, where they keep playing;
the loser-bracket survivor meets the main-bracket winner in the grand
final.  This is the format of DarwinGame's global phase (Sec. 3.4) — a
promising configuration is not knocked out by "one bad day".

Two schedulers share the idea:

* :class:`DoubleElimination` — the textbook pairwise two-bracket knockout
  with a (resettable) grand final.
* :class:`GroupedDoubleElimination` — the paper's multi-player variant: each
  round deals the main bracket into groups (mixed across source regions for
  diversity), one game per group; group winners stay, everyone else drops
  to the loser pool, and once the main bracket holds the target number of
  players the best of the loser pool play one game for a wild-card entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.formats.match import MatchOracle, RecordedMatch
from repro.formats.scheduler import (
    Match,
    Round,
    RunLog,
    pair_off,
    run_schedule,
    validated_players,
)


@dataclass(frozen=True)
class DoubleEliminationResult:
    """Winner plus the bracket history of a double-elimination run."""

    winner: int
    runner_up: int
    games: int
    main_rounds: Tuple[Tuple[int, ...], ...]    # main-bracket entrants per round
    loser_rounds: Tuple[Tuple[int, ...], ...]   # loser-bracket entrants per round
    grand_final_needed_reset: bool


class DoubleEliminationRun:
    """State machine of the two-bracket knockout.

    In the grand final the main-bracket champion has never lost; if the
    loser-bracket champion beats them, both have one loss and a deciding
    rematch ("bracket reset") settles it — the textbook rule, kept so that
    nobody is eliminated with fewer than two losses.
    """

    _STAGE_BRACKETS = "brackets"
    _STAGE_GRAND_FINAL = "grand_final"
    _STAGE_RESET = "reset"
    _STAGE_DONE = "done"

    def __init__(self, players: Sequence[int]) -> None:
        self.main: List[int] = validated_players(
            players, minimum=2, what="double elimination"
        )
        self.losers: List[int] = []
        self.log = RunLog()
        self._main_rounds: List[Tuple[int, ...]] = []
        self._loser_rounds: List[Tuple[int, ...]] = []
        self._stage = self._STAGE_BRACKETS
        self._pending: Optional[str] = None  # which bracket the open round is
        self._turn = "main"  # brackets strictly alternate: main, loser, ...
        self._pending_bye: Optional[int] = None
        self._reset = False
        self._winner = -1
        self._runner_up = -1
        self._last_loser = -1

    @property
    def done(self) -> bool:
        return self._stage == self._STAGE_DONE

    @property
    def in_brackets(self) -> bool:
        """True while bracket rounds remain (the grand final not yet due)."""
        return self._stage == self._STAGE_BRACKETS and not self._brackets_settled()

    def _brackets_settled(self) -> bool:
        return len(self.main) <= 1 and len(self.losers) <= 1

    @property
    def finalists(self) -> Tuple[int, int]:
        """Main-bracket champion and loser-bracket champion (once settled)."""
        if not self._brackets_settled():
            raise ReproError("brackets are still being played")
        if not self.losers:
            raise ReproError("degenerate field: no loser-bracket champion")
        return self.main[0], self.losers[0]

    def pairings(self) -> Optional[Round]:
        if self._stage == self._STAGE_BRACKETS:
            # Brackets strictly alternate — a main round (when two or more
            # remain), then a loser round (ditto).  Two idle turns in a row
            # mean both brackets have settled and the grand final is due.
            for _ in range(2):
                if self._turn == "main":
                    self._turn = "loser"
                    if len(self.main) > 1:
                        self._pending = "main"
                        self._main_rounds.append(tuple(self.main))
                        return self._bracket_round(self.main)
                else:
                    self._turn = "main"
                    if len(self.losers) > 1:
                        self._pending = "loser"
                        self._loser_rounds.append(tuple(self.losers))
                        return self._bracket_round(self.losers)
            return self._grand_final_round()
        if self._stage in (self._STAGE_GRAND_FINAL, self._STAGE_RESET):
            return Round(matches=(Match((self.main[0], self.losers[0])),))
        return None

    def _bracket_round(self, bracket: List[int]) -> Round:
        pairs, bye = pair_off(bracket)
        self._pending_bye = bye
        return Round(
            matches=tuple(Match(pair) for pair in pairs),
            byes=(bye,) if bye is not None else (),
        )

    def _grand_final_round(self) -> Optional[Round]:
        if not self.losers:
            # Degenerate: the single loss already decided it (unreachable
            # for n >= 2 fields, kept as a safeguard).
            self._winner = self.main[0]
            self._runner_up = self._last_loser
            self._stage = self._STAGE_DONE
            return None
        self._stage = self._STAGE_GRAND_FINAL
        return self.pairings()

    def advance(self, results: Sequence[RecordedMatch]) -> None:
        self.log.book(results)
        if self._pending == "main" or self._pending == "loser":
            survivors: List[int] = []
            if self._pending_bye is not None:
                survivors.append(self._pending_bye)
                self._pending_bye = None
            dropped: List[int] = []
            for match in results:
                survivors.append(match.winner)
                dropped.append(match.loser)
                self._last_loser = match.loser
            if self._pending == "main":
                self.main = survivors
                self.losers.extend(dropped)
            else:
                self.losers = survivors  # second loss: eliminated outright
            self._pending = None
            return

        (final,) = results
        main_champion, loser_champion = self.main[0], self.losers[0]
        if self._stage == self._STAGE_GRAND_FINAL and final.winner == loser_champion:
            # Main champion's first loss: the bracket resets to a rematch.
            self._reset = True
            self._stage = self._STAGE_RESET
            return
        self._winner = final.winner
        self._runner_up = (
            loser_champion if final.winner == main_champion else main_champion
        )
        self._stage = self._STAGE_DONE

    def result(self) -> DoubleEliminationResult:
        if not self.done:
            # Driving to termination always lands on DONE (the no-loser
            # degenerate settles inside _grand_final_round); anything else
            # is a half-played bracket, not a result.
            raise ReproError("double elimination is still being played")
        return DoubleEliminationResult(
            winner=self._winner,
            runner_up=self._runner_up,
            games=self.log.games,
            main_rounds=tuple(self._main_rounds),
            loser_rounds=tuple(self._loser_rounds),
            grand_final_needed_reset=self._reset,
        )


class DoubleElimination:
    """The stateless format recipe; ``schedule`` opens one bracket run."""

    def schedule(self, players: Sequence[int]) -> DoubleEliminationRun:
        return DoubleEliminationRun(players)

    def run(
        self, players: Sequence[int], oracle: MatchOracle
    ) -> DoubleEliminationResult:
        """Play a whole double-elimination bracket through a match oracle."""
        return run_schedule(self.schedule(players), oracle).result()


@dataclass(frozen=True)
class GroupedDoubleEliminationResult:
    """Outcome of a grouped double-elimination run (DarwinGame global phase)."""

    main_bracket: Tuple[int, ...]
    wildcard: int  # -1 when the loser pool (and thus the wild card) is off
    rounds: int
    games: int
    loser_bracket_size: int


def form_groups(
    players: Sequence[int],
    n_games: int,
    rng: np.random.Generator,
    *,
    group_key: Callable[[int], int],
) -> List[List[int]]:
    """Deal players into groups, spreading ``group_key`` values across groups.

    Sorting by key (source region) and dealing round-robin guarantees that
    two players with the same key land in the same group only when there
    are more of them than groups — the paper's diversity requirement.  A
    random rotation keeps the deal unbiased by key numbering.
    """
    ordered = sorted(players, key=lambda p: (group_key(p), p))
    offset = int(rng.integers(0, len(ordered))) if len(ordered) > 1 else 0
    ordered = ordered[offset:] + ordered[:offset]
    groups: List[List[int]] = [[] for _ in range(n_games)]
    for pos, player in enumerate(ordered):
        groups[pos % n_games].append(player)
    return [g for g in groups if g]


class GroupedDoubleEliminationRun:
    """State machine of the multi-player grouped double elimination.

    Group winners are decided by the *executor* (DarwinGame judges by the
    joint execution/consistency rank criterion, Fig. 7) and arrive here as
    each match's ``ranking[0]``; the scheduler owns only who meets whom.
    """

    _STAGE_GROUPS = "groups"
    _STAGE_WILDCARD = "wildcard"
    _STAGE_DONE = "done"

    def __init__(
        self,
        format_: "GroupedDoubleElimination",
        entrants: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        self.main: List[int] = list(dict.fromkeys(int(p) for p in entrants))
        if not self.main:
            raise ReproError("grouped double elimination needs at least one entrant")
        self.rng = rng
        self.target = format_.target
        self.players_per_game = format_.players_per_game
        self.double_elimination = format_.double_elimination
        self.group_key = format_.group_key
        self.seed_order = format_.seed_order
        self.losers: List[int] = []
        self.wildcard = -1
        self.rounds = 0
        self.games = 0
        self._stage = self._STAGE_GROUPS
        self._groups: Optional[List[List[int]]] = None
        self._wildcard_pending = False

    @property
    def done(self) -> bool:
        return self._stage == self._STAGE_DONE

    @property
    def stage(self) -> str:
        """Current stage: ``"groups"``, ``"wildcard"``, or ``"done"``."""
        return self._stage

    def pairings(self) -> Optional[Round]:
        if self._stage == self._STAGE_GROUPS:
            if len(self.main) <= self.target:
                return self._open_wildcard()
            # Aim for at least `target` winners per round (so the bracket
            # shrinks gradually) while never exceeding the per-game player
            # cap; single-player groups are byes.
            n_games = max(
                math.ceil(len(self.main) / self.players_per_game),
                min(self.target, len(self.main) // 2),
                1,
            )
            self._groups = form_groups(
                self.main, n_games, self.rng, group_key=self.group_key
            )
            return Round(
                matches=tuple(
                    Match(tuple(g)) for g in self._groups if len(g) > 1
                ),
                byes=tuple(g[0] for g in self._groups if len(g) == 1),
            )
        if self._stage == self._STAGE_WILDCARD and self._wildcard_pending:
            unique = list(dict.fromkeys(self.losers))
            order = self.seed_order(unique)
            lineup = tuple(unique[int(p)] for p in order[: self.players_per_game])
            return Round(matches=(Match(lineup),))
        return None

    def _open_wildcard(self) -> Optional[Round]:
        self._stage = self._STAGE_WILDCARD
        if self.double_elimination and self.losers:
            unique = list(dict.fromkeys(self.losers))
            # Faithful to the original accounting: the loser-pool game is
            # billed whenever more than one loser exists, and skipped (the
            # lone loser advances) otherwise.
            if len(unique) == 1:
                self.wildcard = unique[0]
                self.games += 1 if len(self.losers) > 1 else 0
                self._stage = self._STAGE_DONE
                return None
            self._wildcard_pending = True
            return self.pairings()
        if not self.double_elimination:
            self.losers = []  # losers were eliminated outright
        self._stage = self._STAGE_DONE
        return None

    def advance(self, results: Sequence[RecordedMatch]) -> None:
        if self._stage == self._STAGE_GROUPS:
            assert self._groups is not None
            matches = iter(results)
            round_winners: List[int] = []
            for group in self._groups:
                if len(group) == 1:
                    round_winners.extend(group)  # bye
                    continue
                match = next(matches)
                self.games += 1
                winner = match.winner
                round_winners.append(winner)
                for player in group:
                    if player != winner:
                        self.losers.append(player)
            self._groups = None
            self.rounds += 1
            if len(round_winners) >= len(self.main):
                # No reduction possible (all byes): settle with what we have.
                self._open_wildcard()
                return
            self.main = round_winners
            return
        # The wild-card game.
        (match,) = results
        self.games += 1
        self.wildcard = match.winner
        self._wildcard_pending = False
        self._stage = self._STAGE_DONE

    def result(self) -> GroupedDoubleEliminationResult:
        return GroupedDoubleEliminationResult(
            main_bracket=tuple(self.main),
            wildcard=self.wildcard,
            rounds=self.rounds,
            games=self.games,
            loser_bracket_size=len(set(self.losers)),
        )


class GroupedDoubleElimination:
    """DarwinGame's global-phase shape as a reusable format recipe.

    Args:
        players_per_game: seats per group game.
        target: stop once the main bracket holds this many players.
        double_elimination: with ``False`` there is no loser pool and no
            wild card (the paper's "w/o double eli." ablation).
        group_key: maps a player id to its diversity key (source region);
            players sharing a key are spread across groups.
        seed_order: ranks a list of players (best first, returning positions
            into the list) — used to seat the best losers in the wild-card
            game.  Defaults to entry order.
    """

    def __init__(
        self,
        *,
        players_per_game: int,
        target: int,
        double_elimination: bool = True,
        group_key: Optional[Callable[[int], int]] = None,
        seed_order: Optional[Callable[[Sequence[int]], Sequence[int]]] = None,
    ) -> None:
        if players_per_game < 2:
            raise ReproError(
                f"players_per_game must be >= 2, got {players_per_game}"
            )
        if target < 1:
            raise ReproError(f"target must be >= 1, got {target}")
        self.players_per_game = players_per_game
        self.target = target
        self.double_elimination = double_elimination
        self.group_key = group_key if group_key is not None else (lambda p: 0)
        self.seed_order = (
            seed_order if seed_order is not None
            else (lambda players: list(range(len(players))))
        )

    def schedule(
        self, entrants: Sequence[int], rng: np.random.Generator
    ) -> GroupedDoubleEliminationRun:
        return GroupedDoubleEliminationRun(self, entrants, rng)

    def run(
        self,
        entrants: Sequence[int],
        rng: np.random.Generator,
        oracle: MatchOracle,
    ) -> GroupedDoubleEliminationResult:
        """Play a whole grouped bracket through a match oracle."""
        return run_schedule(self.schedule(entrants, rng), oracle).result()
