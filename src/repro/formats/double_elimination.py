"""Double elimination: a loss sends you to the loser bracket, not home.

Players must lose twice to be eliminated: the first loss moves them from
the main (winners) bracket to the loser bracket, where they keep playing;
the loser-bracket survivor meets the main-bracket winner in the grand
final.  This is the format of DarwinGame's global phase (Sec. 3.4) — a
promising configuration is not knocked out by "one bad day".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ReproError
from repro.formats.match import MatchOracle


@dataclass(frozen=True)
class DoubleEliminationResult:
    """Winner plus the bracket history of a double-elimination run."""

    winner: int
    runner_up: int
    games: int
    main_rounds: Tuple[Tuple[int, ...], ...]    # main-bracket entrants per round
    loser_rounds: Tuple[Tuple[int, ...], ...]   # loser-bracket entrants per round
    grand_final_needed_reset: bool


class DoubleElimination:
    """Standard two-bracket knockout with a (resettable) grand final.

    In the grand final the main-bracket champion has never lost; if the
    loser-bracket champion beats them, both have one loss and a deciding
    rematch ("bracket reset") settles it — the textbook rule, kept so that
    nobody is eliminated with fewer than two losses.
    """

    def run(
        self, players: Sequence[int], oracle: MatchOracle
    ) -> DoubleEliminationResult:
        main = [int(p) for p in players]
        if len(main) < 2:
            raise ReproError("double elimination needs at least two players")
        if len(set(main)) != len(main):
            raise ReproError(f"duplicate players: {main}")

        losers: List[int] = []
        main_rounds: List[Tuple[int, ...]] = []
        loser_rounds: List[Tuple[int, ...]] = []
        games = 0

        while len(main) > 1 or len(losers) > 1:
            if len(main) > 1:
                main_rounds.append(tuple(main))
                main, dropped = self._play_round(main, oracle)
                games += len(dropped)
                losers.extend(dropped)
            if len(losers) > 1:
                loser_rounds.append(tuple(losers))
                losers, eliminated = self._play_round(losers, oracle)
                games += len(eliminated)

        main_champion = main[0]
        if not losers:
            # Degenerate two-player field: the single loss decides it.
            return DoubleEliminationResult(
                winner=main_champion,
                runner_up=oracle.history[-1].loser if oracle.history else -1,
                games=games,
                main_rounds=tuple(main_rounds),
                loser_rounds=tuple(loser_rounds),
                grand_final_needed_reset=False,
            )

        loser_champion = losers[0]
        final = oracle.play([main_champion, loser_champion])
        games += 1
        reset = False
        if final.winner == loser_champion:
            # Main champion's first loss: the bracket resets to a rematch.
            reset = True
            final = oracle.play([main_champion, loser_champion])
            games += 1
        winner = final.winner
        runner_up = loser_champion if winner == main_champion else main_champion
        return DoubleEliminationResult(
            winner=winner,
            runner_up=runner_up,
            games=games,
            main_rounds=tuple(main_rounds),
            loser_rounds=tuple(loser_rounds),
            grand_final_needed_reset=reset,
        )

    @staticmethod
    def _play_round(
        bracket: List[int], oracle: MatchOracle
    ) -> Tuple[List[int], List[int]]:
        """Pair off a bracket; returns (survivors, losers); odd player byes."""
        survivors: List[int] = []
        dropped: List[int] = []
        if len(bracket) % 2 == 1:
            survivors.append(bracket[-1])
        for k in range(0, len(bracket) - len(bracket) % 2, 2):
            match = oracle.play([bracket[k], bracket[k + 1]])
            survivors.append(match.winner)
            dropped.append(match.loser)
        return survivors, dropped
