"""Named tournament formats: recipes composing phase schedulers.

The paper's DarwinGame is one point in a design space the tournament
literature spans: Swiss screening, a double-elimination global bracket,
barrage playoffs.  A :class:`TournamentRecipe` names a point in that space
— which playing styles the regional/global phases use and which scheduler
decides the playoffs — and the registry makes ``format`` a first-class,
sweepable axis: the same :class:`~repro.core.tournament.DarwinGame` engine
runs every recipe, so formats can be compared per scenario pack with
nothing but ``--formats`` on a sweep.

The ``darwin`` recipe is the paper's Alg. 1 and the default everywhere;
campaign IDs only include the format when it deviates, so existing stores
keep resuming under their original IDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ReproError

#: Playoff scheduler names a recipe may select (resolved by the playoff
#: phase adapter in :mod:`repro.core.barrage`).
PLAYOFF_FORMATS = (
    "barrage",
    "single_elimination",
    "double_elimination",
    "round_robin",
)


@dataclass(frozen=True)
class TournamentRecipe:
    """One named composition of phase formats.

    Attributes:
        name: registry key (the sweepable ``format`` value).
        swiss_regional: regional pools play Swiss-style streak rounds
            (``False``: one random game per region decides it).
        double_elimination_global: the global phase keeps a loser pool and
            grants a wild card (``False``: losses eliminate outright).
        playoffs: which scheduler produces the two finalists
            (:data:`PLAYOFF_FORMATS`).
        description: one-line summary for ``--help`` and reports.
    """

    name: str
    description: str
    swiss_regional: bool = True
    double_elimination_global: bool = True
    playoffs: str = "barrage"

    def __post_init__(self) -> None:
        if self.playoffs not in PLAYOFF_FORMATS:
            raise ReproError(
                f"unknown playoff format {self.playoffs!r}; "
                f"available: {list(PLAYOFF_FORMATS)}"
            )


_REGISTRY: Dict[str, TournamentRecipe] = {}


def register_tournament_format(recipe: TournamentRecipe) -> TournamentRecipe:
    """Add a recipe to the registry (name collisions are an error)."""
    if recipe.name in _REGISTRY:
        raise ReproError(f"tournament format {recipe.name!r} already registered")
    _REGISTRY[recipe.name] = recipe
    return recipe


def tournament_format(name: str) -> TournamentRecipe:
    """Look up a registered recipe by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown tournament format {name!r}; "
            f"registered: {tournament_format_names()}"
        ) from None


def tournament_format_names() -> Tuple[str, ...]:
    """Registered recipe names, registration order (``darwin`` first)."""
    return tuple(_REGISTRY)


DEFAULT_FORMAT = "darwin"

register_tournament_format(TournamentRecipe(
    name="darwin",
    description="the paper's Alg. 1: Swiss -> double elimination -> barrage",
))
register_tournament_format(TournamentRecipe(
    name="knockout",
    description="single-elimination playoffs: cheap but fragile at the top",
    playoffs="single_elimination",
))
register_tournament_format(TournamentRecipe(
    name="double_elim_playoffs",
    description="double-elimination playoffs: every finalist earned twice",
    playoffs="double_elimination",
))
register_tournament_format(TournamentRecipe(
    name="round_robin_playoffs",
    description="round-robin playoffs: the accuracy ceiling, at O(n^2) games",
    playoffs="round_robin",
))
register_tournament_format(TournamentRecipe(
    name="single_elim",
    description="no loser bracket, knockout playoffs: the cheapest tournament",
    double_elimination_global=False,
    playoffs="single_elimination",
))

#: The registered names, importable as a constant for CLI choices.
TOURNAMENT_FORMAT_NAMES = tournament_format_names()
