"""The scheduler half of the tournament engine's scheduler/executor split.

A *format* (Swiss, double elimination, barrage, ...) is pure scheduling
logic: given what has happened so far, which groups of players should meet
next?  A format object is a stateless recipe; calling :meth:`~Format.
schedule` opens a :class:`ScheduledRun` — an incremental state machine that
emits one :class:`Round` of :class:`Match` es at a time and ingests the
outcomes as :class:`~repro.formats.match.RecordedMatch` es:

    run = SwissSystem(rounds=3).schedule(players)
    while (round_ := run.pairings()) is not None:
        results = [play(match.players) for match in round_.matches]
        run.advance(results)
    result = run.result()

Crucially the state machine never plays a game itself — *who wins* is the
executor's business.  Two executors drive the same schedulers today:

* :func:`run_schedule` plays matches through a
  :class:`~repro.formats.match.MatchOracle` (the tournament-design-literature
  setting used by :mod:`repro.experiments.format_power`), and
* :class:`repro.core.executor.MatchExecutor` plays them as co-located cloud
  games through the batched ``(games, segments, players)`` tensor path,
  which is how the real DarwinGame tuner runs these exact schedulers.

All matches of one :class:`Round` are independent — no player appears twice
in a round — so an executor may run them on parallel VMs and advance the
simulated clock by the round's longest game.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.formats.match import MatchOracle, RecordedMatch


@dataclass(frozen=True)
class Match:
    """One scheduled game: the lineup the format wants to see meet."""

    players: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.players) < 2:
            raise ReproError(f"a match needs at least two players: {self.players}")
        if len(set(self.players)) != len(self.players):
            raise ReproError(f"duplicate players in match: {self.players}")


@dataclass(frozen=True)
class Round:
    """One batch of independent matches, playable on parallel VMs.

    ``byes`` lists players who sit this round out but advance anyway; they
    are informational (the state machine already accounts for them) so that
    executors and tests can audit the schedule.
    """

    matches: Tuple[Match, ...]
    byes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        seen: set = set()
        for match in self.matches:
            for player in match.players:
                if player in seen:
                    raise ReproError(
                        f"player {player} scheduled twice in one round"
                    )
                seen.add(player)

    @property
    def lineups(self) -> List[List[int]]:
        """The round as plain lineups (what batched executors consume)."""
        return [list(m.players) for m in self.matches]


class ScheduledRun(Protocol):
    """Incremental state machine of one tournament under some format.

    ``pairings`` returns the next :class:`Round` (or ``None`` once the
    format has terminated); ``advance`` books one result per match of that
    round, in match order.  ``result()`` is format-specific.
    """

    def pairings(self) -> Optional[Round]:
        ...  # pragma: no cover - protocol

    def advance(self, results: Sequence[RecordedMatch]) -> None:
        ...  # pragma: no cover - protocol

    @property
    def done(self) -> bool:
        ...  # pragma: no cover - protocol


class PlayerPool(Protocol):
    """A drawable population of player ids (regions satisfy this natively).

    ``start`` is the lowest id in the pool — only consulted for the
    degenerate single-player pool, where no game can be scheduled.
    """

    size: int
    start: int

    def sample(
        self, n: int, rng: np.random.Generator, replace: bool = True
    ) -> np.ndarray:
        ...  # pragma: no cover - protocol


@dataclass
class RunLog:
    """Shared bookkeeping every state machine keeps: games and rounds.

    Deliberately just counters — per-match history lives with the caller
    (oracles keep their own; the cloud executor books the RecordBook).
    """

    games: int = 0
    rounds: int = 0

    def book(self, results: Sequence[RecordedMatch]) -> None:
        self.games += len(results)
        self.rounds += 1


def run_schedule(run: ScheduledRun, oracle: MatchOracle):
    """Drive a scheduled run to termination with a match oracle.

    Matches are played sequentially in round order, then match order — the
    deterministic reference execution that
    :mod:`repro.experiments.format_power` charges formats by.  Returns
    ``run`` (terminated) for fluent use.
    """
    while True:
        round_ = run.pairings()
        if round_ is None:
            return run
        run.advance([oracle.play(match.players) for match in round_.matches])


def validated_players(players: Sequence[int], *, minimum: int, what: str) -> List[int]:
    """Common entry validation: ints, no duplicates, minimum field size."""
    ids = [int(p) for p in players]
    if len(ids) < minimum:
        raise ReproError(
            f"{what} needs at least {minimum} player(s), got {len(ids)}"
        )
    if len(set(ids)) != len(ids):
        raise ReproError(f"duplicate players: {ids}")
    return ids


def pair_off(bracket: Sequence[int]) -> Tuple[List[Tuple[int, int]], Optional[int]]:
    """Adjacent pairs of a bracket; the odd player out (last) is the bye."""
    pairs = [
        (bracket[k], bracket[k + 1])
        for k in range(0, len(bracket) - len(bracket) % 2, 2)
    ]
    bye = bracket[-1] if len(bracket) % 2 == 1 else None
    return pairs, bye
