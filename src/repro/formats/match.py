"""Match oracles: how a game between abstract players is decided.

A format scheduler (Swiss, double elimination, ...) only needs a callable
that, given a group of player ids, returns their finishing order.  The
oracle abstracts *why* one player beats another; the provided
:class:`NoisyStrengthOracle` reproduces the setting of the tournament-design
literature the paper cites (players have latent strengths, games observe
them through noise), which is also exactly DarwinGame's situation: a game's
execution scores are the players' latent speeds seen through interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class RecordedMatch:
    """One decided game: the players and their finishing order.

    ``ranking`` holds positions into ``players`` from best to worst, so
    ``players[ranking[0]]`` is the winner.
    """

    players: Tuple[int, ...]
    ranking: Tuple[int, ...]

    def __post_init__(self) -> None:
        if sorted(self.ranking) != list(range(len(self.players))):
            raise ReproError(
                f"ranking {self.ranking} is not a permutation of the "
                f"{len(self.players)} player positions"
            )

    @property
    def winner(self) -> int:
        """Player id of the game's winner."""
        return self.players[self.ranking[0]]

    @property
    def loser(self) -> int:
        """Player id of the game's last finisher."""
        return self.players[self.ranking[-1]]

    def beaten_by_winner(self) -> Tuple[int, ...]:
        """Everyone the winner finished ahead of."""
        return tuple(self.players[p] for p in self.ranking[1:])


class MatchOracle(Protocol):
    """Decides the outcome of one game among player ids."""

    def play(self, players: Sequence[int]) -> RecordedMatch:
        """Play one game and return the finishing order."""
        ...  # pragma: no cover - protocol


class NoisyStrengthOracle:
    """Players with latent strengths, observed through zero-mean noise.

    A game among players ``p_1..p_k`` observes ``strength[p] + eps`` with
    ``eps ~ N(0, noise_std)`` drawn independently per player per game, and
    ranks players by the observed value (higher is better).  With
    ``noise_std = 0`` the oracle is deterministic.

    The ``games_played`` counter and ``history`` list allow studies to
    charge formats for the games they schedule.
    """

    def __init__(
        self,
        strengths: Sequence[float],
        noise_std: float,
        seed: SeedLike = 0,
    ) -> None:
        if noise_std < 0:
            raise ReproError(f"noise_std must be >= 0, got {noise_std}")
        if len(strengths) == 0:
            raise ReproError("need at least one player strength")
        self.strengths = np.asarray(strengths, dtype=float)
        self.noise_std = float(noise_std)
        self._rng = ensure_rng(seed)
        self.games_played = 0
        self.history: List[RecordedMatch] = []

    @property
    def num_players(self) -> int:
        return len(self.strengths)

    @property
    def best_player(self) -> int:
        """The ground-truth strongest player id."""
        return int(np.argmax(self.strengths))

    def play(self, players: Sequence[int]) -> RecordedMatch:
        """Observe noisy strengths and rank the group (best first)."""
        ids = [int(p) for p in players]
        if len(ids) < 2:
            raise ReproError(f"a match needs at least two players, got {ids}")
        if len(set(ids)) != len(ids):
            raise ReproError(f"duplicate players in match: {ids}")
        observed = self.strengths[ids] + self._rng.normal(
            0.0, self.noise_std, size=len(ids)
        )
        ranking = tuple(int(i) for i in np.argsort(-observed, kind="stable"))
        match = RecordedMatch(players=tuple(ids), ranking=ranking)
        self.games_played += 1
        self.history.append(match)
        return match
