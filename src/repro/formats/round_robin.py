"""Round-robin: every player meets every other player.

The most expensive and (for enough repetitions) most accurate format; the
tournament-design literature uses it as the accuracy ceiling against which
cheaper formats are measured.  ``O(n^2)`` games for ``n`` players.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.formats.match import MatchOracle


@dataclass(frozen=True)
class RoundRobinResult:
    """Standings after a full round-robin."""

    standings: Tuple[int, ...]  # player ids, best first
    wins: Dict[int, int]
    games: int

    @property
    def winner(self) -> int:
        return self.standings[0]


class RoundRobin:
    """All-pairs schedule, standings by win count.

    Ties in win count break deterministically by head-to-head result where
    one exists, else by player id (stable and reproducible).
    """

    def __init__(self, rounds: int = 1) -> None:
        if rounds < 1:
            raise ReproError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds

    def run(self, players: Sequence[int], oracle: MatchOracle) -> RoundRobinResult:
        ids = [int(p) for p in players]
        if len(ids) < 2:
            raise ReproError("round-robin needs at least two players")
        if len(set(ids)) != len(ids):
            raise ReproError(f"duplicate players: {ids}")

        wins = {p: 0 for p in ids}
        head_to_head: Dict[Tuple[int, int], int] = {}
        games = 0
        for _ in range(self.rounds):
            for i, a in enumerate(ids):
                for b in ids[i + 1:]:
                    match = oracle.play([a, b])
                    wins[match.winner] += 1
                    head_to_head[(a, b)] = match.winner
                    games += 1

        def sort_key(p: int):
            return (-wins[p], p)

        standings: List[int] = sorted(ids, key=sort_key)
        # Adjacent single-round ties defer to head-to-head where available.
        if self.rounds == 1:
            for k in range(len(standings) - 1):
                a, b = standings[k], standings[k + 1]
                if wins[a] == wins[b]:
                    h2h = head_to_head.get((a, b), head_to_head.get((b, a)))
                    if h2h == b:
                        standings[k], standings[k + 1] = b, a
        return RoundRobinResult(
            standings=tuple(standings), wins=wins, games=games
        )
