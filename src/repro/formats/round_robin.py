"""Round-robin: every player meets every other player.

The most expensive and (for enough repetitions) most accurate format; the
tournament-design literature uses it as the accuracy ceiling against which
cheaper formats are measured.  ``O(n^2)`` games for ``n`` players.

The scheduler emits one pair per round, in the classic nested order — a
player meets every later entrant before the next player starts.  Pairs are
sequential rather than batched because nearly every player appears in
nearly every slice of the schedule; there is no larger set of simultaneous
games that would not double-book someone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.formats.match import MatchOracle
from repro.formats.scheduler import (
    Match,
    Round,
    RunLog,
    run_schedule,
    validated_players,
)


@dataclass(frozen=True)
class RoundRobinResult:
    """Standings after a full round-robin."""

    standings: Tuple[int, ...]  # player ids, best first
    wins: Dict[int, int]
    games: int

    @property
    def winner(self) -> int:
        return self.standings[0]


class RoundRobinRun:
    """State machine: all pairs, ``rounds`` times over."""

    def __init__(self, players: Sequence[int], repetitions: int) -> None:
        self.ids = validated_players(players, minimum=2, what="round-robin")
        self.wins: Dict[int, int] = {p: 0 for p in self.ids}
        self.head_to_head: Dict[Tuple[int, int], int] = {}
        self.log = RunLog()
        self.repetitions = repetitions
        self._pairs = [
            (a, b)
            for _ in range(repetitions)
            for i, a in enumerate(self.ids)
            for b in self.ids[i + 1:]
        ]
        self._cursor = 0

    @property
    def done(self) -> bool:
        return self._cursor >= len(self._pairs)

    def pairings(self) -> Optional[Round]:
        if self.done:
            return None
        return Round(matches=(Match(self._pairs[self._cursor]),))

    def advance(self, results) -> None:
        (match,) = results
        a, b = self._pairs[self._cursor]
        self.wins[match.winner] += 1
        self.head_to_head[(a, b)] = match.winner
        self._cursor += 1
        self.log.book(results)

    def result(self) -> RoundRobinResult:
        standings: List[int] = sorted(self.ids, key=lambda p: (-self.wins[p], p))
        # Adjacent single-round ties defer to head-to-head where available.
        if self.repetitions == 1:
            for k in range(len(standings) - 1):
                a, b = standings[k], standings[k + 1]
                if self.wins[a] == self.wins[b]:
                    h2h = self.head_to_head.get(
                        (a, b), self.head_to_head.get((b, a))
                    )
                    if h2h == b:
                        standings[k], standings[k + 1] = b, a
        return RoundRobinResult(
            standings=tuple(standings), wins=self.wins, games=self.log.games
        )


class RoundRobin:
    """All-pairs schedule, standings by win count.

    Ties in win count break deterministically by head-to-head result where
    one exists, else by player id (stable and reproducible).
    """

    def __init__(self, rounds: int = 1) -> None:
        if rounds < 1:
            raise ReproError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds

    def schedule(self, players: Sequence[int]) -> RoundRobinRun:
        return RoundRobinRun(players, self.rounds)

    def run(self, players: Sequence[int], oracle: MatchOracle) -> RoundRobinResult:
        """Play a whole round-robin through a match oracle."""
        return run_schedule(self.schedule(players), oracle).result()
