"""Barrage: the penultimate-round format of petanque tournaments (Sec. 3.5).

With four qualifiers seeded 1-4 by prior score:

* game 1 — seed 1 vs seed 2; the winner goes straight to the final;
* game 2 — seed 3 vs seed 4; the loser is eliminated;
* game 3 (the barrage) — loser of game 1 vs winner of game 2; the winner
  becomes the second finalist.

The loser of the top game gets one brief chance to recover, so "only the
strongest ... progress to the final round".  Generalises to larger fields
by pairing the top half among themselves and the bottom half among
themselves, then playing top-half losers against bottom-half winners; odd
halves hand their last seed a bye.  With ``repechage=False`` the barrage
games are skipped — a plain knockout where the bottom-half survivor simply
becomes the second finalist (the paper's "w/o barrage" ablation).

Games 1 and 2 (and generally all games of a barrage stage round) are
independent, so each :class:`Round` batches them for parallel execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.formats.match import MatchOracle
from repro.formats.scheduler import (
    Match,
    Round,
    RunLog,
    run_schedule,
    validated_players,
)


@dataclass(frozen=True)
class BarrageResult:
    """The two finalists of a barrage stage and the games it took."""

    finalists: Tuple[int, ...]
    eliminated: Tuple[int, ...]
    games: int


class BarrageRun:
    """State machine of one seeded barrage stage.

    ``players`` must be ordered by seeding (best first).  For two players,
    both are finalists and no game is played (the final itself decides).
    """

    _STAGE_HALVES = "halves"
    _STAGE_BARRAGE = "barrage"
    _STAGE_REDUCE_SECOND = "reduce_second"
    _STAGE_REDUCE_FIRST = "reduce_first"
    _STAGE_DONE = "done"

    def __init__(self, players: Sequence[int], repechage: bool) -> None:
        self.seeds = validated_players(players, minimum=2, what="barrage")
        self.repechage = repechage
        self.log = RunLog()
        self.eliminated: List[int] = []
        self.direct: List[int] = []         # final pool of the top half
        self.top_losers: List[int] = []
        self.bottom_winners: List[int] = []
        self._first: Optional[int] = None
        self._second: Optional[int] = None
        self._pool: List[int] = []
        self._reduce_byes: List[int] = []
        self._barrage_byes: List[int] = []
        if len(self.seeds) == 2:
            self._first, self._second = self.seeds
            self._stage = self._STAGE_DONE
        else:
            self._stage = self._STAGE_HALVES

    @property
    def done(self) -> bool:
        return self._stage == self._STAGE_DONE

    def pairings(self) -> Optional[Round]:
        if self._stage == self._STAGE_HALVES:
            # The top half plays for direct final spots, the bottom half
            # for barrage berths — all pairs independent, one round.  The
            # split is computed once here; advance() reads the stash.
            half = (len(self.seeds) + 1) // 2
            top, bottom = self.seeds[:half], self.seeds[half:]
            self._top_pairs = [
                (top[k], top[k + 1])
                for k in range(0, len(top) - len(top) % 2, 2)
            ]
            self._bottom_pairs = [
                (bottom[k], bottom[k + 1])
                for k in range(0, len(bottom) - len(bottom) % 2, 2)
            ]
            # Odd top seed drops to the barrage; odd bottom seed advances
            # into the barrage berths unplayed.
            self._top_bye = top[-1] if len(top) % 2 == 1 else None
            self._bottom_bye = bottom[-1] if len(bottom) % 2 == 1 else None
            byes = [b for b in (self._top_bye, self._bottom_bye)
                    if b is not None]
            return Round(
                matches=tuple(
                    Match(p) for p in self._top_pairs + self._bottom_pairs
                ),
                byes=tuple(byes),
            )
        if self._stage == self._STAGE_BARRAGE:
            # The barrage proper: top-half losers vs bottom-half winners.
            # Odd fields leave one berth unpaired; that player byes into
            # the survivor pool instead of silently dropping out.
            paired = min(len(self.top_losers), len(self.bottom_winners))
            self._barrage_byes = (
                self.top_losers[paired:] + self.bottom_winners[paired:]
            )
            return Round(
                matches=tuple(
                    Match((a, b))
                    for a, b in zip(self.top_losers, self.bottom_winners)
                ),
                byes=tuple(self._barrage_byes),
            )
        if self._stage in (self._STAGE_REDUCE_SECOND, self._STAGE_REDUCE_FIRST):
            pool = self._pool
            self._reduce_byes = [pool[-1]] if len(pool) % 2 == 1 else []
            return Round(
                matches=tuple(
                    Match((pool[k], pool[k + 1]))
                    for k in range(0, len(pool) - len(pool) % 2, 2)
                ),
                byes=tuple(self._reduce_byes),
            )
        return None

    def advance(self, results) -> None:
        self.log.book(results)
        if self._stage == self._STAGE_HALVES:
            matches = iter(results)
            for _ in self._top_pairs:
                match = next(matches)
                self.direct.append(match.winner)
                self.top_losers.append(match.loser)
            for _ in self._bottom_pairs:
                match = next(matches)
                self.bottom_winners.append(match.winner)
                self.eliminated.append(match.loser)
            if self._bottom_bye is not None:
                self.bottom_winners.append(self._bottom_bye)
            if self.repechage:
                # The odd top seed's bye drops them to the barrage games.
                if self._top_bye is not None:
                    self.top_losers.append(self._top_bye)
                self._stage = self._STAGE_BARRAGE
            else:
                # Plain knockout: no barrage games exist, so the top-half
                # *losers* are out, while an unplayed top bye advances into
                # the second-finalist pool (a bye never eliminates).
                self.eliminated.extend(self.top_losers)
                pool = self.bottom_winners + (
                    [self._top_bye] if self._top_bye is not None else []
                )
                self._begin_reduce(pool, self._STAGE_REDUCE_SECOND)
            return
        if self._stage == self._STAGE_BARRAGE:
            survivors: List[int] = []
            for match in results:
                survivors.append(match.winner)
                self.eliminated.append(match.loser)
            survivors.extend(self._barrage_byes)
            self._barrage_byes = []
            self._begin_reduce(survivors, self._STAGE_REDUCE_SECOND)
            return
        # Reduction rounds: knock a pool down to a single player.
        pool: List[int] = list(self._reduce_byes)
        for match in results:
            pool.append(match.winner)
            self.eliminated.append(match.loser)
        self._reduce_byes = []
        self._continue_reduce(pool)

    def _begin_reduce(self, pool: List[int], stage: str) -> None:
        self._stage = stage
        self._continue_reduce(pool)

    def _continue_reduce(self, pool: List[int]) -> None:
        # Legacy reduction order: byes first, then winners — preserved by
        # seeding `pool` with the bye before appending match winners.
        self._pool = pool
        if len(pool) > 1:
            return
        settled = pool[0] if pool else None
        if self._stage == self._STAGE_REDUCE_SECOND:
            self._second = settled
            self._begin_reduce(self.direct, self._STAGE_REDUCE_FIRST)
        else:
            self._first = settled
            self._stage = self._STAGE_DONE

    def result(self) -> BarrageResult:
        if not self.done:
            raise ReproError("barrage stage is still being played")
        finalists = tuple(
            p for p in (self._first, self._second) if p is not None
        )
        return BarrageResult(
            finalists=finalists,
            eliminated=tuple(self.eliminated),
            games=self.log.games,
        )


class Barrage:
    """Seeded barrage stage producing (up to) two finalists.

    Args:
        repechage: give the top-half losers their barrage second chance
            (the format's namesake); ``False`` degrades to a knockout.
    """

    def __init__(self, repechage: bool = True) -> None:
        self.repechage = repechage

    def schedule(self, players: Sequence[int]) -> BarrageRun:
        return BarrageRun(players, self.repechage)

    def run(self, players: Sequence[int], oracle: MatchOracle) -> BarrageResult:
        """Play a whole barrage stage through a match oracle."""
        return run_schedule(self.schedule(players), oracle).result()
