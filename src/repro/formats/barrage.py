"""Barrage: the penultimate-round format of petanque tournaments (Sec. 3.5).

With four qualifiers seeded 1-4 by prior score:

* game 1 — seed 1 vs seed 2; the winner goes straight to the final;
* game 2 — seed 3 vs seed 4; the loser is eliminated;
* game 3 (the barrage) — loser of game 1 vs winner of game 2; the winner
  becomes the second finalist.

The loser of the top game gets one brief chance to recover, so "only the
strongest ... progress to the final round".  Generalises to ``2k`` players
by pairing the top half among themselves and the bottom half among
themselves, then playing top-half losers against bottom-half winners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ReproError
from repro.formats.match import MatchOracle


@dataclass(frozen=True)
class BarrageResult:
    """The two finalists of a barrage stage and the games it took."""

    finalists: Tuple[int, ...]
    eliminated: Tuple[int, ...]
    games: int


class Barrage:
    """Seeded barrage stage producing exactly two finalists.

    ``players`` must be ordered by seeding (best first) and have even
    length >= 2.  For two players, both are finalists and no game is played
    (the final itself decides).
    """

    def run(self, players: Sequence[int], oracle: MatchOracle) -> BarrageResult:
        seeds = [int(p) for p in players]
        if len(seeds) < 2:
            raise ReproError("barrage needs at least two players")
        if len(seeds) % 2 != 0:
            raise ReproError(f"barrage needs an even field, got {len(seeds)}")
        if len(set(seeds)) != len(seeds):
            raise ReproError(f"duplicate players: {seeds}")
        if len(seeds) == 2:
            return BarrageResult(finalists=tuple(seeds), eliminated=(), games=0)

        half = len(seeds) // 2
        top, bottom = seeds[:half], seeds[half:]

        # Top half: winners go straight to the final pool; losers get the
        # barrage chance.
        direct: List[int] = []
        top_losers: List[int] = []
        games = 0
        for k in range(0, len(top) - len(top) % 2, 2):
            match = oracle.play([top[k], top[k + 1]])
            direct.append(match.winner)
            top_losers.append(match.loser)
            games += 1
        if len(top) % 2 == 1:
            top_losers.append(top[-1])

        # Bottom half: losers are out; winners earn the barrage games.
        bottom_winners: List[int] = []
        eliminated: List[int] = []
        for k in range(0, len(bottom) - len(bottom) % 2, 2):
            match = oracle.play([bottom[k], bottom[k + 1]])
            bottom_winners.append(match.winner)
            eliminated.append(match.loser)
            games += 1
        if len(bottom) % 2 == 1:
            bottom_winners.append(bottom[-1])

        # The barrage proper: top-half losers vs bottom-half winners.
        barrage_survivors: List[int] = []
        for a, b in zip(top_losers, bottom_winners):
            match = oracle.play([a, b])
            barrage_survivors.append(match.winner)
            eliminated.append(match.loser)
            games += 1

        # Reduce the survivor pool to exactly one second finalist.
        pool = barrage_survivors
        while len(pool) > 1:
            nxt: List[int] = []
            if len(pool) % 2 == 1:
                nxt.append(pool[-1])
            for k in range(0, len(pool) - len(pool) % 2, 2):
                match = oracle.play([pool[k], pool[k + 1]])
                nxt.append(match.winner)
                eliminated.append(match.loser)
                games += 1
            pool = nxt
        second = pool[0]

        # Same for the direct qualifiers if the field was larger than four.
        pool = direct
        while len(pool) > 1:
            nxt = []
            if len(pool) % 2 == 1:
                nxt.append(pool[-1])
            for k in range(0, len(pool) - len(pool) % 2, 2):
                match = oracle.play([pool[k], pool[k + 1]])
                nxt.append(match.winner)
                eliminated.append(match.loser)
                games += 1
            pool = nxt
        first = pool[0]

        return BarrageResult(
            finalists=(first, second),
            eliminated=tuple(eliminated),
            games=games,
        )
