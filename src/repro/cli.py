"""Command-line interface for the DarwinGame reproduction.

Subcommands::

    python -m repro tune --app redis --scale bench --seed 7
    python -m repro compare --app lammps --strategies DarwinGame,BLISS
    python -m repro experiment --name fig10 --scale test
    python -m repro table1

The CLI is a thin layer over the library; anything it prints can be
recomputed programmatically through :mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps.registry import APPLICATION_NAMES, make_application
from repro.cloud.vm import PRESETS
from repro.experiments import (
    STRATEGY_NAMES,
    render_table,
    run_format_power,
    run_headline,
    run_sensitivity,
    run_shift_study,
    run_stability,
    run_statistical_comparison,
    run_strategy,
    run_table1,
    run_vm_sweep,
)
from repro.experiments.format_power import FORMAT_NAMES

_EXPERIMENTS = (
    "fig10", "fig11", "fig12", "fig15", "stability", "sensitivity",
    "formats", "shift", "statistical",
)
#: Extra strategies selectable via ``tune``/``compare`` beyond the Fig. 10 set.
_EXTRA_STRATEGIES = (
    "QuantileRegression",
    "ThompsonSampling",
    "GeneticAlgorithm",
    "SimulatedAnnealing",
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--app", default="redis", choices=APPLICATION_NAMES, help="application to tune"
    )
    parser.add_argument("--scale", default="bench", help="space scale preset")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--vm", default="m5.8xlarge", choices=sorted(PRESETS), help="instance type"
    )


def _cmd_tune(args: argparse.Namespace) -> int:
    app = make_application(args.app, scale=args.scale)
    run = run_strategy(
        app, args.strategy, vm=PRESETS[args.vm], seed=args.seed
    )
    print(render_table(
        ["metric", "value"],
        [
            ("application", app.name),
            ("search space", app.space.size),
            ("strategy", run.strategy),
            ("chosen index", run.best_index),
            ("mean cloud exec time (s)", run.mean_time),
            ("CoV %", run.cov_percent),
            ("tuning core-hours", run.core_hours),
        ],
        title=f"{run.strategy} on {app.name} ({args.vm})",
    ))
    print("\nChosen configuration:")
    for knob, value in app.space.config_dict(run.best_index).items():
        print(f"  {knob} = {value}")
    if args.save:
        from repro.experiments.persistence import save_campaign
        from repro.types import TuningResult

        # Persist what the CLI knows: the choice, its quality, the cost.
        result = TuningResult(
            tuner_name=run.strategy,
            best_index=run.best_index,
            best_values=app.space.values_of(run.best_index),
            evaluations=0,
            core_hours=run.core_hours,
            tuning_seconds=run.tuning_seconds,
        )
        path = save_campaign(
            result, run.evaluation, args.save,
            app_name=app.name, vm_name=args.vm,
            notes=f"scale={args.scale} seed={args.seed}",
        )
        print(f"\nCampaign archived to {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.persistence import load_campaign

    result, evaluation, meta = load_campaign(args.path)
    rows = [
        ("application", meta.get("app", "?")),
        ("VM", meta.get("vm", "?")),
        ("strategy", result.tuner_name),
        ("chosen index", result.best_index),
        ("tuning core-hours", result.core_hours),
    ]
    if evaluation is not None:
        rows.extend([
            ("mean cloud exec time (s)", evaluation.mean_time),
            ("CoV %", evaluation.cov_percent),
        ])
    if meta.get("notes"):
        rows.append(("notes", meta["notes"]))
    print(render_table(["metric", "value"], rows, title=f"Campaign {args.path}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    strategies = tuple(s.strip() for s in args.strategies.split(","))
    known = tuple(STRATEGY_NAMES) + _EXTRA_STRATEGIES
    unknown = [s for s in strategies if s not in known]
    if unknown:
        print(f"unknown strategies: {unknown}; available: {list(known)}")
        return 2
    app = make_application(args.app, scale=args.scale)
    rows = []
    for strategy in strategies:
        run = run_strategy(app, strategy, vm=PRESETS[args.vm], seed=args.seed)
        rows.append((strategy, run.mean_time, run.cov_percent, run.core_hours))
    print(render_table(
        ["strategy", "exec time (s)", "CoV %", "core-hours"],
        rows,
        title=f"Comparison on {app.name} (scale={args.scale}, seed={args.seed})",
    ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name in ("fig10", "fig11", "fig12"):
        result = run_headline(scale=args.scale, repeats=args.repeats, seed=args.seed)
        metric = {
            "fig10": ("exec time (s)", lambda r: r.mean_time),
            "fig11": ("CoV %", lambda r: r.cov_percent),
            "fig12": ("% of exhaustive core-hours",
                      lambda r: r.core_hours_pct_of_exhaustive),
        }[args.name]
        rows = [(r.app_name, r.strategy, metric[1](r)) for r in result.rows]
        print(render_table(["app", "strategy", metric[0]], rows, title=args.name))
    elif args.name == "fig15":
        result = run_vm_sweep(scale=args.scale, seed=args.seed)
        rows = [(r.vm_name, r.darwin_time, r.gap_percent, r.cov_percent)
                for r in result.rows]
        print(render_table(
            ["VM", "DarwinGame (s)", "gap %", "CoV %"], rows, title="fig15"
        ))
    elif args.name == "stability":
        result = run_stability(scale=args.scale, repeats=args.repeats, seed=args.seed)
        print(render_table(
            ["repeats", "distinct picks", "modal fraction"],
            [(result.repeats, result.distinct_picks, result.modal_pick_fraction)],
            title="pick stability",
        ))
    elif args.name == "sensitivity":
        result = run_sensitivity(scale=args.scale, seed=args.seed)
        print(render_table(
            ["parameter", "value", "exec time (s)"],
            [(p.parameter, p.value, p.mean_time) for p in result.points],
            title="hyper-parameter sensitivity",
        ))
    elif args.name == "formats":
        result = run_format_power(trials=200, seed=args.seed)
        rows = [
            (fmt, noise, result.row(fmt, noise).predictive_power,
             result.row(fmt, noise).mean_games)
            for fmt in FORMAT_NAMES
            for noise in result.noise_levels()
        ]
        print(render_table(
            ["format", "noise std", "P(best wins)", "games"],
            rows, title="tournament-format predictive power",
        ))
    elif args.name == "shift":
        result = run_shift_study(scale=args.scale, seed=args.seed)
        rows = [
            (r.strategy, r.shift, r.mean_time, r.degradation_percent)
            for r in result.rows
        ]
        print(render_table(
            ["strategy", "level shift", "exec time (s)", "degradation %"],
            rows, title="interference distribution shift",
        ))
    elif args.name == "statistical":
        result = run_statistical_comparison(
            scale=args.scale, repeats=args.repeats, seed=args.seed
        )
        rows = [
            (r.app_name, r.strategy, r.mean_time, r.gap_vs_optimal_percent,
             r.cov_percent)
            for r in result.rows
        ]
        print(render_table(
            ["app", "strategy", "exec time (s)", "gap %", "CoV %"],
            rows, title="Sec. 3.2 statistical baselines",
        ))
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    rows = run_table1()
    print(render_table(
        ["application", "app params", "system params", "space size"],
        [
            (r.app_name, len(r.app_parameters), len(r.system_parameters), r.space_size)
            for r in rows
        ],
        title="Table 1 — search spaces (full scale)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DarwinGame reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tune = sub.add_parser("tune", help="run one tuning campaign")
    _add_common(p_tune)
    p_tune.add_argument(
        "--strategy",
        default="DarwinGame",
        choices=tuple(STRATEGY_NAMES) + _EXTRA_STRATEGIES,
    )
    p_tune.add_argument(
        "--save", default="", help="archive the campaign to this JSON path"
    )
    p_tune.set_defaults(func=_cmd_tune)

    p_report = sub.add_parser("report", help="print an archived campaign")
    p_report.add_argument("path", help="campaign JSON written by tune --save")
    p_report.set_defaults(func=_cmd_report)

    p_cmp = sub.add_parser("compare", help="compare strategies on one app")
    _add_common(p_cmp)
    p_cmp.add_argument(
        "--strategies", default="DarwinGame,BLISS,ActiveHarmony",
        help="comma-separated strategy names",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("--name", required=True, choices=_EXPERIMENTS)
    p_exp.add_argument("--scale", default="bench")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--repeats", type=int, default=3)
    p_exp.set_defaults(func=_cmd_experiment)

    p_t1 = sub.add_parser("table1", help="print Table 1")
    p_t1.set_defaults(func=_cmd_table1)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
