"""Command-line interface for the DarwinGame reproduction.

Subcommands::

    python -m repro tune --app redis --scale bench --seed 7
    python -m repro compare --app lammps --strategies DarwinGame,BLISS
    python -m repro experiment --name fig10 --scale test --jobs 4
    python -m repro table1
    python -m repro sweep --apps redis,lammps --seeds 0,1,2 --jobs 4 \
        --store sweep.jsonl --telemetry --progress
    python -m repro sweep ... --store sweep.d --store-backend sharded
    python -m repro resume sweep.jsonl --jobs 4
    python -m repro serve --port 8765 --data-root serve.d --telemetry
    python -m repro status sweep.jsonl --watch
    python -m repro report sweep.jsonl
    python -m repro report sweep.jsonl --metrics
    python -m repro store info sweep.jsonl
    python -m repro store migrate sweep.jsonl sweep.sqlite
    python -m repro cache warm --apps redis,lammps --scale bench
    python -m repro cache info
    python -m repro cache clear

Global ``--verbose`` / ``--quiet`` (before the subcommand) tune how chatty
every command is; progress and status lines flow through the ``repro``
logger (:mod:`repro.telemetry.log`), result tables through stdout.

The CLI is a thin layer over the library: sweep/resume/status/report and
the ``serve`` daemon all drive the stable :mod:`repro.api` facade, so
anything a subcommand prints can be recomputed programmatically (and the
rest through :mod:`repro.experiments` and :mod:`repro.campaigns`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro import api
from repro.apps.registry import APPLICATION_NAMES, make_application
from repro.caching import SurfaceCache, default_cache_dir
from repro.campaigns import CampaignGrid, migrate_store, open_store
from repro.campaigns.store import BACKEND_NAMES, SIDECAR_PROFILES, SIDECAR_TELEMETRY
from repro.cloud.vm import PRESETS
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.experiments import (
    STRATEGY_NAMES,
    render_table,
    run_format_power,
    run_headline,
    run_sensitivity,
    run_shift_study,
    run_stability,
    run_statistical_comparison,
    run_strategy,
    run_table1,
    run_vm_sweep,
)
from repro.experiments.format_power import FORMAT_NAMES
from repro.formats.recipes import TOURNAMENT_FORMAT_NAMES, tournament_format_names
from repro.scenarios import SCENARIO_NAMES, scenario_names
from repro.telemetry import (
    LiveProgress,
    configure_logging,
    get_logger,
    render_status,
    render_store_metrics,
    watch,
)

_LOG = get_logger("cli")

_EXPERIMENTS = (
    "fig10", "fig11", "fig12", "fig15", "stability", "sensitivity",
    "formats", "shift", "statistical", "scenarios",
)
#: Extra strategies selectable via ``tune``/``compare`` beyond the Fig. 10 set.
_EXTRA_STRATEGIES = (
    "QuantileRegression",
    "ThompsonSampling",
    "GeneticAlgorithm",
    "SimulatedAnnealing",
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--app", default="redis", choices=APPLICATION_NAMES, help="application to tune"
    )
    parser.add_argument("--scale", default="bench", help="space scale preset")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--vm", default="m5.8xlarge", choices=sorted(PRESETS), help="instance type"
    )
    parser.add_argument(
        "--scenario", default="steady", metavar="PACK",
        help=f"dynamic-cloud scenario pack (registered: {', '.join(SCENARIO_NAMES)})",
    )
    parser.add_argument(
        "--format", default="darwin", metavar="RECIPE", dest="format",
        help="tournament-format recipe for the DarwinGame engine "
             f"(registered: {', '.join(TOURNAMENT_FORMAT_NAMES)})",
    )


def _unknown_scenarios(names) -> list:
    known = scenario_names()
    return [n for n in names if n not in known]


def _unknown_formats(names) -> list:
    known = tournament_format_names()
    return [n for n in names if n not in known]


def _check_formats(names) -> int:
    unknown = _unknown_formats(names)
    if unknown:
        _LOG.error(
            "unknown tournament format: %r; registered: %s",
            unknown[0], list(tournament_format_names()),
        )
        return 2
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    unknown = _unknown_scenarios([args.scenario])
    if unknown:
        _LOG.error(
            "unknown scenario: %r; registered: %s",
            unknown[0], list(scenario_names()),
        )
        return 2
    if _check_formats([args.format]):
        return 2
    app = make_application(args.app, scale=args.scale)
    run = run_strategy(
        app, args.strategy, vm=PRESETS[args.vm], seed=args.seed,
        scenario=args.scenario, tournament_format=args.format,
    )
    print(render_table(
        ["metric", "value"],
        [
            ("application", app.name),
            ("search space", app.space.size),
            ("scenario", args.scenario),
            ("format", args.format),
            ("strategy", run.strategy),
            ("chosen index", run.best_index),
            ("mean cloud exec time (s)", run.mean_time),
            ("CoV %", run.cov_percent),
            ("tuning core-hours", run.core_hours),
        ],
        title=f"{run.strategy} on {app.name} ({args.vm})",
    ))
    print("\nChosen configuration:")
    for knob, value in app.space.config_dict(run.best_index).items():
        print(f"  {knob} = {value}")
    if args.save:
        from repro.experiments.persistence import save_campaign
        from repro.types import TuningResult

        # Persist what the CLI knows: the choice, its quality, the cost.
        result = TuningResult(
            tuner_name=run.strategy,
            best_index=run.best_index,
            best_values=app.space.values_of(run.best_index),
            evaluations=0,
            core_hours=run.core_hours,
            tuning_seconds=run.tuning_seconds,
        )
        path = save_campaign(
            result, run.evaluation, args.save,
            app_name=app.name, vm_name=args.vm,
            notes=f"scale={args.scale} seed={args.seed} "
                  f"scenario={args.scenario} format={args.format}",
        )
        print(f"\nCampaign archived to {path}")
    return 0


def _is_store(path: str) -> bool:
    """Sniff whether ``path`` is a campaign store (any backend) or an archive."""
    import os.path

    from repro.campaigns.store.factory import SQLITE_MAGIC

    if os.path.isdir(path):
        # Directories are sharded stores; single-campaign archives are files.
        return True
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(SQLITE_MAGIC))
    except OSError:
        return False
    if head == SQLITE_MAGIC:
        return True
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.loads(handle.readline().strip())
    except (OSError, ValueError):
        return False
    return isinstance(payload, dict) and payload.get("kind") in (
        "campaign_grid", "campaign_record",
    )


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def report(finished: int, total: int, record) -> None:
        mark = "ok" if record.ok else "FAILED"
        _LOG.info("[%d/%d] %s %s", finished, total, record.campaign_id, mark)

    return report


def _fault_plan_from_args(args: argparse.Namespace):
    """Parse ``--inject-faults`` (empty = no chaos); raises ReproError."""
    text = getattr(args, "inject_faults", "")
    return FaultPlan.parse(text) if text else None


def _apply_array_backend(args: argparse.Namespace) -> None:
    """Activate ``--array-backend`` (or ``REPRO_ARRAY_BACKEND``) process-wide.

    Falling back (backend absent / probe failure) is the backend layer's
    job and already logged there; the CLI only reports what was activated
    when it differs from the request.
    """
    requested = getattr(args, "array_backend", "")
    if not requested:
        return
    from repro.backend import set_array_backend

    backend = set_array_backend(requested)
    if backend.name != requested:
        _LOG.warning(
            "--array-backend %s unavailable; running on %s",
            requested, backend.name,
        )
    else:
        _LOG.info("array backend: %s", backend.name)


def _options_from_args(args: argparse.Namespace, store) -> api.SweepOptions:
    """One :class:`repro.api.SweepOptions` from the shared CLI flags."""
    backend = getattr(args, "store_backend", "auto")
    _apply_array_backend(args)
    return api.SweepOptions(
        store=store,
        store_backend=None if backend == "auto" else backend,
        shards=getattr(args, "shards", 0) or None,
        jobs=args.jobs,
        cache_dir=args.cache_dir or None,
        max_retries=args.max_retries,
        backoff=args.backoff,
        task_timeout=args.task_timeout or None,
        telemetry=args.telemetry,
        profile=args.profile,
        fault_plan=_fault_plan_from_args(args),
        exec_mode=getattr(args, "exec_mode", "process"),
    )


def _run_sweep(grid: CampaignGrid, options: api.SweepOptions,
               quiet: bool = False, live_progress: bool = False) -> int:
    """Execute a grid through :func:`repro.api.submit_grid` and render the
    outcome the way ``repro sweep`` always has."""
    # --progress swaps the per-campaign log lines for one in-place meter
    # with throughput and an EWMA ETA; --quiet silences both.
    meter = LiveProgress() if live_progress and not quiet else None
    try:
        job = api.submit_grid(
            grid, options,
            progress=meter if meter is not None else _progress_printer(quiet),
        )
    finally:
        if meter is not None:
            meter.close()
    report = job.result()
    store = job.store
    print(api.render_report(
        job.report(), title=f"sweep {store.path}"
    ))
    if report.failures:
        print(api.render_report(
            job.report(view="failures"), title=f"sweep {store.path} failures"
        ))
    _LOG.info(
        "executed %d, skipped %d already stored, %d retries, "
        "%.1fs wall with --jobs %d (%.1f campaigns/min)",
        report.executed, report.skipped, report.retries,
        report.wall_seconds, report.jobs, report.campaigns_per_minute,
    )
    if options.telemetry:
        _LOG.info(
            "telemetry sidecar: %s (inspect with `repro status %s` or "
            "`repro report %s --metrics`)",
            store.sidecar_path(SIDECAR_TELEMETRY), store.path, store.path,
        )
    if options.profile:
        _LOG.info("campaign profiles: %s", store.sidecar_path(SIDECAR_PROFILES))
    return 1 if report.failures else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    def csv(text: str) -> tuple:
        return tuple(s.strip() for s in text.split(",") if s.strip())

    grid = CampaignGrid(
        apps=csv(args.apps),
        strategies=csv(args.strategies),
        vms=csv(args.vms),
        seeds=tuple(int(s) for s in csv(args.seeds)),
        scale=args.scale,
        eval_runs=args.eval_runs,
        scenarios=csv(args.scenarios),
        formats=csv(args.formats),
    )
    try:
        # Catch the typo here: an unknown entry on any axis otherwise kills
        # every worker that leases one of its campaigns, burning the whole
        # retry budget.  Same gate the daemon and library use.
        api.validate_grid(grid)
    except ReproError as exc:
        _LOG.error("%s", exc)
        return 2
    try:
        options = _options_from_args(args, args.store)
    except ReproError as exc:
        _LOG.error("bad --inject-faults plan: %s", exc)
        return 2
    try:
        options.open_store()
    except ReproError as exc:
        _LOG.error("cannot open store %s: %s", args.store, exc)
        return 2
    return _run_sweep(grid, options, args.quiet, live_progress=args.progress)


def _cmd_resume(args: argparse.Namespace) -> int:
    try:
        store = open_store(args.store)
    except ReproError as exc:
        _LOG.error("cannot open store %s: %s", args.store, exc)
        return 2
    if not store.exists():
        _LOG.error(
            "no store at %s; start one with `repro sweep --store`", store.path
        )
        return 2
    grid = store.read_grid()
    if grid is None:
        _LOG.error(
            "%s has no grid header; re-run `repro sweep` with the original "
            "arguments and --store %s", store.path, store.path,
        )
        return 2
    try:
        options = _options_from_args(args, args.store)
    except ReproError as exc:
        _LOG.error("bad --inject-faults plan: %s", exc)
        return 2
    return _run_sweep(grid, options, args.quiet, live_progress=args.progress)


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so plain CLI runs never pay for the service stack.
    from repro.service import ServiceConfig, TenantQuota, serve

    try:
        options = _options_from_args(args, None)
    except ReproError as exc:
        _LOG.error("bad --inject-faults plan: %s", exc)
        return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        data_root=args.data_root,
        options=options,
        quota=TenantQuota(
            core_hours=args.quota_core_hours or None,
            max_active=args.quota_max_active,
        ),
    )
    return serve(config)


def _cmd_status(args: argparse.Namespace) -> int:
    store = open_store(args.store)
    if not store.exists():
        _LOG.error(
            "no store at %s; start one with `repro sweep --store`", store.path
        )
        return 2
    if args.watch:
        watch(store.path, interval=args.interval)
        return 0
    snap = api.job_status(store)
    if args.json:
        print(json.dumps(snap.to_payload(), sort_keys=True))
    else:
        print(render_status(snap))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.persistence import load_campaign

    if _is_store(args.path):
        if args.metrics:
            print(render_store_metrics(args.path), end="")
            return 0
        store = open_store(args.path)
        grid, records = store.load()
        view, suffix = (
            ("failures", " failures") if args.failures
            else ("by-scenario", " by scenario") if args.by_scenario
            else ("by-format", " by format") if args.by_format
            else ("summary", "")
        )
        print(api.render_report(
            api.fetch_report(store, view=view),
            title=f"sweep {args.path}{suffix}",
        ))
        if grid is not None:
            done = {r.campaign_id for r in records if r.ok}
            pending = sum(1 for s in grid.specs() if s.campaign_id not in done)
            if pending:
                _LOG.info(
                    "%d of %d campaigns still pending — finish with: "
                    "python -m repro resume %s", pending, grid.size, args.path,
                )
        return 0

    if args.by_scenario or args.by_format or args.failures or args.metrics:
        flag = (
            "--by-scenario" if args.by_scenario
            else "--by-format" if args.by_format
            else "--failures" if args.failures
            else "--metrics"
        )
        _LOG.error(
            "%s is a single-campaign archive; %s aggregates sweep stores "
            "(written by `repro sweep`)", args.path, flag,
        )
        return 2
    result, evaluation, meta = load_campaign(args.path)
    rows = [
        ("application", meta.get("app", "?")),
        ("VM", meta.get("vm", "?")),
        ("strategy", result.tuner_name),
        ("chosen index", result.best_index),
        ("tuning core-hours", result.core_hours),
    ]
    if evaluation is not None:
        rows.extend([
            ("mean cloud exec time (s)", evaluation.mean_time),
            ("CoV %", evaluation.cov_percent),
        ])
    if meta.get("notes"):
        rows.append(("notes", meta["notes"]))
    print(render_table(["metric", "value"], rows, title=f"Campaign {args.path}"))
    return 0


def _store_disk_bytes(path) -> int:
    """Bytes on disk for a store path (sums the tree for directory stores)."""
    from pathlib import Path

    root = Path(path)
    if root.is_dir():
        return sum(
            p.stat().st_size for p in root.rglob("*") if p.is_file()
        )
    try:
        return root.stat().st_size
    except OSError:
        return 0


def _cmd_store_info(args: argparse.Namespace) -> int:
    store = open_store(args.path)
    if not store.exists():
        _LOG.error("no store at %s", store.path)
        return 2
    grid, records = store.load()
    done = sum(1 for r in records if r.ok)
    failed = len(records) - done
    rows = [
        ("path", str(store.path)),
        ("backend", store.backend),
        ("records", len(records)),
        ("done", done),
        ("failed", failed),
        ("grid campaigns", grid.size if grid is not None else "no header"),
        ("size (KiB)", round(_store_disk_bytes(store.path) / 1024, 1)),
    ]
    if grid is not None:
        done_ids = {r.campaign_id for r in records if r.ok}
        pending = sum(1 for s in grid.specs() if s.campaign_id not in done_ids)
        rows.append(("pending", pending))
    print(render_table(["field", "value"], rows, title=f"store {args.path}"))
    return 0


def _cmd_store_migrate(args: argparse.Namespace) -> int:
    try:
        source = open_store(args.source)
    except ReproError as exc:
        _LOG.error("cannot open source store %s: %s", args.source, exc)
        return 2
    backend = None if args.dst_backend == "auto" else args.dst_backend
    try:
        destination = open_store(
            args.destination, backend=backend, shards=args.shards or None
        )
        copied = migrate_store(source, destination)
    except ReproError as exc:
        _LOG.error("migrate failed: %s", exc)
        return 2
    print(
        f"migrated {copied} record(s): {source.path} ({source.backend}) "
        f"-> {destination.path} ({destination.backend})"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    unknown = _unknown_scenarios([args.scenario])
    if unknown:
        _LOG.error(
            "unknown scenario: %r; registered: %s",
            unknown[0], list(scenario_names()),
        )
        return 2
    if _check_formats([args.format]):
        return 2
    strategies = tuple(s.strip() for s in args.strategies.split(","))
    known = tuple(STRATEGY_NAMES) + _EXTRA_STRATEGIES
    unknown = [s for s in strategies if s not in known]
    if unknown:
        _LOG.error("unknown strategies: %s; available: %s", unknown, list(known))
        return 2
    app = make_application(args.app, scale=args.scale)
    rows = []
    for strategy in strategies:
        run = run_strategy(app, strategy, vm=PRESETS[args.vm], seed=args.seed,
                           scenario=args.scenario,
                           tournament_format=args.format)
        rows.append((strategy, run.mean_time, run.cov_percent, run.core_hours))
    print(render_table(
        ["strategy", "exec time (s)", "CoV %", "core-hours"],
        rows,
        title=f"Comparison on {app.name} (scale={args.scale}, "
              f"seed={args.seed}, scenario={args.scenario}, "
              f"format={args.format})",
    ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name in ("fig10", "fig11", "fig12"):
        result = run_headline(
            scale=args.scale, repeats=args.repeats, seed=args.seed, jobs=args.jobs
        )
        metric = {
            "fig10": ("exec time (s)", lambda r: r.mean_time),
            "fig11": ("CoV %", lambda r: r.cov_percent),
            "fig12": ("% of exhaustive core-hours",
                      lambda r: r.core_hours_pct_of_exhaustive),
        }[args.name]
        rows = [(r.app_name, r.strategy, metric[1](r)) for r in result.rows]
        print(render_table(["app", "strategy", metric[0]], rows, title=args.name))
    elif args.name == "fig15":
        result = run_vm_sweep(scale=args.scale, seed=args.seed, jobs=args.jobs)
        rows = [(r.vm_name, r.darwin_time, r.gap_percent, r.cov_percent)
                for r in result.rows]
        print(render_table(
            ["VM", "DarwinGame (s)", "gap %", "CoV %"], rows, title="fig15"
        ))
    elif args.name == "stability":
        result = run_stability(
            scale=args.scale, repeats=args.repeats, seed=args.seed, jobs=args.jobs
        )
        print(render_table(
            ["repeats", "distinct picks", "modal fraction"],
            [(result.repeats, result.distinct_picks, result.modal_pick_fraction)],
            title="pick stability",
        ))
    elif args.name == "sensitivity":
        result = run_sensitivity(scale=args.scale, seed=args.seed)
        print(render_table(
            ["parameter", "value", "exec time (s)"],
            [(p.parameter, p.value, p.mean_time) for p in result.points],
            title="hyper-parameter sensitivity",
        ))
    elif args.name == "formats":
        result = run_format_power(trials=200, seed=args.seed, jobs=args.jobs)
        rows = [
            (fmt, noise, result.row(fmt, noise).predictive_power,
             result.row(fmt, noise).mean_games)
            for fmt in FORMAT_NAMES
            for noise in result.noise_levels()
        ]
        print(render_table(
            ["format", "noise std", "P(best wins)", "games"],
            rows, title="tournament-format predictive power",
        ))
    elif args.name == "shift":
        result = run_shift_study(scale=args.scale, seed=args.seed)
        rows = [
            (r.strategy, r.shift, r.mean_time, r.degradation_percent)
            for r in result.rows
        ]
        print(render_table(
            ["strategy", "level shift", "exec time (s)", "degradation %"],
            rows, title="interference distribution shift",
        ))
    elif args.name == "scenarios":
        from repro.experiments import run_scenario_robustness

        result = run_scenario_robustness(
            scale=args.scale,
            seeds=tuple(args.seed + k for k in range(args.repeats)),
            jobs=args.jobs,
        )
        print(result.table())
    elif args.name == "statistical":
        result = run_statistical_comparison(
            scale=args.scale, repeats=args.repeats, seed=args.seed, jobs=args.jobs
        )
        rows = [
            (r.app_name, r.strategy, r.mean_time, r.gap_vs_optimal_percent,
             r.cov_percent)
            for r in result.rows
        ]
        print(render_table(
            ["app", "strategy", "exec time (s)", "gap %", "CoV %"],
            rows, title="Sec. 3.2 statistical baselines",
        ))
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = run_table1(jobs=args.jobs)
    print(render_table(
        ["application", "app params", "system params", "space size"],
        [
            (r.app_name, len(r.app_parameters), len(r.system_parameters), r.space_size)
            for r in rows
        ],
        title="Table 1 — search spaces (full scale)",
    ))
    return 0


def _cache_from_args(args: argparse.Namespace) -> SurfaceCache:
    return SurfaceCache(args.cache_dir or None)


def _cmd_cache_warm(args: argparse.Namespace) -> int:
    cache = _cache_from_args(args)
    apps = tuple(s.strip() for s in args.apps.split(",") if s.strip())
    unknown = [a for a in apps if a not in APPLICATION_NAMES]
    if unknown:
        _LOG.error(
            "unknown applications: %s; available: %s",
            unknown, list(APPLICATION_NAMES),
        )
        return 2
    entries = cache.warm((name, args.scale) for name in apps)
    print(render_table(
        ["application", "scale", "points", "status", "size (KiB)"],
        [
            (e.app, e.scale, e.points, e.status, round(e.size_bytes / 1024, 1))
            for e in entries
        ],
        title=f"surface cache {cache.directory}",
    ))
    return 0


def _cmd_cache_info(args: argparse.Namespace) -> int:
    cache = _cache_from_args(args)
    entries = cache.info()
    if not entries:
        print(f"surface cache {cache.directory} is empty — warm it with "
              f"`python -m repro cache warm`")
        return 0
    print(render_table(
        ["application", "scale", "points", "size (KiB)", "file"],
        [
            (e.app, e.scale, e.points, round(e.size_bytes / 1024, 1),
             e.path.name)
            for e in entries
        ],
        title=f"surface cache {cache.directory}",
    ))
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    cache = _cache_from_args(args)
    removed = cache.clear()
    print(f"removed {removed} cached surface(s) from {cache.directory}")
    return 0


def _add_execution(parser: argparse.ArgumentParser) -> None:
    """The worker-pool and cache knobs every executing command shares
    (sweep, resume, serve)."""
    parser.add_argument(
        "--jobs", type=int, default=1, help="parallel worker processes"
    )
    parser.add_argument(
        "--cache-dir", default="",
        help="surface-cache directory: warm it before the sweep and prewarm "
             "every worker from it (empty = no persistent cache)",
    )
    parser.add_argument(
        "--exec-mode", default="process", choices=("process", "stacked"),
        help="process (default): inline or worker-pool execution per --jobs; "
             "stacked: run campaigns in lockstep in one process, fusing "
             "concurrent tournament rounds of same-key campaigns into one "
             "tensor pass — the 1-core throughput lever; results are "
             "bit-identical across modes",
    )
    parser.add_argument(
        "--array-backend", default="",
        choices=("", "numpy", "cupy", "jax"),
        help="array namespace for the simulation hot path (repro.xp): numpy "
             "(default), or cupy/jax when installed; a backend that is "
             "absent or fails its capability probe falls back to numpy "
             "with a warning (env: REPRO_ARRAY_BACKEND)",
    )


def _add_store_backend(parser: argparse.ArgumentParser) -> None:
    """The store-backend selection knobs (sweep, resume, serve)."""
    parser.add_argument(
        "--store-backend", default="auto",
        choices=("auto",) + tuple(BACKEND_NAMES),
        help="store backend: jsonl (single file, the default), sharded "
             "(directory of per-shard JSONL files for parallel writers), "
             "sqlite (indexed database); auto sniffs existing stores and "
             "infers fresh ones from the path suffix (.d -> sharded, "
             ".sqlite/.db -> sqlite)",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="shard count when creating a new sharded store (default: 8; "
             "pinned in the store's meta.json thereafter)",
    )


def _add_observability(parser: argparse.ArgumentParser) -> None:
    """The telemetry and profiling opt-ins (sweep, resume, serve)."""
    parser.add_argument(
        "--telemetry", action="store_true",
        help="journal structured span/counter/gauge events to the store's "
             ".telemetry sidecar (worker events are merged by the parent); "
             "inspect with `repro status` or `repro report --metrics`",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="capture per-campaign cProfile stats into the store's "
             ".profiles directory (one .pstats file per attempt)",
    )


def _add_progress(parser: argparse.ArgumentParser) -> None:
    """The interactive progress toggles (sweep, resume — not serve)."""
    parser.add_argument(
        "--progress", action="store_true",
        help="replace per-campaign progress lines with one in-place meter "
             "showing done/failed counts, throughput, and an EWMA ETA",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-campaign progress"
    )


def _add_fault_tolerance(parser: argparse.ArgumentParser) -> None:
    """The sweep/resume retry, timeout, and chaos knobs."""
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="re-executions granted after a campaign's first failed attempt "
             "before it is quarantined as failed (default: 2)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.1,
        help="base of the exponential retry delay in seconds — retry k "
             "waits backoff * 2**(k-1) (default: 0.1)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=0.0,
        help="seconds a campaign may run before its worker is presumed hung "
             "and killed; 0 disables (parallel sweeps only)",
    )
    parser.add_argument(
        "--inject-faults", default="", metavar="PLAN",
        help="chaos-test the sweep with a seeded fault plan, e.g. "
             "'seed=7,rate=1.0,kinds=crash+transient,max=2,hang=30,"
             "store=0.5' — deterministic per (seed, campaign, attempt)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DarwinGame reproduction command-line interface"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0, dest="verbose",
        help="more logging (DEBUG with timestamps); place before the "
             "subcommand",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0, dest="log_quiet",
        help="less logging (warnings and errors only); place before the "
             "subcommand",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tune = sub.add_parser("tune", help="run one tuning campaign")
    _add_common(p_tune)
    p_tune.add_argument(
        "--strategy",
        default="DarwinGame",
        choices=tuple(STRATEGY_NAMES) + _EXTRA_STRATEGIES,
    )
    p_tune.add_argument(
        "--save", default="", help="archive the campaign to this JSON path"
    )
    p_tune.set_defaults(func=_cmd_tune)

    p_report = sub.add_parser(
        "report", help="print an archived campaign or a sweep store"
    )
    p_report.add_argument(
        "path",
        help="campaign JSON written by tune --save, or a sweep store "
             "(any backend)",
    )
    p_report.add_argument(
        "--by-scenario", action="store_true",
        help="aggregate a sweep store per scenario pack (tuner robustness "
             "under dynamic cloud conditions)",
    )
    p_report.add_argument(
        "--by-format", action="store_true",
        help="aggregate a sweep store per tournament-format recipe (which "
             "tournament shape picks the best configurations, at what cost)",
    )
    p_report.add_argument(
        "--failures", action="store_true",
        help="show a sweep store's failure/retry view: quarantined "
             "campaigns, their errors and attempt counts, sweep-wide retry "
             "totals",
    )
    p_report.add_argument(
        "--metrics", action="store_true",
        help="replay the store's .telemetry sidecar into counters, gauges, "
             "and histograms (text exposition format); requires a sweep run "
             "with --telemetry",
    )
    p_report.set_defaults(func=_cmd_report)

    p_status = sub.add_parser(
        "status", help="live done/running/queued/failed view of a sweep store"
    )
    p_status.add_argument(
        "store", help="store written by sweep (any backend; its ledger/"
                      "telemetry sidecars are fused in when present)",
    )
    p_status.add_argument(
        "--watch", action="store_true",
        help="refresh the status block in place until the sweep finishes",
    )
    p_status.add_argument(
        "--interval", type=float, default=2.0,
        help="--watch refresh period in seconds (default: 2.0)",
    )
    p_status.add_argument(
        "--json", action="store_true",
        help="emit one JSON object instead of the rendered block",
    )
    p_status.set_defaults(func=_cmd_status)

    p_sweep = sub.add_parser(
        "sweep", help="run a campaign grid through the parallel runner"
    )
    p_sweep.add_argument(
        "--apps", default=",".join(APPLICATION_NAMES),
        help="comma-separated application names",
    )
    p_sweep.add_argument(
        "--strategies", default="DarwinGame",
        help="comma-separated strategy names",
    )
    p_sweep.add_argument(
        "--vms", default="m5.8xlarge", help="comma-separated VM presets"
    )
    p_sweep.add_argument(
        "--seeds", default="0", help="comma-separated environment seeds"
    )
    p_sweep.add_argument(
        "--scenarios", default="steady",
        help="comma-separated scenario packs — the dynamic-conditions sweep "
             f"axis (registered: {', '.join(SCENARIO_NAMES)})",
    )
    p_sweep.add_argument(
        "--formats", default="darwin",
        help="comma-separated tournament-format recipes — the tournament-"
             f"shape sweep axis (registered: {', '.join(TOURNAMENT_FORMAT_NAMES)})",
    )
    p_sweep.add_argument("--scale", default="bench", help="space scale preset")
    p_sweep.add_argument(
        "--eval-runs", type=int, default=100,
        help="post-tuning evaluation executions per campaign",
    )
    p_sweep.add_argument(
        "--store", default="campaigns.jsonl",
        help="checkpoint store path (resumable); backend inferred from the "
             "path unless --store-backend overrides it",
    )
    _add_execution(p_sweep)
    _add_store_backend(p_sweep)
    _add_progress(p_sweep)
    _add_fault_tolerance(p_sweep)
    _add_observability(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_resume = sub.add_parser(
        "resume", help="finish an interrupted sweep from its store"
    )
    p_resume.add_argument(
        "store", help="store written by sweep (backend is sniffed from disk)"
    )
    _add_execution(p_resume)
    _add_progress(p_resume)
    _add_fault_tolerance(p_resume)
    _add_observability(p_resume)
    p_resume.set_defaults(func=_cmd_resume)

    p_serve = sub.add_parser(
        "serve",
        help="run the tuning service: a long-lived HTTP/JSON daemon over "
             "the same facade sweep/resume use",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="interface to bind"
    )
    p_serve.add_argument(
        "--port", type=int, default=8765, help="TCP port to bind (0 = pick)"
    )
    p_serve.add_argument(
        "--data-root", default="repro-serve.d",
        help="directory holding one store per (tenant, job); every store "
             "remains readable by `repro status` / `report` / `resume`",
    )
    p_serve.add_argument(
        "--quota-core-hours", type=float, default=0.0,
        help="per-tenant core-hour budget; submissions past it get HTTP "
             "429 (0 = unmetered)",
    )
    p_serve.add_argument(
        "--quota-max-active", type=int, default=8,
        help="per-tenant cap on queued-plus-running jobs (default: 8)",
    )
    _add_execution(p_serve)
    _add_store_backend(p_serve)
    _add_fault_tolerance(p_serve)
    _add_observability(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="manage the persistent application-surface cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    def _add_cache_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir", default="",
            help=f"cache directory (default: {default_cache_dir()}, "
                 f"or $REPRO_CACHE_DIR)",
        )

    p_cwarm = cache_sub.add_parser(
        "warm", help="precompute and persist application surface tables"
    )
    p_cwarm.add_argument(
        "--apps", default=",".join(APPLICATION_NAMES),
        help="comma-separated application names",
    )
    p_cwarm.add_argument("--scale", default="bench", help="space scale preset")
    _add_cache_dir(p_cwarm)
    p_cwarm.set_defaults(func=_cmd_cache_warm)

    p_cinfo = cache_sub.add_parser("info", help="list cached surface tables")
    _add_cache_dir(p_cinfo)
    p_cinfo.set_defaults(func=_cmd_cache_info)

    p_cclear = cache_sub.add_parser(
        "clear", help="delete every cached surface table"
    )
    _add_cache_dir(p_cclear)
    p_cclear.set_defaults(func=_cmd_cache_clear)

    p_store = sub.add_parser(
        "store", help="inspect and convert campaign stores"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_sinfo = store_sub.add_parser(
        "info", help="backend, record counts, and disk usage of a store"
    )
    p_sinfo.add_argument("path", help="store path (any backend)")
    p_sinfo.set_defaults(func=_cmd_store_info)

    p_smigrate = store_sub.add_parser(
        "migrate",
        help="copy a store's grid and records into a fresh store of "
             "another backend (lossless, both directions)",
    )
    p_smigrate.add_argument("source", help="existing store (any backend)")
    p_smigrate.add_argument(
        "destination",
        help="path for the new store; must not already hold records",
    )
    p_smigrate.add_argument(
        "--dst-backend", default="auto",
        choices=("auto",) + tuple(BACKEND_NAMES),
        help="destination backend (auto infers from the path suffix: "
             ".d -> sharded, .sqlite/.db -> sqlite, else jsonl)",
    )
    p_smigrate.add_argument(
        "--shards", type=int, default=0,
        help="shard count when the destination is a new sharded store",
    )
    p_smigrate.set_defaults(func=_cmd_store_migrate)

    p_cmp = sub.add_parser("compare", help="compare strategies on one app")
    _add_common(p_cmp)
    p_cmp.add_argument(
        "--strategies", default="DarwinGame,BLISS,ActiveHarmony",
        help="comma-separated strategy names",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("--name", required=True, choices=_EXPERIMENTS)
    p_exp.add_argument("--scale", default="bench")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--repeats", type=int, default=3)
    p_exp.add_argument(
        "--jobs", type=int, default=1,
        help="parallel campaign workers (grid experiments)",
    )
    p_exp.set_defaults(func=_cmd_experiment)

    p_t1 = sub.add_parser("table1", help="print Table 1")
    p_t1.add_argument(
        "--jobs", type=int, default=1, help="build spaces in parallel"
    )
    p_t1.set_defaults(func=_cmd_table1)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.log_quiet)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed the pipe (`repro status ... | head`).  Point
        # stdout at devnull so the interpreter's shutdown flush cannot
        # raise again, and exit quietly like any well-behaved filter.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


# -- deprecated aliases ---------------------------------------------------

#: Names that used to live in (or be re-exported from) this module before
#: the sweep path moved behind :mod:`repro.api`.  Importing them from here
#: still works but warns; new code should use the canonical home.
_MOVED = {
    "CampaignRunner": ("repro.campaigns", "CampaignRunner"),
    "ResultStore": ("repro.campaigns", "ResultStore"),
    "snapshot": ("repro.telemetry", "snapshot"),
    "summarise": ("repro.campaigns", "summarise"),
    "summarise_by_format": ("repro.campaigns", "summarise_by_format"),
    "summarise_by_scenario": ("repro.campaigns", "summarise_by_scenario"),
    "summarise_failures": ("repro.campaigns", "summarise_failures"),
    "summary_table": ("repro.campaigns", "summary_table"),
    "scenario_table": ("repro.campaigns", "scenario_table"),
    "format_table": ("repro.campaigns", "format_table"),
    "failure_table": ("repro.campaigns", "failure_table"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _MOVED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib
    import warnings

    warnings.warn(
        f"repro.cli.{name} is deprecated; import {attr} from {module_name} "
        f"(or use the repro.api facade)",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), attr)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
