"""Counters, gauges, and histograms over the telemetry event stream.

The registry is the aggregating half of the observability layer: the event
bus journals *what happened*; the registry reduces it to *how much and how
fast*.  It is fed two ways that must agree — live, by
:func:`repro.telemetry.events.emit_event` as a sweep runs, and offline, by
replaying a ``<store>.telemetry`` sidecar (``repro report --metrics``) —
so the mapping from events to metrics lives in exactly one place,
:meth:`MetricsRegistry.ingest`:

* ``counter`` events add their value to a counter of the same name;
* ``gauge`` events set a gauge of the same name;
* ``span`` events observe their duration into a ``<name>_seconds``
  histogram (count / sum / min / max / log-spaced buckets);
* ``histogram`` events observe their value into a histogram of the same
  name (no unit suffix — e.g. ``stack_width``, the fused-round width
  distribution of a stacked sweep).

Dumps use the Prometheus text exposition format (``# TYPE`` comments, one
``name value`` sample per line, ``{label="..."}`` selectors), so the output
is both human-scannable and scrapable.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Histogram bucket upper bounds (seconds) — log-spaced from fast rounds
#: to stuck campaigns; +Inf is implicit.
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0)

Labels = Tuple[Tuple[str, str], ...]


def _labels_of(fields: Optional[dict]) -> Labels:
    """Normalise an event's fields into a deterministic label tuple.

    Only strings, bools, and ints become labels — floats are measurements
    (a round's simulated seconds), and keying a metric family per distinct
    float would mint one series per observation.  They stay in the sidecar;
    the registry just doesn't pivot on them.
    """
    if not fields:
        return ()
    items = []
    for key in sorted(fields):
        value = fields[key]
        if isinstance(value, bool):
            items.append((key, "true" if value else "false"))
        elif isinstance(value, (str, int)):
            items.append((key, str(value)))
    return tuple(items)


def _selector(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    """Compact sample formatting: integers stay integral, floats stay short."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(round(float(value), 9))


@dataclass
class Counter:
    """A monotonically increasing sum."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time level (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Fixed-bucket distribution of observed values (span durations)."""

    bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def bucket_totals(self) -> List[Tuple[float, int]]:
        """Cumulative ``le`` buckets, Prometheus style (ends at +Inf)."""
        cumulative, out = 0, []
        for bound, n in zip((*self.bounds, math.inf), self.counts):
            cumulative += n
            out.append((bound, cumulative))
        return out


class MetricsRegistry:
    """The process's (or a replay's) named metrics, keyed by name+labels."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}

    # -- direct instrument access ---------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _labels_of(labels))
        if key not in self._counters:
            self._counters[key] = Counter()
        return self._counters[key]

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _labels_of(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge()
        return self._gauges[key]

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, _labels_of(labels))
        if key not in self._histograms:
            self._histograms[key] = Histogram()
        return self._histograms[key]

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- the one event -> metric mapping --------------------------------

    def ingest(self, payload: dict) -> None:
        """Fold one telemetry event payload into the registry.

        Shared verbatim by the live bus and sidecar replay, so the two
        views can never disagree about what an event means.
        """
        if payload.get("kind") != "telemetry":
            return
        name = str(payload.get("name", ""))
        if not name:
            return
        event_type = payload.get("type", "counter")
        value = float(payload.get("value", 1.0))
        labels = _labels_of(payload.get("fields"))
        metric_name = name.replace(".", "_")
        if event_type == "span":
            key = (metric_name + "_seconds", labels)
            if key not in self._histograms:
                self._histograms[key] = Histogram()
            self._histograms[key].observe(value)
        elif event_type == "histogram":
            # Plain-value distributions (e.g. ``stack_width``): no unit
            # suffix — the value is whatever the event observed, not time.
            key = (metric_name, labels)
            if key not in self._histograms:
                self._histograms[key] = Histogram()
            self._histograms[key].observe(value)
        elif event_type == "gauge":
            key = (metric_name, labels)
            if key not in self._gauges:
                self._gauges[key] = Gauge()
            self._gauges[key].set(value)
        else:
            key = (metric_name + "_total", labels)
            if key not in self._counters:
                self._counters[key] = Counter()
            self._counters[key].inc(value)

    def replay(self, payloads) -> "MetricsRegistry":
        """Ingest an iterable of journal payloads; returns self."""
        for payload in payloads:
            self.ingest(payload)
        return self

    # -- text exposition -------------------------------------------------

    def render_text(self) -> str:
        """The registry in Prometheus text exposition format.

        Families are sorted by name, samples by label selector, so the
        same events always render the same bytes.
        """
        lines: List[str] = []

        def family(
            kind: str, store: Dict[Tuple[str, Labels], object]
        ) -> None:
            by_name: Dict[str, List[Tuple[Labels, object]]] = {}
            for (name, labels), metric in store.items():
                by_name.setdefault(name, []).append((labels, metric))
            for name in sorted(by_name):
                lines.append(f"# TYPE {name} {kind}")
                for labels, metric in sorted(by_name[name]):
                    selector = _selector(labels)
                    if kind == "histogram":
                        for bound, cumulative in metric.bucket_totals():
                            le = _selector(
                                labels + (("le", _fmt(bound)),)
                            )
                            lines.append(
                                f"{name}_bucket{le} {cumulative}"
                            )
                        lines.append(
                            f"{name}_count{selector} {metric.count}"
                        )
                        lines.append(
                            f"{name}_sum{selector} {_fmt(metric.total)}"
                        )
                        if metric.count:
                            lines.append(
                                f"{name}_min{selector} {_fmt(metric.min)}"
                            )
                            lines.append(
                                f"{name}_max{selector} {_fmt(metric.max)}"
                            )
                    else:
                        lines.append(
                            f"{name}{selector} {_fmt(metric.value)}"
                        )

        family("counter", self._counters)
        family("gauge", self._gauges)
        family("histogram", self._histograms)
        return "\n".join(lines) + ("\n" if lines else "")

    def to_payload(self) -> dict:
        """Plain-JSON snapshot (deterministic; used by tests and exports)."""
        return {
            "counters": {
                name + _selector(labels): metric.value
                for (name, labels), metric in sorted(self._counters.items())
            },
            "gauges": {
                name + _selector(labels): metric.value
                for (name, labels), metric in sorted(self._gauges.items())
            },
            "histograms": {
                name + _selector(labels): {
                    "count": metric.count,
                    "sum": metric.total,
                }
                for (name, labels), metric in sorted(self._histograms.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)


_REGISTRY = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """The process-global registry the live event bus feeds."""
    return _REGISTRY


def reset_metrics() -> None:
    """Drop every live metric (test isolation)."""
    _REGISTRY.clear()


def render_store_metrics(store_path) -> str:
    """Replay a store's telemetry sidecar into text exposition format.

    The engine behind ``repro report <store> --metrics``: reads
    ``<store>.telemetry`` (truncation-tolerantly), folds every event
    through the same :meth:`MetricsRegistry.ingest` mapping the live bus
    uses, and dumps the result.  Returns an explanatory line instead when
    the sweep ran without telemetry.
    """
    from repro.campaigns.store import SIDECAR_TELEMETRY, open_store
    from repro.telemetry.events import iter_jsonl_payloads

    path = open_store(store_path).sidecar_path(SIDECAR_TELEMETRY)
    if not path.exists():
        return (
            f"no telemetry sidecar at {path} — run the sweep with "
            f"--telemetry to record one"
        )
    registry = MetricsRegistry().replay(iter_jsonl_payloads(path))
    if not len(registry):
        return f"telemetry sidecar {path} holds no parseable events"
    return registry.render_text()
