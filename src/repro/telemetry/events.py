"""The telemetry event bus: typed JSONL spans, counters, and gauges.

Every instrumented site in the stack — the match executor's round play
path, the surface cache's hit/miss accounting, the campaign runner's
lifecycle, the dispatcher's lease protocol, the fault injector — funnels
through :func:`emit_event` here.  The bus has exactly one hot-path cost
when telemetry is off (the default): reading one module-global ``enabled``
flag.  Nothing is formatted, allocated, or written until an operator opts
in, which is how the layer keeps the ARM-MTE lesson — overhead claims are
only credible when the measurement layer itself is near-zero-cost.

Emitters:

* :class:`NullEmitter` — the default; ``enabled`` is False and every site
  short-circuits before building an event.
* :class:`JsonlEmitter` — appends events to a ``<store>.telemetry``
  sidecar, one JSON object per line, flushed per event (the same
  crash-tolerant journal discipline as the dispatch ledger).
* :class:`PipeEmitter` — the worker side: forwards each event payload over
  the worker's existing dispatch pipe; the parent merges every worker's
  stream into the one sidecar, stamping worker IDs.
* :class:`BufferEmitter` — in-memory capture for tests and in-process
  inspection.

Events are plain JSON (``kind="telemetry"``), so a sidecar can be replayed
into the metrics registry or the status view by any process, any time —
no live sweep required.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

PathLike = Union[str, Path]

#: The ``kind`` discriminator telemetry lines carry in a JSONL sidecar
#: (lease events use ``"lease_event"``, campaign results
#: ``"campaign_record"`` — one namespace, three writers).
EVENT_KIND = "telemetry"

#: Event types the bus carries.
TYPE_SPAN = "span"
TYPE_COUNTER = "counter"
TYPE_GAUGE = "gauge"
TYPE_HISTOGRAM = "histogram"
EVENT_TYPES = (TYPE_SPAN, TYPE_COUNTER, TYPE_GAUGE, TYPE_HISTOGRAM)


def telemetry_path_for(store_path: PathLike) -> Path:
    """The file-backend ``.telemetry`` sidecar convention.

    The sibling of :func:`repro.campaigns.dispatch.ledger_path_for` — one
    store, one family of sidecars.  Legacy helper: consumers that know
    their store should ask it via ``store.sidecar_path(SIDECAR_TELEMETRY)``,
    which directory backends resolve inside the store tree instead.
    """
    store_path = Path(store_path)
    return store_path.with_name(store_path.name + ".telemetry")


@dataclass(frozen=True)
class TelemetryEvent:
    """One bus event, as journaled.

    ``value`` is the event's one number: elapsed seconds for a span, the
    increment for a counter, the level for a gauge.  ``campaign`` /
    ``attempt`` tie execution events to the sweep's unit of work;
    ``worker`` is stamped by the parent when merging a worker's stream.
    ``fields`` carries low-cardinality context (a phase label, a fault
    kind, a game count) — never anything results depend on.
    """

    name: str
    type: str = TYPE_COUNTER
    value: float = 1.0
    wall: float = 0.0
    pid: int = 0
    worker: Optional[int] = None
    campaign: Optional[str] = None
    attempt: Optional[int] = None
    fields: Dict[str, object] = field(default_factory=dict)

    def to_payload(self) -> dict:
        """One JSONL line's worth of plain JSON."""
        payload: Dict[str, object] = {
            "kind": EVENT_KIND,
            "name": self.name,
            "type": self.type,
            "value": self.value,
            "wall": self.wall,
            "pid": self.pid,
        }
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.campaign is not None:
            payload["campaign"] = self.campaign
        if self.attempt is not None:
            payload["attempt"] = self.attempt
        if self.fields:
            payload["fields"] = dict(self.fields)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "TelemetryEvent":
        """Rebuild an event written by :meth:`to_payload`."""
        return cls(
            name=str(payload["name"]),
            type=str(payload.get("type", TYPE_COUNTER)),
            value=float(payload.get("value", 1.0)),
            wall=float(payload.get("wall", 0.0)),
            pid=int(payload.get("pid", 0)),
            worker=payload.get("worker"),
            campaign=payload.get("campaign"),
            attempt=payload.get("attempt"),
            fields=dict(payload.get("fields") or {}),
        )


# -- emitters ----------------------------------------------------------


class NullEmitter:
    """The disabled bus: every instrumented site short-circuits on it."""

    enabled = False

    def emit_payload(self, payload: dict) -> None:  # pragma: no cover
        """Never called — sites check ``enabled`` first."""

    def close(self) -> None:
        pass


class JsonlEmitter:
    """Appends events to a JSONL journal, one flushed line per event.

    The handle stays open for the emitter's lifetime (a sweep), so the
    per-event cost is one ``json.dumps`` + one buffered write + flush —
    the same discipline as the dispatch ledger's journal.
    """

    enabled = True

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")

    def emit_payload(self, payload: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class PipeEmitter:
    """The worker side of the bus: events ride the dispatch pipe home.

    ``send`` is the worker's one serialised pipe sender (shared with the
    heartbeat thread); each event becomes a ``("telemetry", worker_id,
    payload)`` message the parent merges into the sidecar.  A worker
    SIGKILLed mid-send loses at most the event in flight — the sidecar's
    truncation-tolerant reader skips any partial line.
    """

    enabled = True

    def __init__(self, send: Callable[[tuple], None], worker_id: int):
        self._send = send
        self._worker_id = worker_id

    def emit_payload(self, payload: dict) -> None:
        self._send(("telemetry", self._worker_id, payload))

    def close(self) -> None:
        pass


class BufferEmitter:
    """In-memory event capture (tests, in-process inspection)."""

    enabled = True

    def __init__(self) -> None:
        self.payloads: List[dict] = []

    def emit_payload(self, payload: dict) -> None:
        self.payloads.append(payload)

    def events(self) -> List[TelemetryEvent]:
        return [TelemetryEvent.from_payload(p) for p in self.payloads]

    def close(self) -> None:
        pass


#: The one shared disabled emitter (identity-compared by reset logic).
NULL_EMITTER = NullEmitter()

_EMITTER = NULL_EMITTER


def set_emitter(new_emitter) -> object:
    """Install the process's bus emitter; returns the previous one.

    The runner installs a :class:`JsonlEmitter` for a telemetry-enabled
    sweep and restores the previous emitter afterwards; dispatch workers
    install a :class:`PipeEmitter` at bring-up.
    """
    global _EMITTER
    previous = _EMITTER
    _EMITTER = new_emitter if new_emitter is not None else NULL_EMITTER
    return previous


def emitter():
    """The active bus emitter (the :data:`NULL_EMITTER` when disabled)."""
    return _EMITTER


def telemetry_enabled() -> bool:
    """The one flag every instrumented site checks before doing anything."""
    return _EMITTER.enabled


def emit_event(
    name: str,
    *,
    type: str = TYPE_COUNTER,
    value: float = 1.0,
    campaign: Optional[str] = None,
    attempt: Optional[int] = None,
    worker: Optional[int] = None,
    **fields: object,
) -> None:
    """Emit one event onto the bus (no-op while telemetry is disabled).

    Also feeds the process's live metrics registry, so an in-process dump
    at sweep end and a sidecar replay agree.
    """
    if not _EMITTER.enabled:
        return
    payload = TelemetryEvent(
        name=name,
        type=type,
        value=float(value),
        wall=time.time(),
        pid=os.getpid(),
        worker=worker,
        campaign=campaign,
        attempt=attempt,
        fields=fields,
    ).to_payload()
    _EMITTER.emit_payload(payload)
    from repro.telemetry.metrics import metrics_registry

    metrics_registry().ingest(payload)


def counter(name: str, value: float = 1.0, **kwargs: object) -> None:
    """Emit a counter increment (no-op while disabled)."""
    if not _EMITTER.enabled:
        return
    emit_event(name, type=TYPE_COUNTER, value=value, **kwargs)  # type: ignore[arg-type]


def gauge(name: str, value: float, **kwargs: object) -> None:
    """Emit a gauge level (no-op while disabled)."""
    if not _EMITTER.enabled:
        return
    emit_event(name, type=TYPE_GAUGE, value=value, **kwargs)  # type: ignore[arg-type]


def histogram(name: str, value: float, **kwargs: object) -> None:
    """Emit one histogram observation (no-op while disabled).

    Unlike a span — whose value is always elapsed seconds — a histogram
    observes an arbitrary distribution (e.g. ``stack.width``: how many
    campaign rounds each fused simulation pass carried).
    """
    if not _EMITTER.enabled:
        return
    emit_event(name, type=TYPE_HISTOGRAM, value=value, **kwargs)  # type: ignore[arg-type]


@contextmanager
def span(
    name: str,
    *,
    campaign: Optional[str] = None,
    attempt: Optional[int] = None,
    **fields: object,
):
    """Time a block and emit it as a span event (no-op while disabled)."""
    if not _EMITTER.enabled:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        emit_event(
            name,
            type=TYPE_SPAN,
            value=time.perf_counter() - t0,
            campaign=campaign,
            attempt=attempt,
            **fields,  # type: ignore[arg-type]
        )


# -- reading journals back ---------------------------------------------


def iter_jsonl_payloads(path: PathLike) -> Iterator[dict]:
    """Yield the parseable dict lines of a JSONL journal, skipping damage.

    The one truncation-tolerant reader behind the telemetry sidecar, the
    dispatch ledger, and the campaign store: a journal may be cut at *any*
    byte offset — mid-line, mid-first-line, even mid-UTF-8-sequence (a
    worker SIGKILLed mid-write stops wherever the kernel stopped it) — and
    the surviving prefix of complete lines must still parse.  Reading with
    ``errors="replace"`` keeps a torn multi-byte character from raising
    ``UnicodeDecodeError`` before line splitting even starts; the mangled
    line then fails JSON parsing and is skipped like any other tear.
    """
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict):
                yield payload


def read_telemetry(path: PathLike) -> List[TelemetryEvent]:
    """Parse a telemetry sidecar back into events (truncation-tolerant)."""
    return [
        TelemetryEvent.from_payload(payload)
        for payload in iter_jsonl_payloads(path)
        if payload.get("kind") == EVENT_KIND
    ]
