"""The one stdlib-logging configurator for CLI and library progress lines.

Progress and status output used to be ad-hoc ``print()`` calls scattered
through the CLI; they now flow through the ``"repro"`` logger hierarchy,
configured in exactly one place so ``--verbose`` / ``--quiet`` mean the
same thing everywhere:

* quiet (``-q``): warnings and errors only;
* default: progress lines, bare (no timestamps — the CLI's output is the
  interface, so INFO lines must stay byte-compatible with what scripts
  and CI greps already consume);
* verbose (``-v``): DEBUG from every subsystem, with timestamps, level,
  and logger name — the dispatcher's lease decisions, the runner's cache
  warming, the telemetry layer's bring-up.

The handler resolves ``sys.stdout`` at emit time rather than capturing it
at configure time, so output lands wherever stdout currently points —
pytest's capture, a ``tee`` pipe, a real terminal — exactly as ``print``
would.
"""

from __future__ import annotations

import logging
import sys

#: Root of the library's logger hierarchy.
ROOT_LOGGER = "repro"

_VERBOSE_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_PLAIN_FORMAT = "%(message)s"


class _CurrentStdoutHandler(logging.StreamHandler):
    """A stream handler bound to *current* ``sys.stdout`` at emit time."""

    def __init__(self) -> None:
        super().__init__(sys.stdout)

    def emit(self, record: logging.LogRecord) -> None:
        self.stream = sys.stdout
        super().emit(record)


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (idempotent, cheap)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(verbosity: int = 0) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree for one CLI invocation.

    ``verbosity`` is ``--verbose`` count minus ``--quiet`` count:
    negative → WARNING, 0 → INFO with bare messages, positive → DEBUG with
    full context.  Reconfiguring replaces this module's handler rather
    than stacking another, so repeated CLI calls in one process (tests)
    never double-print.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if isinstance(handler, _CurrentStdoutHandler):
            logger.removeHandler(handler)
    handler = _CurrentStdoutHandler()
    if verbosity > 0:
        level = logging.DEBUG
        handler.setFormatter(logging.Formatter(_VERBOSE_FORMAT))
    elif verbosity < 0:
        level = logging.WARNING
        handler.setFormatter(logging.Formatter(_PLAIN_FORMAT))
    else:
        level = logging.INFO
        handler.setFormatter(logging.Formatter(_PLAIN_FORMAT))
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    # Engine internals (per-phase tournament narration under
    # ``repro.core``) are debug detail: surfaced with ``-v``, kept out of
    # the default progress stream, which is reserved for sweep-level lines.
    logging.getLogger(ROOT_LOGGER + ".core").setLevel(
        logging.DEBUG if verbosity > 0 else logging.WARNING
    )
    return logger


def reset_logging() -> None:
    """Undo :func:`configure_logging` — back to library-default logging.

    Removes this module's handler and restores level/propagation on the
    loggers :func:`configure_logging` touches, so embedding applications
    (and tests capturing via root-level handlers) see the tree exactly as
    if the CLI had never configured it.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if isinstance(handler, _CurrentStdoutHandler):
            logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True
    logging.getLogger(ROOT_LOGGER + ".core").setLevel(logging.NOTSET)
