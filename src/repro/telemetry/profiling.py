"""Opt-in per-campaign cProfile capture (``repro sweep --profile``).

Profiling is the one telemetry mode that is *not* near-zero-cost, so it is
its own explicit opt-in: when a profile directory is installed (in the
parent and, via the dispatcher's worker bring-up, in every worker), each
campaign attempt runs under :mod:`cProfile` and dumps its stats to
``<store>.profiles/<campaign_id>.attempt<k>.pstats`` — loadable with
``python -m pstats`` or :class:`pstats.Stats`.  Attempts are kept separate
so a retried campaign's slow first attempt is not averaged away.

Like every telemetry tier, profiling must never change results: the
profiler wraps :func:`repro.campaigns.runner.execute_campaign`'s work but
the campaign's record is byte-identical with or without it.
"""

from __future__ import annotations

import cProfile
from pathlib import Path
from typing import Optional, Union

PathLike = Union[str, Path]

_PROFILE_DIR: Optional[Path] = None


def profile_dir_for(store_path: PathLike) -> Path:
    """The file-backend ``.profiles`` directory convention.

    Legacy helper: consumers that know their store should ask it via
    ``store.sidecar_path(SIDECAR_PROFILES)``.
    """
    store_path = Path(store_path)
    return store_path.with_name(store_path.name + ".profiles")


def set_profile_dir(directory: Optional[PathLike]) -> Optional[Path]:
    """Install (or clear) the process's profile directory; returns previous."""
    global _PROFILE_DIR
    previous = _PROFILE_DIR
    _PROFILE_DIR = Path(directory) if directory is not None else None
    return previous


def profile_dir() -> Optional[Path]:
    """The active profile directory (None = profiling off, the default)."""
    return _PROFILE_DIR


class CampaignProfiler:
    """Profiles one campaign attempt and dumps its stats on exit.

    A no-op context manager while no profile directory is installed, so
    the execution choke point can use it unconditionally.
    """

    def __init__(self, campaign_id: str, attempt: int):
        self.campaign_id = campaign_id
        self.attempt = attempt
        self._profiler: Optional[cProfile.Profile] = None

    def __enter__(self) -> "CampaignProfiler":
        if _PROFILE_DIR is not None:
            self._profiler = cProfile.Profile()
            self._profiler.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._profiler is None:
            return
        self._profiler.disable()
        directory = _PROFILE_DIR
        if directory is None:  # pragma: no cover - cleared mid-campaign
            return
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.campaign_id}.attempt{self.attempt}.pstats"
        self._profiler.dump_stats(path)
