"""Live sweep status: fuse store + ledger + telemetry into one view.

``repro status <store>`` answers the question the launch line leaves open
for hours: *how is my sweep doing?* — without touching the sweep itself.
Everything here is read-only over the three journals a sweep maintains:

* the **store** (``<store>``) — authoritative terminal outcomes;
* the **ledger** (``<store>.ledger``) — lease states: what is running
  right now, what was requeued, what was quarantined;
* the **telemetry sidecar** (``<store>.telemetry``) — the event stream,
  used here for completion timing.

The ETA is EWMA-based: inter-completion intervals are smoothed with an
exponentially weighted moving average, so the estimate tracks the fleet's
*current* pace (late-sweep stragglers, backoff storms) instead of the
whole-run mean.  All readers are truncation-tolerant, so ``status`` is
safe to run — and re-run, via ``--watch`` — while the sweep is mid-write
in another process.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Union

from repro.telemetry.events import iter_jsonl_payloads

PathLike = Union[str, Path]

#: EWMA smoothing factor for inter-completion intervals; 0.3 weights the
#: last ~6 completions, enough to track pace changes without jitter.
EWMA_ALPHA = 0.3

#: Leases silent longer than this are reported as stalled rather than
#: running — a crashed sweep should not claim live workers forever.
STALE_LEASE_SECONDS = 120.0


def ewma_interval(walls: List[float], alpha: float = EWMA_ALPHA) -> Optional[float]:
    """EWMA of the gaps between successive completion timestamps.

    ``None`` until two completions exist — no pace, no estimate.  Zero
    gaps (two campaigns finishing inside one wall tick) are folded in as
    observed; the EWMA keeps the result positive as long as any gap was.
    """
    if len(walls) < 2:
        return None
    ordered = sorted(walls)
    estimate: Optional[float] = None
    for earlier, later in zip(ordered, ordered[1:]):
        gap = max(0.0, later - earlier)
        estimate = gap if estimate is None else (
            alpha * gap + (1.0 - alpha) * estimate
        )
    return estimate


@dataclass(frozen=True)
class StatusSnapshot:
    """One moment of a sweep, fused from its three journals."""

    store: str
    total: int
    done: int
    failed: int
    running: int
    queued: int
    stalled: int
    retries: int
    workers: int
    campaigns_per_minute: float
    eta_seconds: Optional[float]
    last_event_age: Optional[float]
    telemetry_events: int
    running_ids: List[str] = field(default_factory=list)
    stacked_rounds: int = 0
    stack_width_mean: Optional[float] = None

    @property
    def finished(self) -> int:
        return self.done + self.failed

    @property
    def complete(self) -> bool:
        return self.total > 0 and self.finished >= self.total

    def to_payload(self) -> dict:
        """Plain-JSON form (``repro status --json``)."""
        return {
            "store": self.store,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "running": self.running,
            "queued": self.queued,
            "stalled": self.stalled,
            "retries": self.retries,
            "workers": self.workers,
            "campaigns_per_minute": round(self.campaigns_per_minute, 2),
            "eta_seconds": (
                round(self.eta_seconds, 1)
                if self.eta_seconds is not None else None
            ),
            "last_event_age": (
                round(self.last_event_age, 1)
                if self.last_event_age is not None else None
            ),
            "telemetry_events": self.telemetry_events,
            "stacked_rounds": self.stacked_rounds,
            "stack_width_mean": (
                round(self.stack_width_mean, 2)
                if self.stack_width_mean is not None else None
            ),
        }


def snapshot(store_path: PathLike, *, now: Optional[float] = None) -> StatusSnapshot:
    """Fuse a store and its sidecars into one :class:`StatusSnapshot`.

    Works on any store — mid-sweep (live counts and an ETA), finished
    (everything done, ETA gone), quarantine-heavy (failures front and
    centre), or telemetry-less (ledger and store still carry the counts).
    """
    from repro.campaigns.dispatch import TaskLedger
    from repro.campaigns.store import (
        SIDECAR_LEDGER,
        SIDECAR_TELEMETRY,
        open_store,
    )

    now = time.time() if now is None else now
    # The backend is sniffed from disk, so `repro status` works unchanged
    # on a JSONL file, a sharded directory, or a SQLite store — and asks
    # the backend where its ledger/telemetry sidecars live.
    store = open_store(store_path)
    grid, records = store.load()

    done_ids = {r.campaign_id for r in records if r.ok}
    failed_ids = {r.campaign_id for r in records if not r.ok}
    total = grid.size if grid is not None else len(records)
    retries = sum(max(0, r.attempts - 1) for r in records)

    # Replay the lease journal: the last event per campaign is its state.
    lease_events = TaskLedger.read_events(store.sidecar_path(SIDECAR_LEDGER))
    last_lease: Dict[str, dict] = {}
    completion_walls: List[float] = []
    workers_running: Dict[int, str] = {}
    last_wall: Optional[float] = None
    for event in lease_events:
        campaign = str(event.get("id", ""))
        if campaign:
            last_lease[campaign] = event
        wall = event.get("wall")
        if isinstance(wall, (int, float)):
            last_wall = wall if last_wall is None else max(last_wall, wall)
            if event.get("event") in ("completed", "quarantined"):
                completion_walls.append(float(wall))
    # Ledger retries (attempt > 1 on any event) cover campaigns that are
    # still mid-retry and therefore have no stored record yet.
    ledger_retries = sum(
        max(0, int(e.get("attempt") or 1) - 1)
        for e in last_lease.values()
    )
    retries = max(retries, ledger_retries)

    running_ids: List[str] = []
    stalled = 0
    for campaign, event in last_lease.items():
        if campaign in done_ids or campaign in failed_ids:
            continue
        if event.get("status") != "leased":
            continue
        wall = event.get("wall")
        if isinstance(wall, (int, float)) and now - wall > STALE_LEASE_SECONDS:
            stalled += 1
            continue
        running_ids.append(campaign)
        worker = event.get("worker")
        if worker is not None:
            workers_running[int(worker)] = campaign

    # The telemetry sidecar supplies completion walls too — an inline
    # (jobs=1) sweep journals no ledger, but its campaign.* events carry
    # the same pace signal.
    telemetry_events = 0
    stacked_rounds = 0
    stack_width_sum = 0.0
    for payload in iter_jsonl_payloads(store.sidecar_path(SIDECAR_TELEMETRY)):
        if payload.get("kind") != "telemetry":
            continue
        telemetry_events += 1
        name = str(payload.get("name", ""))
        # Fusion accounting of stacked sweeps (`--exec-mode stacked`): how
        # many fused rounds ran and how wide they were on average.
        if name == "stacked.rounds":
            stacked_rounds += int(payload.get("value", 1))
        elif name == "stack.width":
            stack_width_sum += float(payload.get("value", 0.0))
        wall = payload.get("wall")
        if isinstance(wall, (int, float)):
            last_wall = wall if last_wall is None else max(last_wall, wall)
            if not lease_events and str(payload.get("name", "")).startswith(
                "campaign."
            ):
                completion_walls.append(float(wall))

    done = len(done_ids)
    failed = len(failed_ids)
    running = len(running_ids)
    queued = max(0, total - done - failed - running - stalled)

    interval = ewma_interval(completion_walls)
    remaining = queued + running + stalled
    if interval is not None and interval > 0:
        rate = 60.0 / interval
        eta = remaining * interval if remaining else None
    else:
        rate = 0.0
        eta = None

    return StatusSnapshot(
        store=str(store.path),
        total=total,
        done=done,
        failed=failed,
        running=running,
        queued=queued,
        stalled=stalled,
        retries=retries,
        workers=len(workers_running),
        campaigns_per_minute=rate,
        eta_seconds=eta,
        last_event_age=(now - last_wall) if last_wall is not None else None,
        telemetry_events=telemetry_events,
        running_ids=sorted(running_ids),
        stacked_rounds=stacked_rounds,
        stack_width_mean=(
            stack_width_sum / stacked_rounds if stacked_rounds else None
        ),
    )


# -- rendering ----------------------------------------------------------


def _bar(fraction: float, width: int = 32) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _duration(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_status(snap: StatusSnapshot) -> str:
    """The snapshot as the multi-line block ``repro status`` prints."""
    fraction = snap.finished / snap.total if snap.total else 0.0
    lines = [
        f"sweep {snap.store} — {snap.done}/{snap.total} done, "
        f"{snap.failed} failed, {snap.running} running, "
        f"{snap.queued} queued"
        + (f", {snap.stalled} stalled" if snap.stalled else ""),
        f"[{_bar(fraction)}] {100.0 * fraction:5.1f}%",
    ]
    pace = (
        f"throughput {snap.campaigns_per_minute:.1f} campaigns/min (EWMA)"
        if snap.campaigns_per_minute > 0
        else "throughput n/a (fewer than two completions on record)"
    )
    if snap.complete:
        lines.append(pace + "   finished")
    elif snap.eta_seconds is not None:
        lines.append(pace + f"   ETA {_duration(snap.eta_seconds)}")
    else:
        lines.append(pace)
    detail = f"retries {snap.retries}, workers {snap.workers}"
    if snap.last_event_age is not None:
        detail += f", last event {_duration(snap.last_event_age)} ago"
    detail += f", telemetry events {snap.telemetry_events}"
    lines.append(detail)
    if snap.stacked_rounds:
        lines.append(
            f"stacked: {snap.stacked_rounds} fused rounds, "
            f"mean width {snap.stack_width_mean:.1f}"
        )
    if snap.running_ids:
        shown = ", ".join(snap.running_ids[:4])
        if len(snap.running_ids) > 4:
            shown += f", +{len(snap.running_ids) - 4} more"
        lines.append(f"running: {shown}")
    return "\n".join(lines)


def watch(
    store_path: PathLike,
    *,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> StatusSnapshot:
    """Render the status block in place until the sweep finishes.

    Refreshes every ``interval`` seconds, rewriting the block with ANSI
    cursor movement when the stream is a TTY (plain re-prints otherwise,
    so logs stay readable).  ``iterations`` bounds the loop for tests; the
    loop also ends on its own once the sweep is complete.  Returns the
    last snapshot taken.
    """
    stream = sys.stdout if stream is None else stream
    is_tty = bool(getattr(stream, "isatty", lambda: False)())
    previous_lines = 0
    count = 0
    while True:
        snap = snapshot(store_path)
        block = render_status(snap)
        if is_tty and previous_lines:
            # Move to the top of the previous block and clear downwards.
            stream.write(f"\x1b[{previous_lines}F\x1b[J")
        stream.write(block + "\n")
        stream.flush()
        previous_lines = block.count("\n") + 1
        count += 1
        if snap.complete:
            return snap
        if iterations is not None and count >= iterations:
            return snap
        time.sleep(interval)


# -- in-process live progress (sweep --progress) ------------------------


class LiveProgress:
    """A one-line, in-place progress meter for a running sweep.

    Plugs into :class:`repro.campaigns.runner.CampaignRunner`'s progress
    callback: each completed campaign updates an EWMA of inter-completion
    intervals and rewrites a single ``\\r`` status line — done/failed
    counts, throughput, ETA — instead of scrolling one line per campaign.
    """

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = sys.stdout if stream is None else stream
        self.failed = 0
        self._last_finish: Optional[float] = None
        self._interval: Optional[float] = None

    def __call__(self, finished: int, total: int, record) -> None:
        now = time.perf_counter()
        if self._last_finish is not None:
            gap = max(0.0, now - self._last_finish)
            self._interval = gap if self._interval is None else (
                EWMA_ALPHA * gap + (1.0 - EWMA_ALPHA) * self._interval
            )
        self._last_finish = now
        if not record.ok:
            self.failed += 1
        remaining = max(0, total - finished)
        parts = [
            f"[{_bar(finished / total if total else 0.0, 24)}]",
            f"{finished}/{total}",
        ]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self._interval and self._interval > 0:
            parts.append(f"{60.0 / self._interval:.1f}/min")
            if remaining:
                parts.append(f"ETA {_duration(remaining * self._interval)}")
        line = " ".join(parts)
        # Pad over any longer previous line before the carriage return.
        self.stream.write("\r" + line.ljust(78))
        self.stream.flush()

    def close(self) -> None:
        """Finish the in-place line so following output starts clean."""
        self.stream.write("\n")
        self.stream.flush()


# -- sidecar replay (the convergence check) -----------------------------


def sidecar_counts(telemetry_path: PathLike) -> dict:
    """Replay a telemetry sidecar into terminal campaign counts.

    The acceptance check for the observability layer: the sidecar's
    ``campaign.done`` / ``campaign.failed`` events — last write per
    campaign wins, exactly like the store — must reproduce the same
    done/failed/retry totals as ``repro report --failures`` computes from
    the records themselves.
    """
    last: Dict[str, dict] = {}
    for payload in iter_jsonl_payloads(telemetry_path):
        if payload.get("kind") != "telemetry":
            continue
        name = payload.get("name")
        if name not in ("campaign.done", "campaign.failed"):
            continue
        campaign = payload.get("campaign")
        if campaign:
            last[str(campaign)] = payload
    done = sum(1 for p in last.values() if p["name"] == "campaign.done")
    attempts = {
        campaign: int(p.get("attempt") or 1) for campaign, p in last.items()
    }
    return {
        "done": done,
        "failed": len(last) - done,
        "retried": sum(1 for a in attempts.values() if a > 1),
        "total_retries": sum(max(0, a - 1) for a in attempts.values()),
    }
