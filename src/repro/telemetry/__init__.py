"""Structured observability for fleet-scale campaign sweeps.

A 10,000-campaign sweep used to be a black box between the launch line and
the final summary table — observable only by tailing the ``.ledger``
sidecar by hand.  This package is the instrumentation layer ROADMAP item 1
calls "live progress/ETA reporting", built the way simulator-scale systems
(gem5's stats framework is the canonical exemplar) earn trust: a typed
event stream, an aggregating metrics registry, and a live status view —
all demonstrably near-zero-cost when disabled and provably incapable of
changing results.

Four modules, one contract:

* :mod:`repro.telemetry.events` — the **event bus**: typed span/counter/
  gauge events emitted from the executor, the surface cache, the runner,
  and the dispatcher, journaled as JSONL into a ``<store>.telemetry``
  sidecar.  Worker events ride the existing per-worker dispatch pipes and
  are merged by the parent.  Disabled (the default) the bus is a no-op
  emitter behind a single ``enabled`` flag check.
* :mod:`repro.telemetry.metrics` — the **metrics registry**: counters,
  gauges, and histograms fed live by the bus (or by replaying a sidecar),
  dumped in text exposition format via ``repro report --metrics``.
* :mod:`repro.telemetry.status` — the **live view**: fuses store + ledger
  + telemetry sidecar into done/running/queued/failed counts, throughput,
  and an EWMA-based ETA (``repro status``, ``sweep --progress``).
* :mod:`repro.telemetry.log` — the one stdlib-``logging`` configurator the
  CLI and runner route their progress/status lines through
  (``--verbose`` / ``--quiet``).
* :mod:`repro.telemetry.profiling` — the opt-in per-campaign cProfile
  hook (``sweep --profile``).

The never-affect-results contract: telemetry records wall-clock facts
*about* campaigns, never anything a campaign's outcome depends on; nothing
here touches :meth:`repro.campaigns.store.CampaignRecord.stable_payload`,
and the test suite asserts telemetry-on sweeps are byte-identical to
telemetry-off ones.
"""

from repro.telemetry.events import (
    BufferEmitter,
    JsonlEmitter,
    NullEmitter,
    PipeEmitter,
    TelemetryEvent,
    counter,
    emit_event,
    emitter,
    gauge,
    iter_jsonl_payloads,
    read_telemetry,
    set_emitter,
    span,
    telemetry_enabled,
    telemetry_path_for,
)
from repro.telemetry.log import configure_logging, get_logger, reset_logging
from repro.telemetry.metrics import (
    MetricsRegistry,
    metrics_registry,
    render_store_metrics,
    reset_metrics,
)
from repro.telemetry.profiling import (
    profile_dir,
    profile_dir_for,
    set_profile_dir,
)
from repro.telemetry.status import (
    LiveProgress,
    StatusSnapshot,
    render_status,
    sidecar_counts,
    snapshot,
    watch,
)

__all__ = [
    "BufferEmitter",
    "JsonlEmitter",
    "LiveProgress",
    "MetricsRegistry",
    "NullEmitter",
    "PipeEmitter",
    "StatusSnapshot",
    "TelemetryEvent",
    "configure_logging",
    "counter",
    "emit_event",
    "emitter",
    "gauge",
    "get_logger",
    "iter_jsonl_payloads",
    "metrics_registry",
    "profile_dir",
    "profile_dir_for",
    "read_telemetry",
    "render_status",
    "render_store_metrics",
    "reset_logging",
    "reset_metrics",
    "reset_telemetry",
    "set_emitter",
    "set_profile_dir",
    "sidecar_counts",
    "snapshot",
    "span",
    "telemetry_enabled",
    "telemetry_path_for",
    "watch",
]


def reset_telemetry() -> None:
    """Restore every process-global telemetry tier to its boot state.

    The sibling of :func:`repro.caching.clear_process_caches` for tests:
    detaches the active emitter (closing it), clears the metrics registry,
    drops any profile directory, and de-configures CLI logging.
    """
    from repro.telemetry import events, profiling

    previous = events.set_emitter(events.NULL_EMITTER)
    if previous is not events.NULL_EMITTER:
        previous.close()
    reset_metrics()
    profiling.set_profile_dir(None)
    reset_logging()
