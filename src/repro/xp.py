"""``repro.xp`` — the array namespace the simulation hot path computes in.

Hot modules do ``import repro.xp as xp`` and call ``xp.zeros`` /
``xp.cumsum`` / ``xp.maximum(..., out=...)`` exactly as they would numpy.
Attribute lookups forward to the namespace of the *active*
:class:`repro.backend.ArrayBackend` (numpy by default; see
:func:`repro.backend.set_array_backend` and ``REPRO_ARRAY_BACKEND``).

Forwarded attributes are cached into this module's globals on first use,
so steady-state access is a plain module attribute read — zero overhead
over ``import numpy as np`` on the default backend.  Switching backends
purges the cache (:func:`_rebind`), so the next lookup re-forwards.
"""

from __future__ import annotations

_FORWARDED = set()


def __getattr__(name: str):
    if name.startswith("__"):
        raise AttributeError(name)
    from repro.backend import active_namespace

    value = getattr(active_namespace(), name)
    globals()[name] = value
    _FORWARDED.add(name)
    return value


def _rebind() -> None:
    """Drop every cached forward (called on backend switch)."""
    for name in _FORWARDED:
        globals().pop(name, None)
    _FORWARDED.clear()
