"""Deterministic fault injection for chaos-testing the campaign fleet.

The dispatcher (:mod:`repro.campaigns.dispatch`) exists to survive exactly
the failures a preemptible cloud fleet produces: workers hard-killed mid
campaign, campaigns hanging past any reasonable deadline, transient errors
that succeed on retry, and I/O blips while checkpointing results.  This
module *manufactures* those failures reproducibly, so a chaos run is an
ordinary deterministic test: a seeded :class:`FaultPlan` decides — as a
pure function of ``(seed, campaign_id, attempt)`` — which campaigns fail,
how, and how many times before succeeding.  CI asserts that a sweep under
injected faults converges to the same store contents as a fault-free run
(modulo attempt metadata).

Fault kinds (``FaultPlan.kinds``):

* ``"transient"`` — the attempt raises :class:`~repro.errors.FaultInjected`
  (an ordinary campaign failure; the dispatcher retries with backoff).
* ``"crash"`` — the worker process dies via ``os._exit`` (no cleanup, no
  record; the dispatcher sees the pipe close and reclaims the lease).
* ``"sigkill"`` — the worker SIGKILLs itself mid-campaign (uncatchable,
  the closest simulation of the OOM killer or a spot preemption).
* ``"hang"`` — the attempt sleeps for :attr:`FaultPlan.hang_seconds`; with
  a task timeout set the dispatcher declares the lease expired and kills
  the worker, otherwise the attempt fails with
  :class:`~repro.errors.CampaignTimeout` when the sleep ends.

Process-killing kinds only actually kill inside dispatcher worker
processes (marked via :func:`mark_dispatch_worker`); executed inline —
``jobs=1`` or single-campaign sweeps — they degrade to a raised
:class:`~repro.errors.FaultInjected` / :class:`~repro.errors.CampaignTimeout`
so chaos plans stay runnable (and equally convergent) without a pool.

Store-append faults are a separate stream (:attr:`FaultPlan.store_rate`):
they fire in the *parent* while checkpointing a finished campaign, where
the runner retries the append.

The active plan is process-global (:func:`set_active_fault_plan`) so
:func:`repro.campaigns.runner.execute_campaign` — the single choke point
every sweep goes through — can consult it without threading a parameter
through every driver; the runner installs it in workers via the dispatcher
and restores the previous plan when a sweep ends.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
import time
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from repro.errors import CampaignTimeout, FaultInjected, ReproError

#: Execution-fault kinds a plan may draw from.
FAULT_KINDS = ("transient", "crash", "sigkill", "hang")


def _stream(seed: int, *parts: object) -> random.Random:
    """A private RNG per (seed, label, campaign) — stable across processes.

    Seeded from a SHA-256 of the key so two campaigns (or the exec vs store
    streams of one campaign) never share a sequence, and the same plan
    replayed in a spawn worker, a resume run, or CI draws the same faults.
    """
    key = ":".join(str(p) for p in (seed, *parts))
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of injected failures.

    Attributes:
        seed: master seed; every drawn fault is a pure function of
            ``(seed, campaign_id)``.
        rate: fraction of campaigns that get faulted at all.
        kinds: execution-fault kinds to draw from (see :data:`FAULT_KINDS`).
        max_faults: faults per chosen campaign before it succeeds — a sweep
            with ``max_retries >= max_faults`` always converges.
        hang_seconds: how long a ``"hang"`` fault sleeps in a worker.
        store_rate: fraction of campaigns whose *first* store append fails
            (a separate stream from the execution faults).
        targets: explicit per-campaign fault sequences, overriding the
            seeded choice — ``{campaign_id: ("sigkill",)}`` faults exactly
            that campaign's first attempt and nothing else.
    """

    seed: int = 0
    rate: float = 1.0
    kinds: Tuple[str, ...] = ("transient",)
    max_faults: int = 1
    hang_seconds: float = 60.0
    store_rate: float = 0.0
    targets: Optional[Dict[str, Tuple[str, ...]]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.kinds, tuple):
            object.__setattr__(self, "kinds", tuple(self.kinds))
        unknown = [k for k in self.kinds if k not in FAULT_KINDS]
        if unknown:
            raise ReproError(
                f"unknown fault kind(s) {unknown}; known: {list(FAULT_KINDS)}"
            )
        for name in ("rate", "store_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {value}")
        if self.max_faults < 0:
            raise ReproError(f"max_faults must be >= 0, got {self.max_faults}")
        if self.hang_seconds < 0:
            raise ReproError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )
        if self.targets is not None:
            bad = [
                k for seq in self.targets.values() for k in seq
                if k not in FAULT_KINDS
            ]
            if bad:
                raise ReproError(
                    f"unknown fault kind(s) in targets: {bad}; "
                    f"known: {list(FAULT_KINDS)}"
                )

    # -- the deterministic draw ----------------------------------------

    def faults_for(self, campaign_id: str) -> Tuple[str, ...]:
        """The campaign's full fault sequence: attempt k suffers entry k-1.

        Attempts beyond the sequence succeed, so the sequence length is the
        number of retries the campaign needs.
        """
        if self.targets is not None:
            return tuple(self.targets.get(campaign_id, ()))
        if self.max_faults == 0 or not self.kinds:
            return ()
        rng = _stream(self.seed, "exec", campaign_id)
        if rng.random() >= self.rate:
            return ()
        count = rng.randint(1, self.max_faults)
        return tuple(rng.choice(self.kinds) for _ in range(count))

    def fault_for(self, campaign_id: str, attempt: int) -> Optional[str]:
        """The fault kind attempt ``attempt`` (1-based) suffers, if any."""
        sequence = self.faults_for(campaign_id)
        if 1 <= attempt <= len(sequence):
            return sequence[attempt - 1]
        return None

    def store_faults_for(self, campaign_id: str) -> int:
        """How many times this campaign's store append fails (0 or 1)."""
        if self.store_rate <= 0.0:
            return 0
        rng = _stream(self.seed, "store", campaign_id)
        return 1 if rng.random() < self.store_rate else 0

    def store_fault(self, campaign_id: str, append_attempt: int) -> bool:
        """Whether append attempt ``append_attempt`` (1-based) should fail."""
        return append_attempt <= self.store_faults_for(campaign_id)

    # -- CLI form ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from ``sweep --inject-faults`` syntax.

        Comma-separated ``key=value`` pairs; ``kinds`` joins with ``+``::

            seed=7,rate=1.0,kinds=crash+transient,max=2,hang=30,store=0.5
        """
        keys = {
            "seed": ("seed", int),
            "rate": ("rate", float),
            "max": ("max_faults", int),
            "hang": ("hang_seconds", float),
            "store": ("store_rate", float),
        }
        kwargs: Dict[str, object] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ReproError(
                    f"bad fault-plan entry {part!r}; expected key=value"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            if key == "kinds":
                kwargs["kinds"] = tuple(
                    k.strip() for k in value.split("+") if k.strip()
                )
            elif key in keys:
                name, cast = keys[key]
                try:
                    kwargs[name] = cast(value)
                except ValueError:
                    raise ReproError(
                        f"bad fault-plan value {part!r}; "
                        f"{key} takes a {cast.__name__}"
                    ) from None
            else:
                raise ReproError(
                    f"unknown fault-plan key {key!r}; known: "
                    f"{['kinds', *keys]}"
                )
        return cls(**kwargs)

    def describe(self) -> str:
        """The plan back in :meth:`parse` syntax (defaults omitted)."""
        defaults = {f.name: f.default for f in fields(FaultPlan)}
        parts = []
        if self.seed != defaults["seed"]:
            parts.append(f"seed={self.seed}")
        if self.rate != defaults["rate"]:
            parts.append(f"rate={self.rate}")
        if self.kinds != defaults["kinds"]:
            parts.append("kinds=" + "+".join(self.kinds))
        if self.max_faults != defaults["max_faults"]:
            parts.append(f"max={self.max_faults}")
        if self.hang_seconds != defaults["hang_seconds"]:
            parts.append(f"hang={self.hang_seconds}")
        if self.store_rate != defaults["store_rate"]:
            parts.append(f"store={self.store_rate}")
        if self.targets is not None:
            parts.append(f"targets={len(self.targets)} explicit")
        return ",".join(parts) or "defaults"


# -- process-global plumbing -------------------------------------------

_ACTIVE_PLAN: Optional[FaultPlan] = None
_IN_DISPATCH_WORKER = False


def set_active_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install the process's fault plan; returns the previous one."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    return previous


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan :func:`maybe_inject` currently consults (None = no chaos)."""
    return _ACTIVE_PLAN


def mark_dispatch_worker(flag: bool = True) -> None:
    """Tell this process it is a dispatcher worker.

    Only marked processes actually die for ``crash``/``sigkill`` faults;
    anywhere else those kinds degrade to raised exceptions so an inline
    chaos run cannot take down the driving process.
    """
    global _IN_DISPATCH_WORKER
    _IN_DISPATCH_WORKER = flag


def in_dispatch_worker() -> bool:
    return _IN_DISPATCH_WORKER


def maybe_inject(campaign_id: str, attempt: int) -> None:
    """Fire the active plan's fault for this attempt, if it schedules one.

    Called by :func:`repro.campaigns.runner.execute_campaign` before any
    real work, so a faulted attempt costs nothing but the fault itself.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    kind = plan.fault_for(campaign_id, attempt)
    if kind is not None:
        # Counted before _apply: a sigkill/crash fault never returns, and
        # the injection itself is the fact the telemetry stream needs.
        from repro.telemetry.events import counter as _telemetry_counter

        _telemetry_counter(
            "faults.injected", kind=kind, campaign=campaign_id, attempt=attempt
        )
        _apply(kind, plan, campaign_id, attempt)


def _apply(kind: str, plan: FaultPlan, campaign_id: str, attempt: int) -> None:
    where = f"campaign {campaign_id}, attempt {attempt}"
    if kind == "transient":
        raise FaultInjected(f"injected transient failure ({where})")
    if kind == "crash":
        if _IN_DISPATCH_WORKER:
            os._exit(70)  # hard death: no record, no cleanup, pipe closes
        raise FaultInjected(f"injected worker crash, simulated inline ({where})")
    if kind == "sigkill":
        if _IN_DISPATCH_WORKER:
            os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(60)  # pragma: no cover - SIGKILL never returns
        raise FaultInjected(f"injected SIGKILL, simulated inline ({where})")
    if kind == "hang":
        if _IN_DISPATCH_WORKER:
            # With a task timeout the dispatcher kills us long before the
            # sleep ends; without one, the attempt fails as a timeout so
            # the sweep still converges instead of wedging forever.
            time.sleep(plan.hang_seconds)
            raise CampaignTimeout(
                f"injected hang of {plan.hang_seconds}s outlived the sweep's "
                f"patience ({where})"
            )
        raise CampaignTimeout(f"injected hang, simulated inline ({where})")
    raise ReproError(f"unknown fault kind {kind!r}")  # pragma: no cover
