"""Seed and random-number-generator plumbing.

All stochastic components of the library take either an integer seed or a
:class:`numpy.random.Generator`.  Components that own sub-components derive
child generators with :func:`spawn` so that every figure in the paper
reproduction is bit-for-bit reproducible from a single integer.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a freshly seeded generator, an ``int`` a deterministic
    one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def child(rng: np.random.Generator) -> np.random.Generator:
    """Derive a single child generator from ``rng``."""
    return spawn(rng, 1)[0]
