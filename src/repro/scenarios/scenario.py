"""Declarative scenarios: named, hashable bundles of dynamic cloud conditions.

A :class:`Scenario` is a pure value — a name, a prose description, and an
ordered tuple of :class:`~repro.scenarios.modifiers.Modifier` transforms.
Like a :class:`~repro.campaigns.spec.CampaignSpec` it serialises to plain
JSON and hashes by content, which is what makes "what conditions did we run
under" a first-class sweep dimension instead of code: the scenario *name*
rides in every campaign spec (and therefore its campaign ID), the scenario
*content* is pinned by :meth:`Scenario.content_hash`.

Realisation binds a scenario to one environment's entropy and yields a
:class:`ScenarioDynamics` — the stateful, vectorised level transform the
:class:`~repro.cloud.interference.InterferenceProcess` applies.  A scenario
with no modifiers realises to nothing, so ``steady`` is bit-identical to
running without any scenario at all.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import CloudError
from repro.scenarios.modifiers import MIN_LEVEL, Modifier, modifier_from_dict


class ScenarioDynamics:
    """One realisation of a scenario's modifiers for one environment.

    Owns the per-modifier appliers (and their lazily-extended window
    tables); :meth:`apply` is the single vectorised hook
    :meth:`InterferenceProcess.epoch_mean` calls.
    """

    def __init__(self, scenario: "Scenario", entropy: int) -> None:
        self.scenario = scenario
        digest = int(scenario.content_hash()[:15], 16)
        self._appliers = [
            modifier.realise((int(entropy), digest, index))
            for index, modifier in enumerate(scenario.modifiers)
        ]

    def apply(self, ts: np.ndarray, level: np.ndarray) -> np.ndarray:
        """Transform stationary levels at times ``ts`` into dynamic ones."""
        for applier in self._appliers:
            level = applier(ts, level)
        return np.maximum(level, MIN_LEVEL)


@dataclass(frozen=True)
class Scenario:
    """A named composition of dynamic cloud conditions.

    Attributes:
        name: registry name; the value of a campaign spec's ``scenario``
            field, so it participates in the campaign content hash.
        description: one line of prose for tables and ``--help``.
        modifiers: ordered transforms applied to the interference level
            field (order matters — gains compose multiplicatively).
    """

    name: str
    description: str = ""
    modifiers: Tuple[Modifier, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise CloudError("a scenario needs a non-empty name")
        object.__setattr__(self, "modifiers", tuple(self.modifiers))

    @property
    def is_steady(self) -> bool:
        """True when the scenario leaves the stationary process untouched."""
        return not self.modifiers

    def content_hash(self) -> str:
        """sha1 over the scenario's physics (name and prose excluded)."""
        blob = json.dumps(
            [m.to_dict() for m in self.modifiers],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha1(blob.encode("utf-8")).hexdigest()

    def realise(self, entropy: int) -> Optional[ScenarioDynamics]:
        """Bind to one environment's entropy; ``None`` when steady."""
        if self.is_steady:
            return None
        return ScenarioDynamics(self, int(entropy))

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "description": self.description,
            "modifiers": [m.to_dict() for m in self.modifiers],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario written by :meth:`to_dict`."""
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            modifiers=tuple(
                modifier_from_dict(m) for m in data.get("modifiers", ())
            ),
        )
