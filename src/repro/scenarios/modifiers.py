"""Time-varying modifiers that turn a stationary cloud into a dynamic one.

The paper's :class:`~repro.cloud.interference.InterferenceProcess` is
*stationary*: its statistics never change over a campaign.  A scenario
modifier is a declarative, serialisable transform of the interference
*level field* — given query times ``t`` and the stationary levels at those
times, it returns the levels a dynamic cloud would exhibit.  Modifiers are
applied inside :meth:`InterferenceProcess.epoch_mean`, the single choke
point every sampling path (solo runs, batched co-located rounds, post-hoc
evaluations) already goes through vectorised, so dynamic conditions cost no
per-segment Python loops and compose transparently with the PR 1 batched
round engine.

Two determinism contracts every modifier obeys:

* **seed-determinism** — a modifier's randomness derives exclusively from
  the ``(entropy, scenario digest, modifier index)`` key it is realised
  with, never from the process's own sampling streams.  The same
  environment seed therefore reproduces the same dynamic conditions, and a
  scenario's *presence* never perturbs the stationary draws (the ``steady``
  scenario is bit-identical to no scenario at all).
* **query-order independence** — windowed randomness (storms, preemptions,
  host churn) is drawn in absolutely-aligned blocks keyed by window index
  (the same contract as the interference walk table), so which query times
  arrive first never changes a window's draw.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, Sequence, Tuple, Type

import numpy as np

from repro.cloud.interference import MIN_LEVEL
from repro.errors import CloudError

_DAY_SECONDS = 86400.0


class _WindowTable:
    """Lazily-extended per-window random rows, independent of query order.

    Rows for window ``w`` are drawn from a fresh generator seeded by
    ``(*key, w // block)`` — block boundaries are absolute, so a query at
    hour 900 before one at hour 3 realises exactly the same draws as the
    opposite order.  Each block draw is one vectorised call.
    """

    _BLOCK = 1024

    def __init__(self, key: Sequence[int], columns: int, sampler) -> None:
        self._key = tuple(int(k) & 0x7FFFFFFFFFFFFFFF for k in key)
        self._columns = int(columns)
        self._sampler = sampler  # (rng, n) -> array of shape (n, columns)
        self._blocks: Dict[int, np.ndarray] = {}

    def rows(self, windows: np.ndarray) -> np.ndarray:
        """Random rows for each window index; shape ``(len(windows), columns)``."""
        win = np.asarray(windows, dtype=np.int64)
        if np.any(win < 0):
            raise CloudError("scenario window queried at negative time")
        out = np.empty((win.size, self._columns))
        blocks = win // self._BLOCK
        for block in np.unique(blocks):
            b = int(block)
            if b not in self._blocks:
                rng = np.random.default_rng((*self._key, b))
                drawn = np.asarray(self._sampler(rng, self._BLOCK), dtype=float)
                self._blocks[b] = drawn.reshape(self._BLOCK, self._columns)
            mask = blocks == block
            out[mask] = self._blocks[b][win[mask] - b * self._BLOCK]
        return out


@dataclass(frozen=True)
class Modifier:
    """Base of all scenario modifiers: a serialisable level transform.

    Subclasses define ``KIND`` (the serialisation tag) and ``realise``,
    which binds the declarative parameters to an entropy key and returns a
    stateful applier with ``apply(ts, level) -> level``.
    """

    KIND = ""

    def to_dict(self) -> dict:
        """Tagged plain-JSON form (inverse of :func:`modifier_from_dict`)."""
        return {"kind": self.KIND, **asdict(self)}

    def realise(self, key: Sequence[int]):
        raise NotImplementedError


@dataclass(frozen=True)
class ExtraDiurnal(Modifier):
    """A stronger day/night load cycle layered over the built-in one.

    Models a fleet whose co-tenants are strongly diurnal (interactive
    traffic): campaigns started at different times of day tune under
    visibly different interference regimes.
    """

    amplitude: float = 0.35
    period_seconds: float = _DAY_SECONDS
    phase: float = 0.0

    KIND = "extra_diurnal"

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise CloudError(f"amplitude must be >= 0, got {self.amplitude}")
        if self.period_seconds <= 0:
            raise CloudError("period_seconds must be positive")

    def realise(self, key: Sequence[int]):
        omega = 2.0 * math.pi / self.period_seconds

        def apply(ts: np.ndarray, level: np.ndarray) -> np.ndarray:
            return level + self.amplitude * np.sin(omega * ts + self.phase)

        return apply


@dataclass(frozen=True)
class LevelRamp(Modifier):
    """Drifting baseline: interference ramps by ``rate_per_day``, saturating.

    Models gradual tenant build-up (or decay, with a negative rate) on the
    host over the days a long campaign spans; the saturation bound keeps
    arbitrarily long campaigns physical.
    """

    rate_per_day: float = 0.18
    saturation: float = 0.6

    KIND = "level_ramp"

    def __post_init__(self) -> None:
        if self.saturation < 0:
            raise CloudError(f"saturation must be >= 0, got {self.saturation}")

    def realise(self, key: Sequence[int]):
        def apply(ts: np.ndarray, level: np.ndarray) -> np.ndarray:
            drift = np.clip(
                self.rate_per_day * ts / _DAY_SECONDS,
                -self.saturation,
                self.saturation,
            )
            return level + drift

        return apply


@dataclass(frozen=True)
class BurstStorms(Modifier):
    """Noisy-neighbour storms: windows where contention multiplies.

    Each ``window_seconds`` window independently hosts a storm with
    probability ``storm_probability``; inside a storm the stationary level
    is scaled by ``gain`` and raised by an exponentially-distributed spike
    of mean ``extra_level`` (drawn once per storm — one angry co-tenant, not
    per-query noise).
    """

    window_seconds: float = 1800.0
    storm_probability: float = 0.25
    gain: float = 1.6
    extra_level: float = 0.5

    KIND = "burst_storms"

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise CloudError("window_seconds must be positive")
        if not 0.0 <= self.storm_probability <= 1.0:
            raise CloudError("storm_probability must lie in [0, 1]")
        if self.gain < 0 or self.extra_level < 0:
            raise CloudError("gain and extra_level must be >= 0")

    def realise(self, key: Sequence[int]):
        def sample(rng: np.random.Generator, n: int) -> np.ndarray:
            hit = rng.random(n) < self.storm_probability
            spike = rng.exponential(1.0, size=n)
            return np.column_stack([hit.astype(float), spike])

        table = _WindowTable(key, 2, sample)

        def apply(ts: np.ndarray, level: np.ndarray) -> np.ndarray:
            rows = table.rows((ts / self.window_seconds).astype(np.int64))
            storm = rows[:, 0]
            spike = rows[:, 1]
            gain = 1.0 + (self.gain - 1.0) * storm
            return level * gain + self.extra_level * spike * storm

        return apply


@dataclass(frozen=True)
class PreemptionWindows(Modifier):
    """Spot-style preemptions: outages that invalidate in-flight work.

    Each ``window_seconds`` window is preempted with probability
    ``preempt_probability``; the outage occupies ``outage_seconds`` at a
    uniformly-drawn offset within the window.  During an outage the level
    jumps by ``stall_level`` — tens of times the stationary mean — so any
    run or game segment overlapping it makes essentially no progress: its
    observed time balloons and, in a co-located game, the tournament's
    early-termination sees the stalled work, exactly the "evaluation lost
    to a revoked instance" effect.
    """

    window_seconds: float = 7200.0
    preempt_probability: float = 0.2
    outage_seconds: float = 900.0
    stall_level: float = 25.0

    KIND = "preemption_windows"

    def __post_init__(self) -> None:
        if self.window_seconds <= 0 or self.outage_seconds <= 0:
            raise CloudError("window_seconds and outage_seconds must be positive")
        if self.outage_seconds > self.window_seconds:
            raise CloudError("outage_seconds cannot exceed window_seconds")
        if not 0.0 <= self.preempt_probability <= 1.0:
            raise CloudError("preempt_probability must lie in [0, 1]")
        if self.stall_level < 0:
            raise CloudError(f"stall_level must be >= 0, got {self.stall_level}")

    def realise(self, key: Sequence[int]):
        def sample(rng: np.random.Generator, n: int) -> np.ndarray:
            hit = rng.random(n) < self.preempt_probability
            offset = rng.random(n)  # outage start, as a fraction of the slack
            return np.column_stack([hit.astype(float), offset])

        table = _WindowTable(key, 2, sample)
        slack = self.window_seconds - self.outage_seconds

        def apply(ts: np.ndarray, level: np.ndarray) -> np.ndarray:
            windows = (ts / self.window_seconds).astype(np.int64)
            rows = table.rows(windows)
            phase = ts - windows * self.window_seconds
            start = rows[:, 1] * slack
            stalled = (
                (rows[:, 0] > 0.0)
                & (phase >= start)
                & (phase < start + self.outage_seconds)
            )
            return level + self.stall_level * stalled

        return apply


@dataclass(frozen=True)
class HostMix(Modifier):
    """Heterogeneous fleet: runs land on hosts of different contention classes.

    ``multipliers``/``weights`` describe the fleet's host classes (see
    :func:`repro.cloud.fleet.default_host_mix`); every ``rotation_seconds``
    the VM is rescheduled onto a host class drawn from that mix, scaling
    the stationary level by the class's multiplier until the next rotation.
    """

    multipliers: Tuple[float, ...] = (0.7, 1.0, 1.5)
    weights: Tuple[float, ...] = (0.25, 0.5, 0.25)
    rotation_seconds: float = 21600.0

    KIND = "host_mix"

    def __post_init__(self) -> None:
        object.__setattr__(self, "multipliers", tuple(self.multipliers))
        object.__setattr__(self, "weights", tuple(self.weights))
        if len(self.multipliers) != len(self.weights) or not self.multipliers:
            raise CloudError("host mix needs matching, non-empty classes")
        if any(m < 0 for m in self.multipliers):
            raise CloudError("host multipliers must be >= 0")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise CloudError("host weights must be >= 0 and sum positive")
        if self.rotation_seconds <= 0:
            raise CloudError("rotation_seconds must be positive")

    def realise(self, key: Sequence[int]):
        cumulative = np.cumsum(self.weights) / float(sum(self.weights))
        multipliers = np.asarray(self.multipliers, dtype=float)

        def sample(rng: np.random.Generator, n: int) -> np.ndarray:
            choice = np.searchsorted(cumulative, rng.random(n), side="right")
            choice = np.minimum(choice, multipliers.size - 1)
            return multipliers[choice].reshape(n, 1)

        table = _WindowTable(key, 1, sample)

        def apply(ts: np.ndarray, level: np.ndarray) -> np.ndarray:
            rows = table.rows((ts / self.rotation_seconds).astype(np.int64))
            return level * rows[:, 0]

        return apply


#: Serialisation registry: kind tag -> modifier class.
MODIFIER_KINDS: Dict[str, Type[Modifier]] = {
    cls.KIND: cls
    for cls in (ExtraDiurnal, LevelRamp, BurstStorms, PreemptionWindows, HostMix)
}


def modifier_from_dict(data: dict) -> Modifier:
    """Rebuild a modifier written by :meth:`Modifier.to_dict`."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    try:
        cls = MODIFIER_KINDS[kind]
    except KeyError:
        raise CloudError(
            f"unknown scenario modifier kind {kind!r}; "
            f"expected one of {sorted(MODIFIER_KINDS)}"
        ) from None
    # JSON turns tuples into lists; dataclass __post_init__ re-normalises.
    return cls(**payload)
