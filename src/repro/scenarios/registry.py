"""The named scenario packs every sweep axis refers to.

Each pack is a ready-made :class:`~repro.scenarios.scenario.Scenario`
covering one archetypal dynamic-cloud condition the paper's stationary
evaluation cannot express.  Packs are referenced by name everywhere — CLI
flags, campaign specs, BENCH.jsonl rows — so their *content* must stay
stable once published; change a pack's physics only together with its name
(or register a new pack) or stored campaign IDs will silently describe
different conditions.

User code can register additional packs with :func:`register_scenario`;
custom packs resolve exactly like the built-ins.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple, Union

from repro.cloud.fleet import default_host_mix
from repro.errors import ReproError
from repro.scenarios.modifiers import (
    BurstStorms,
    ExtraDiurnal,
    HostMix,
    LevelRamp,
    PreemptionWindows,
)
from repro.scenarios.scenario import Scenario

ScenarioLike = Union[str, Scenario, None]


def _mixed_fleet_modifier() -> HostMix:
    mix = default_host_mix()
    return HostMix(
        multipliers=tuple(round(c.level_multiplier, 6) for c in mix),
        weights=tuple(c.weight for c in mix),
        rotation_seconds=21600.0,
    )


_PACKS: Tuple[Scenario, ...] = (
    Scenario(
        name="steady",
        description="stationary interference — the paper's baseline, "
                    "bit-identical to running without a scenario",
    ),
    Scenario(
        name="diurnal",
        description="strong day/night tenant load cycle on top of the "
                    "built-in one",
        modifiers=(
            ExtraDiurnal(amplitude=0.35, period_seconds=86400.0,
                         phase=-math.pi / 2.0),
        ),
    ),
    Scenario(
        name="bursty",
        description="noisy-neighbour storms: half-hour windows of "
                    "multiplied contention",
        modifiers=(
            BurstStorms(window_seconds=1800.0, storm_probability=0.25,
                        gain=1.6, extra_level=0.5),
        ),
    ),
    Scenario(
        name="preemptible",
        description="spot-style outage windows that stall any in-flight "
                    "evaluation overlapping them",
        modifiers=(
            PreemptionWindows(window_seconds=7200.0, preempt_probability=0.2,
                              outage_seconds=900.0, stall_level=25.0),
        ),
    ),
    Scenario(
        name="drift",
        description="baseline interference ramps up day over day "
                    "(gradual tenant build-up), saturating",
        modifiers=(LevelRamp(rate_per_day=0.18, saturation=0.6),),
    ),
    Scenario(
        name="mixed-fleet",
        description="heterogeneous hosts: six-hourly rescheduling over the "
                    "fleet's contention classes",
        modifiers=(_mixed_fleet_modifier(),),
    ),
)

_REGISTRY: Dict[str, Scenario] = {pack.name: pack for pack in _PACKS}

#: Names of the built-in packs, in registry order.
SCENARIO_NAMES: Tuple[str, ...] = tuple(pack.name for pack in _PACKS)

#: The scenario every spec defaults to.
DEFAULT_SCENARIO = "steady"


def scenario_names() -> Tuple[str, ...]:
    """Every currently registered scenario name (built-ins + custom)."""
    return tuple(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario pack by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; registered: {list(_REGISTRY)}"
        ) from None


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Register a custom pack so specs and CLI flags can name it.

    Built-in packs cannot be replaced (their published names pin their
    physics); custom packs can, with ``replace=True``.

    The registry is **process-local** and campaign specs persist only the
    scenario *name*: a sweep over a custom pack must re-register it in
    every process that resolves the spec — ``spawn``-method workers and
    later ``repro resume`` invocations included (put the registration at
    import time of your driver module).  An unregistered name fails
    loudly: the campaign lands as a ``"failed"`` record whose error says
    which scenario was unknown, never as silently-steady results.
    """
    existing = _REGISTRY.get(scenario.name)
    if existing is not None:
        if scenario.name in SCENARIO_NAMES:
            raise ReproError(
                f"cannot replace built-in scenario {scenario.name!r}"
            )
        if not replace:
            raise ReproError(
                f"scenario {scenario.name!r} is already registered; "
                f"pass replace=True to overwrite it"
            )
    _REGISTRY[scenario.name] = scenario
    return scenario


def resolve_scenario(scenario: ScenarioLike) -> Optional[Scenario]:
    """Normalise a scenario argument: name, Scenario instance, or None."""
    if scenario is None:
        return None
    if isinstance(scenario, Scenario):
        return scenario
    return get_scenario(scenario)
