"""Scenario packs: dynamic cloud conditions as a declarative sweep axis.

The paper evaluates every tuner under one *stationary* interference model
per VM.  This subsystem makes "what the cloud was doing" a named, hashable
input instead: a :class:`Scenario` composes time-varying
:mod:`~repro.scenarios.modifiers` over the stationary
:class:`~repro.cloud.interference.InterferenceProcess` — diurnal load
swings, noisy-neighbour storms, spot-preemption outages, drifting
baselines, heterogeneous fleets — each seed-deterministic and applied
vectorised through the batched round engine.

Quickstart::

    from repro import CloudEnvironment, DarwinGame, DarwinGameConfig
    from repro import VMSpec, make_application

    app = make_application("redis", scale="test")
    env = CloudEnvironment(VMSpec.preset("m5.8xlarge"), seed=7,
                           scenario="bursty")
    result = DarwinGame(DarwinGameConfig(seed=1)).tune(app, env)

or sweep the whole axis from the shell: ``python -m repro sweep --apps
redis --seeds 0,1 --scenarios steady,bursty,preemptible --store s.jsonl``
then compare tuners per pack with ``python -m repro report s.jsonl
--by-scenario``.
"""

from repro.scenarios.modifiers import (
    MODIFIER_KINDS,
    BurstStorms,
    ExtraDiurnal,
    HostMix,
    LevelRamp,
    Modifier,
    PreemptionWindows,
    modifier_from_dict,
)
from repro.scenarios.registry import (
    DEFAULT_SCENARIO,
    SCENARIO_NAMES,
    ScenarioLike,
    get_scenario,
    register_scenario,
    resolve_scenario,
    scenario_names,
)
from repro.scenarios.scenario import Scenario, ScenarioDynamics

__all__ = [
    "BurstStorms",
    "DEFAULT_SCENARIO",
    "ExtraDiurnal",
    "HostMix",
    "LevelRamp",
    "MODIFIER_KINDS",
    "Modifier",
    "PreemptionWindows",
    "SCENARIO_NAMES",
    "Scenario",
    "ScenarioDynamics",
    "ScenarioLike",
    "get_scenario",
    "modifier_from_dict",
    "register_scenario",
    "resolve_scenario",
    "scenario_names",
]
