"""Uniform random search — the simplest interference-unaware baseline."""

from __future__ import annotations

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.tuners.base import Tuner


class RandomSearch(Tuner):
    """Sample ``budget`` random configurations and keep the best observed."""

    name = "RandomSearch"
    budget_fraction = 0.04

    def _search(
        self,
        app: ApplicationModel,
        env: CloudEnvironment,
        budget: int,
        rng: np.random.Generator,
    ) -> tuple:
        indices = app.space.sample_indices(budget, rng)
        observed = env.run_solo_batch(app, indices, label="random-search")
        best_pos = int(np.argmin(observed))
        details = {
            "best_observed_time": float(observed[best_pos]),
            "observed_indices": [int(i) for i in indices],
            "observed_times": [float(t) for t in observed],
        }
        return int(indices[best_pos]), budget, details
