"""BLISS-style tuner (Roy et al., PLDI'21).

BLISS tunes with a *pool of diverse lightweight learning models*: several
cheap Bayesian-optimisation surrogates (different kernel length-scales and
acquisition functions) compete, and a probabilistic scheduler favours the
model whose proposals have recently paid off.  We reproduce that design with
kernel-ridge Gaussian-process surrogates over normalised parameter levels.
Like the original, every model is fitted to raw observed execution times —
noise is folded straight into the surrogate, which is precisely the failure
mode the paper exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy.stats import norm

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.rng import child
from repro.tuners.base import ObservationLog, Tuner

_FIT_CAP = 256       # surrogates are "lightweight": fit on recent/best samples
_CANDIDATES = 320    # acquisition is optimised over a random candidate pool
_BATCH = 16          # proposals evaluated per surrogate refit
_RIDGE = 1e-3


@dataclass(frozen=True)
class _ModelSpec:
    """One lightweight model: an RBF length-scale and an acquisition rule."""

    length_scale: float
    acquisition: str  # "ei" | "ucb" | "pi"

    @property
    def name(self) -> str:
        return f"gp(l={self.length_scale},{self.acquisition})"


_POOL = (
    _ModelSpec(0.15, "ei"),
    _ModelSpec(0.15, "ucb"),
    _ModelSpec(0.40, "ei"),
    _ModelSpec(0.40, "pi"),
    _ModelSpec(0.80, "ucb"),
    _ModelSpec(0.80, "pi"),
)


class BlissLike(Tuner):
    """Ensemble-of-lightweight-BO-models tuner in the spirit of BLISS."""

    name = "BLISS"
    budget_fraction = 0.03

    def _search(
        self,
        app: ApplicationModel,
        env: CloudEnvironment,
        budget: int,
        rng: np.random.Generator,
    ) -> tuple:
        log = ObservationLog()
        credits = {spec.name: 1.0 for spec in _POOL}
        model_uses = {spec.name: 0 for spec in _POOL}

        # Bootstrap with random samples (BLISS seeds its models similarly).
        n_seed = min(budget, max(8, _BATCH))
        seeds = app.space.sample_indices(n_seed, child(rng))
        observed = env.run_solo_batch(app, seeds, label="bliss")
        for idx, t in zip(seeds, observed):
            log.add(int(idx), float(t))
        spent = n_seed

        while spent < budget:
            spec = self._pick_model(credits, rng)
            proposals = self._propose(app, log, spec, rng)
            take = min(len(proposals), budget - spent)
            before = log.best_time
            times = env.run_solo_batch(app, proposals[:take], label="bliss")
            for idx, t in zip(proposals[:take], times):
                log.add(int(idx), float(t))
            spent += take
            # Credit: relative improvement this model just delivered.
            gain = max(0.0, (before - log.best_time) / before)
            credits[spec.name] = 0.8 * credits[spec.name] + gain
            model_uses[spec.name] += 1

        details = {
            "model_uses": dict(model_uses),
            "best_observed_time": log.best_time,
            "observed_indices": list(log.indices),
            "observed_times": list(log.times),
        }
        return log.best_index, spent, details

    # -- model pool ---------------------------------------------------------

    @staticmethod
    def _pick_model(credits: dict, rng: np.random.Generator) -> _ModelSpec:
        weights = np.array([credits[s.name] + 0.05 for s in _POOL])
        weights = weights / weights.sum()
        return _POOL[int(rng.choice(len(_POOL), p=weights))]

    def _propose(
        self,
        app: ApplicationModel,
        log: ObservationLog,
        spec: _ModelSpec,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Fit the chosen surrogate and return a batch of proposals."""
        indices, times = log.as_arrays()
        if len(indices) > _FIT_CAP:
            # Keep the best half and the most recent half of the cap.
            order = np.argsort(times)
            keep = np.unique(
                np.concatenate([order[: _FIT_CAP // 2], np.arange(len(indices))[-_FIT_CAP // 2:]])
            )
            indices, times = indices[keep], times[keep]

        cards = app.space.cardinalities.astype(float)
        train = app.space.levels_matrix(indices) / cards
        y_mean, y_std = float(times.mean()), float(times.std() + 1e-9)
        y = (times - y_mean) / y_std

        pool = app.space.sample_indices(_CANDIDATES, child(rng))
        best_neighbors = app.space.neighbors(log.best_index, seed=child(rng))
        if best_neighbors.size:
            pool = np.concatenate([pool, best_neighbors[:64]])
        pool = np.unique(pool)
        cand = app.space.levels_matrix(pool) / cards

        mu, sigma = self._gp_predict(train, y, cand, spec.length_scale)
        score = self._acquisition(spec.acquisition, mu, sigma, float(y.min()))
        order = np.argsort(-score)
        return pool[order[:_BATCH]].astype(np.int64)

    @staticmethod
    def _gp_predict(
        train: np.ndarray, y: np.ndarray, cand: np.ndarray, length_scale: float
    ) -> tuple:
        """Kernel-ridge GP posterior mean and variance (RBF kernel)."""
        def rbf(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
            return np.exp(-d2 / (2.0 * length_scale**2))

        k_train = rbf(train, train) + _RIDGE * np.eye(len(train))
        k_cross = rbf(cand, train)
        solve = np.linalg.solve(k_train, np.column_stack([y, k_cross.T]))
        alpha, v = solve[:, 0], solve[:, 1:]
        mu = k_cross @ alpha
        var = np.maximum(1.0 - np.einsum("ij,ji->i", k_cross, v), 1e-12)
        return mu, np.sqrt(var)

    @staticmethod
    def _acquisition(kind: str, mu: np.ndarray, sigma: np.ndarray, y_best: float) -> np.ndarray:
        """Score candidates; larger is better (we minimise observed time)."""
        z = (y_best - mu) / sigma
        if kind == "ei":
            return (y_best - mu) * norm.cdf(z) + sigma * norm.pdf(z)
        if kind == "pi":
            return norm.cdf(z)
        if kind == "ucb":
            return -(mu - 1.8 * sigma)
        raise ValueError(f"unknown acquisition {kind!r}")
