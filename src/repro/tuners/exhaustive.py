"""Exhaustive search in the cloud (Sec. 2).

Samples *every* configuration of the space, one by one, in the noisy
environment, and returns the configuration with the smallest observed time.
The paper uses it as the brute-force upper bound on tuning effort — and
shows that even this is suboptimal, because each configuration is observed
under a different, uncontrollable interference draw: the "winner" is usually
a fragile configuration that got a lucky quiet moment.
"""

from __future__ import annotations

import numpy as np

from repro.apps.model import ApplicationModel
from repro.cloud.environment import CloudEnvironment
from repro.tuners.base import Tuner


class ExhaustiveSearch(Tuner):
    """Run every configuration once in the cloud; keep the fastest observed."""

    name = "Exhaustive"
    budget_fraction = 1.0

    def default_budget(self, app: ApplicationModel) -> int:
        return app.space.size

    def _search(
        self,
        app: ApplicationModel,
        env: CloudEnvironment,
        budget: int,
        rng: np.random.Generator,
    ) -> tuple:
        # The budget argument is accepted for interface compatibility but an
        # exhaustive search, by definition, visits the whole space.
        best_index = -1
        best_time = np.inf
        total = 0
        for chunk in app.space.iter_chunks():
            observed = env.run_solo_batch(app, chunk, label="exhaustive")
            pos = int(np.argmin(observed))
            total += len(chunk)
            if observed[pos] < best_time:
                best_time = float(observed[pos])
                best_index = int(chunk[pos])
        details = {"best_observed_time": best_time}
        return best_index, total, details
